"""Architecture-layer checker for the ``repro`` package.

Enforces the layering documented in DESIGN.md by walking the import
graph with ``ast`` (no imports are executed):

====================  ====  =============================================
package               rank  may import
====================  ====  =============================================
``automata``          0     (stdlib/numpy only)
``control``           0     (stdlib/numpy only)
``platform``          1     rank 0; ``workloads`` (peer)
``workloads``         1     rank 0; ``platform`` (peer)
``core``              2     ranks 0-1
``analysis``          2     rank 0; ``core`` (artifact formats)
``managers``          3     ranks 0-2
``experiments``       4     ranks 0-3, ``analysis``; ``exec`` (peer)
``exec``              4     ranks 0-3; ``experiments`` (peer)
``resilience``        5     ranks 0-4 (top layer)
``perf``              5     ranks 0-4 (top-layer peer of resilience)
====================  ====  =============================================

In particular ``platform`` and ``workloads`` must import neither
``managers`` nor ``experiments``, and ``core`` (the formally-verified
supervisory layer) must not depend on anything above it — the supervisor
must stay auditable in isolation, because it is the one component the
paper verifies offline (Figure 11 steps 4-5) and trusts blindly at
runtime.  Modules at the package root (``repro/__init__.py``,
``repro/__main__.py``) are the composition root and may import any layer.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.findings import Finding, Severity

__all__ = ["ALLOWED_IMPORTS", "check_architecture", "import_edges"]

# package -> packages it may import (itself is always allowed).
ALLOWED_IMPORTS: dict[str, frozenset[str]] = {
    "automata": frozenset(),
    "control": frozenset(),
    "platform": frozenset({"automata", "control", "workloads"}),
    "workloads": frozenset({"automata", "control", "platform"}),
    "analysis": frozenset({"automata", "control", "core"}),
    "core": frozenset({"automata", "control", "platform", "workloads"}),
    "managers": frozenset(
        {"automata", "control", "platform", "workloads", "core"}
    ),
    # Rank-4 peers (like platform/workloads): ``exec`` turns experiment
    # cells into parallel cached jobs, so the sweep/ablation drivers in
    # ``experiments`` hand it work while its runners call back into
    # ``experiments`` scenario plumbing.
    "experiments": frozenset(
        {
            "automata",
            "control",
            "platform",
            "workloads",
            "core",
            "managers",
            "analysis",
            "exec",
        }
    ),
    "exec": frozenset(
        {
            "automata",
            "control",
            "platform",
            "workloads",
            "core",
            "managers",
            "experiments",
        }
    ),
    # Top layer: may see everything below; nothing below may import it.
    # Managers/experiments integrate with it through duck-typed
    # attachment points (``manager.resilience``, runner setup hooks).
    "resilience": frozenset(
        {
            "automata",
            "control",
            "platform",
            "workloads",
            "core",
            "managers",
            "experiments",
            "exec",
        }
    ),
    # Top-layer peer of resilience: the opt-in step profiler attaches to
    # any SoC + manager pair via instance-attribute hooks and the
    # runner's setup callbacks, so it may see every layer below it while
    # nothing below may import it (profiling must stay optional).
    "perf": frozenset(
        {
            "automata",
            "control",
            "platform",
            "workloads",
            "core",
            "managers",
            "experiments",
            "exec",
        }
    ),
}


def _imported_packages(tree: ast.AST) -> list[tuple[int, str]]:
    """(line, subpackage) pairs for every ``repro.<pkg>`` import."""
    edges: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and module.startswith("repro."):
                edges.append((node.lineno, module.split(".")[1]))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro."):
                    edges.append((node.lineno, alias.name.split(".")[1]))
    return edges


def import_edges(
    package_root: Path,
) -> dict[str, list[tuple[str, int, str]]]:
    """Import graph of a ``repro`` package tree.

    Maps each subpackage to ``(file, line, imported_subpackage)`` edges.
    ``package_root`` is the directory containing ``repro``'s
    ``__init__.py``.
    """
    graph: dict[str, list[tuple[str, int, str]]] = {}
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        if len(relative.parts) == 1:
            continue  # composition root: repro/__init__.py, __main__.py
        package = relative.parts[0]
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue  # the lint pass reports the syntax error
        for line, imported in _imported_packages(tree):
            graph.setdefault(package, []).append((str(path), line, imported))
    return graph


def check_architecture(
    package_root: str | Path,
    *,
    allowed: Mapping[str, Iterable[str]] | None = None,
) -> list[Finding]:
    """Report every import that violates the layer rules (REPRO-R001).

    Unknown packages (a new top-level subpackage not yet assigned to a
    layer) get a warning (REPRO-R002) so the layer map stays complete.
    """
    package_root = Path(package_root)
    rules = {
        package: frozenset(targets)
        for package, targets in (allowed or ALLOWED_IMPORTS).items()
    }
    findings: list[Finding] = []
    for package, edges in import_edges(package_root).items():
        if package not in rules:
            findings.append(
                Finding(
                    path=str(package_root / package),
                    line=0,
                    rule="REPRO-R002",
                    severity=Severity.WARNING,
                    message=f"package {package!r} is not in the architecture "
                    "layer map; add it to ALLOWED_IMPORTS",
                )
            )
            continue
        permitted = rules[package] | {package}
        for file_path, line, imported in edges:
            if imported not in permitted:
                findings.append(
                    Finding(
                        path=file_path,
                        line=line,
                        rule="REPRO-R001",
                        severity=Severity.ERROR,
                        message=f"layer violation: {package!r} may not import "
                        f"repro.{imported} (allowed: "
                        f"{', '.join(sorted(permitted - {package})) or 'none'})",
                    )
                )
    return findings
