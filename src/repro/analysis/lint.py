"""Repo-specific AST lint (stdlib ``ast`` only, no third-party deps).

Rules
-----
``REPRO-L001`` (error)
    Mutable default argument — both ``def f(x=[])`` and the argparse
    variant ``add_argument(..., default=[])``: the object is created
    once and shared across calls/parses.
``REPRO-L002`` (error)
    Bare ``except:`` — swallows ``KeyboardInterrupt``/``SystemExit``
    and hides plant-model bugs behind silent recovery.
``REPRO-L003`` (error)
    ``==`` / ``!=`` against a nonzero float literal.  Control math runs
    through Riccati iterations and matrix products; exact equality on
    their results is almost always a latent bug.  Comparisons against
    exactly ``0.0`` are allowed (clipping/saturation logic legitimately
    tests for exact zeros produced by ``np.clip``).
``REPRO-L004`` (warning, hot paths only)
    ``np.zeros``/``np.ones``/``np.empty`` without an explicit ``dtype``
    in the 50 ms-epoch code paths (managers, platform, runtime
    controllers).  Implicit dtype promotion has produced object arrays
    from list inputs before; hot paths must pin their dtype.
``REPRO-L005`` (error)
    Package ``__init__.py`` with imports but no ``__all__`` — the public
    surface of every package must be explicit.
``REPRO-L006`` (warning)
    Unit-suffix convention: parameters and local variables holding
    times or powers must carry a unit suffix (``epoch_ms``, ``dwell_s``,
    ``budget_w``...).  The 50 ms-epoch code mixes seconds, milliseconds
    and watts freely; unsuffixed names like ``period`` or ``power`` have
    caused unit mix-ups in every runtime-manager codebase we reference.
``REPRO-L007`` (error, resilience hot paths only)
    ``except``-and-continue: an exception handler whose body is nothing
    but ``pass``/``continue`` in the resilience/guard hot paths
    (``resilience/``, ``platform/faults.py``).  Faults must be
    *recorded*, not swallowed — a guard that silently drops a failed
    validation turns a detectable sensor fault into an invisible one.
``REPRO-L008`` (error, outside ``exec/`` only)
    ``multiprocessing`` / ``concurrent.futures`` imported outside the
    experiment engine.  Process management is centralized in
    ``repro.exec`` so the determinism contract (spawn context, seeded
    workers, cache coherence) cannot be bypassed by ad-hoc pools.
``REPRO-L009`` (error, step-kernel modules only)
    Per-call numpy temporary — ``np.clip``/``np.sum``/``np.zeros``/
    ``np.ones``/``np.empty`` — in the per-tick platform modules
    (``platform/soc.py``, ``sensors.py``, ``scheduler.py``, ``opp.py``,
    ``power.py``, ``manycore.py``).  These run 20x per simulated second
    on scalars or fixed-size-4 arrays, where numpy dispatch costs more
    than the arithmetic; use scalar math (see the sequential-sum
    equivalence notes in ``platform/soc.py``).  Construction-time code
    (``__init__``/``__post_init__``) and the explicitly allowlisted
    idle-insertion helpers (whose pairwise-reduction order *is* the
    bit-identity contract) are exempt.
``REPRO-L010`` (error, execution layer only)
    Bare ``time.sleep`` or unbounded wait (``Future.result()`` /
    ``concurrent.futures.wait(...)`` without a timeout) in ``exec/`` or
    ``resilience/``.  The campaign runtime must never block forever on
    a worker (a hung job would hang the supervisor that exists to kill
    it), and every delay must be deterministic: delays route through
    :meth:`repro.exec.supervision.SupervisionPolicy.sleep` (digest-
    derived backoff, test-injectable), which is why
    ``exec/supervision.py`` — and the chaos injector that *simulates*
    hangs, ``exec/chaos.py`` — are the only exempt modules.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppress import collect_suppressions, filter_findings

__all__ = [
    "lint_source",
    "lint_file",
    "EXEC_PATH_FRAGMENTS",
    "EXECUTION_LAYER_FRAGMENTS",
    "HOT_PATH_FRAGMENTS",
    "RESILIENCE_PATH_FRAGMENTS",
    "SLEEP_EXEMPT_FILES",
    "STEP_KERNEL_PATH_FRAGMENTS",
    "STEP_KERNEL_ALLOWED_FUNCTIONS",
]

# Modules on the 50 ms control epoch (rule L004 applies only here).
HOT_PATH_FRAGMENTS = (
    "managers/",
    "platform/",
    "resilience/",
    "control/lqg.py",
    "control/pid.py",
    "core/supervisor.py",
    "core/events.py",
)

# Fault-handling code where exceptions must be recorded, never
# swallowed (rule L007 applies only here).
RESILIENCE_PATH_FRAGMENTS = (
    "resilience/",
    "platform/faults.py",
)

# The one place allowed to manage worker processes (rule L008 applies
# everywhere else).
EXEC_PATH_FRAGMENTS = ("exec/",)

# The execution layer, where blocking must be bounded (rule L010).
EXECUTION_LAYER_FRAGMENTS = ("exec/", "resilience/")

# The only modules allowed to sleep: the supervision policy owns every
# legitimate delay (deterministic backoff), and the chaos injector's
# whole job is simulating hangs.
SLEEP_EXEMPT_FILES = ("exec/supervision.py", "exec/chaos.py")

# Per-tick platform modules where numpy temporaries are banned (L009).
STEP_KERNEL_PATH_FRAGMENTS = (
    "platform/soc.py",
    "platform/sensors.py",
    "platform/scheduler.py",
    "platform/opp.py",
    "platform/perf.py",
    "platform/power.py",
    "platform/manycore.py",
    "platform/fleet.py",
)

# Functions exempt from L009: the first two keep numpy's pairwise
# reduction order, which is itself the bit-identity contract with the
# golden traces; the probe/resolve functions run once at construction
# or first use to machine-verify a compiled fast path, never per tick.
STEP_KERNEL_ALLOWED_FUNCTIONS = frozenset(
    {
        "_telemetry_with_idle_insertion",
        "_idle_adjusted_capacity",
        "_resolve_snap_kernel",
        "_probe_cluster_telemetry",
    }
)

# numpy attributes that allocate or reduce per call (L009).
_L009_NUMPY_CALLS = frozenset({"clip", "sum", "zeros", "ones", "empty"})

# Construction-time methods run once per object, not per tick.
_CONSTRUCTION_FUNCTIONS = frozenset({"__init__", "__post_init__"})

# Top-level modules whose import marks ad-hoc parallelism (L008).
_PARALLEL_MODULES = ("multiprocessing", "concurrent")

_NUMPY_ALLOCATORS = {"zeros", "ones", "empty"}

_UNIT_WORDS = (
    "time",
    "interval",
    "period",
    "duration",
    "delay",
    "timeout",
    "deadline",
    "power",
    "budget",
    "energy",
)
_UNIT_SUFFIXES = (
    "_s",
    "_ms",
    "_us",
    "_ns",
    "_w",
    "_mw",
    "_kw",
    "_j",
    "_mj",
    "_hz",
    "_khz",
    "_mhz",
    "_ghz",
    "_pct",
    "_percent",
    "_frac",
    "_fraction",
    # Dimensionless counts are fine too — "period_epochs" is unambiguous
    # in a way "period" never is.
    "_epochs",
    "_ticks",
    "_steps",
    "_intervals",
    "_count",
)


def _is_hot_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in HOT_PATH_FRAGMENTS)


def _is_resilience_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(
        fragment in normalized for fragment in RESILIENCE_PATH_FRAGMENTS
    )


def _is_exec_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in EXEC_PATH_FRAGMENTS)


def _is_step_kernel_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(
        fragment in normalized for fragment in STEP_KERNEL_PATH_FRAGMENTS
    )


def _is_bounded_wait_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    if any(fragment in normalized for fragment in SLEEP_EXEMPT_FILES):
        return False
    return any(
        fragment in normalized for fragment in EXECUTION_LAYER_FRAGMENTS
    )


def _missing_unit_suffix(name: str) -> bool:
    if name.isupper():  # ALL_CAPS constants name DES events, not quantities
        return False
    lowered = name.lower()
    if lowered.endswith(_UNIT_SUFFIXES):
        return False
    return lowered in _UNIT_WORDS or any(
        lowered.endswith("_" + word) for word in _UNIT_WORDS
    )


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "dict", "set"}
        and not node.args
        and not node.keywords
    )


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.hot = _is_hot_path(path)
        self.resilience = _is_resilience_path(path)
        self.exec_layer = _is_exec_path(path)
        self.step_kernel = _is_step_kernel_path(path)
        self.bounded_wait = _is_bounded_wait_path(path)
        self.findings: list[Finding] = []
        self.numpy_aliases: set[str] = set()
        self.time_aliases: set[str] = set()
        self.sleep_aliases: set[str] = set()
        self.wait_aliases: set[str] = set()
        self._class_depth = 0
        self._function_stack: list[str] = []

    # -- helpers -------------------------------------------------------
    def _add(self, line: int, rule: str, severity: Severity, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                rule=rule,
                severity=severity,
                message=message,
            )
        )

    # -- imports (track `import numpy as np`; L008) --------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            if alias.name == "time":
                self.time_aliases.add(alias.asname or "time")
            self._check_parallel_import(node.lineno, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            self._check_parallel_import(node.lineno, node.module)
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        self.sleep_aliases.add(alias.asname or "sleep")
            if node.module == "concurrent.futures":
                for alias in node.names:
                    if alias.name == "wait":
                        self.wait_aliases.add(alias.asname or "wait")
        self.generic_visit(node)

    def _check_parallel_import(self, line: int, module: str) -> None:
        if self.exec_layer:
            return
        root = module.split(".")[0]
        if root in _PARALLEL_MODULES:
            self._add(
                line,
                "REPRO-L008",
                Severity.ERROR,
                f"{module!r} imported outside repro.exec; route parallel "
                "work through the experiment engine "
                "(repro.exec.ExperimentEngine) instead of ad-hoc pools",
            )

    # -- L001: mutable defaults ----------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_parameters(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_parameters(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                self._add(
                    default.lineno,
                    "REPRO-L001",
                    Severity.ERROR,
                    f"mutable default argument in {node.name!r} is shared "
                    "across calls; use None and create inside the body",
                )

    def _check_parameters(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for arg in (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        ):
            if _missing_unit_suffix(arg.arg):
                self._add(
                    arg.lineno,
                    "REPRO-L006",
                    Severity.WARNING,
                    f"parameter {arg.arg!r} names a time/power quantity "
                    "without a unit suffix (e.g. _s, _ms, _w)",
                )

    # -- L001 variant: argparse-style `default=[]` in calls ------------
    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg == "default" and _is_mutable_literal(keyword.value):
                self._add(
                    keyword.value.lineno,
                    "REPRO-L001",
                    Severity.ERROR,
                    "mutable `default=` in a call is created once and "
                    "shared (argparse reuses it across parses); use an "
                    "immutable default",
                )
        self._check_numpy_allocation(node)
        self._check_numpy_temporary(node)
        self._check_bounded_wait(node)
        self.generic_visit(node)

    def _check_numpy_allocation(self, node: ast.Call) -> None:
        if not self.hot:
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.numpy_aliases
            and func.attr in _NUMPY_ALLOCATORS
        ):
            has_dtype = len(node.args) >= 2 or any(
                k.arg == "dtype" for k in node.keywords
            )
            if not has_dtype:
                self._add(
                    node.lineno,
                    "REPRO-L004",
                    Severity.WARNING,
                    f"np.{func.attr} without explicit dtype in a hot path; "
                    "pin the dtype (e.g. dtype=float)",
                )

    # -- L009: per-call numpy temporaries in the step kernel -----------
    def _check_numpy_temporary(self, node: ast.Call) -> None:
        if not self.step_kernel:
            return
        stack = self._function_stack
        if not stack:
            return  # module level runs once at import, not per tick
        if any(name in _CONSTRUCTION_FUNCTIONS for name in stack):
            return
        if any(name in STEP_KERNEL_ALLOWED_FUNCTIONS for name in stack):
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.numpy_aliases
            and func.attr in _L009_NUMPY_CALLS
        ):
            self._add(
                node.lineno,
                "REPRO-L009",
                Severity.ERROR,
                f"np.{func.attr} in step-kernel function {stack[-1]!r} "
                "allocates a numpy temporary every tick; use scalar math "
                "(or add the function to STEP_KERNEL_ALLOWED_FUNCTIONS "
                "with a bit-identity justification)",
            )

    # -- L010: bare sleeps / unbounded waits in the execution layer ----
    def _check_bounded_wait(self, node: ast.Call) -> None:
        if not self.bounded_wait:
            return
        func = node.func
        has_timeout_kw = any(k.arg == "timeout" for k in node.keywords)

        # time.sleep(...) / sleep(...) imported from time.
        is_sleep = (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id in self.time_aliases
        ) or (
            isinstance(func, ast.Name) and func.id in self.sleep_aliases
        )
        if is_sleep:
            self._add(
                node.lineno,
                "REPRO-L010",
                Severity.ERROR,
                "bare time.sleep in the execution layer; delays must "
                "route through SupervisionPolicy.sleep (deterministic "
                "digest-derived backoff, test-injectable)",
            )
            return

        # future.result() without a timeout blocks forever on a hung
        # worker; so does concurrent.futures.wait(...) without one.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "result"
            and not node.args
            and not has_timeout_kw
        ):
            self._add(
                node.lineno,
                "REPRO-L010",
                Severity.ERROR,
                "unbounded Future.result() in the execution layer; pass "
                "timeout= (use result(timeout=0) on futures already "
                "known to be done)",
            )
            return
        is_wait = (
            isinstance(func, ast.Name) and func.id in self.wait_aliases
        ) or (isinstance(func, ast.Attribute) and func.attr == "wait")
        if is_wait and len(node.args) < 2 and not has_timeout_kw:
            self._add(
                node.lineno,
                "REPRO-L010",
                Severity.ERROR,
                "unbounded wait(...) in the execution layer; pass "
                "timeout= so a hung worker cannot hang the supervisor",
            )

    # -- L002: bare except / L007: except-and-continue -----------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                node.lineno,
                "REPRO-L002",
                Severity.ERROR,
                "bare `except:` catches SystemExit/KeyboardInterrupt; "
                "name the exceptions you can actually handle",
            )
        if self.resilience and all(
            isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in node.body
        ):
            self._add(
                node.lineno,
                "REPRO-L007",
                Severity.ERROR,
                "exception swallowed in a resilience hot path; faults "
                "must be recorded (append an event/violation), not "
                "silently dropped",
            )
        self.generic_visit(node)

    # -- L003: float equality ------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + node.comparators
        for op, (left, right) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and side.value != 0.0
                ):
                    self._add(
                        node.lineno,
                        "REPRO-L003",
                        Severity.ERROR,
                        f"float equality against {side.value!r}; compare "
                        "with a tolerance (math.isclose / np.isclose)",
                    )
        self.generic_visit(node)

    # -- L006: unit suffixes on local assignments ----------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Class bodies define the public field names of dataclasses and
        # records; renaming those is an API decision, so L006 only
        # applies to locals and parameters.
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._class_depth == 0 or not _at_class_body_level(node):
            for target in node.targets:
                if isinstance(target, ast.Name) and _missing_unit_suffix(
                    target.id
                ):
                    self._add(
                        target.lineno,
                        "REPRO-L006",
                        Severity.WARNING,
                        f"variable {target.id!r} names a time/power quantity "
                        "without a unit suffix (e.g. _s, _ms, _w)",
                    )
        self.generic_visit(node)


def _at_class_body_level(node: ast.AST) -> bool:
    # Set by lint_source's parent annotation pass.
    return isinstance(getattr(node, "_repro_parent", None), ast.ClassDef)


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text; returns findings (possibly empty).

    Inline ``# repro: noqa[RULE-ID]`` comments suppress findings of the
    named rules on their line; a suppression naming an unknown rule id
    is itself an error (REPRO-N001 — see :mod:`repro.analysis.suppress`).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                rule="REPRO-L000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]

    linter = _Linter(path)
    linter.visit(tree)

    # L005: packages must declare their public surface.
    if Path(path).name == "__init__.py":
        has_imports = any(
            isinstance(node, (ast.Import, ast.ImportFrom)) for node in tree.body
        )
        declares_all = any(
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            for node in tree.body
        )
        if has_imports and not declares_all:
            linter._add(
                1,
                "REPRO-L005",
                Severity.ERROR,
                "package __init__.py re-exports names but defines no "
                "__all__; declare the public surface explicitly",
            )

    suppressions, suppression_findings = collect_suppressions(source, path)
    findings = filter_findings(linter.findings, suppressions)
    findings.extend(suppression_findings)
    return sorted(findings)


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))
