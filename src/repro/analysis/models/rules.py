"""REPRO-M rules: model checks on formal artifacts.

Unlike the A-rules (payload/schema sanity on serialized automata), the
M-rules model-check the *behaviour*: reachability, blocking, and
controllability verdicts come from the bitset kernel in
:mod:`repro.automata.symbolic` and every negative verdict carries a
shortest counterexample event trace, mirroring what Supremica's
verification dialogs give the paper's authors.

Rules
-----
``REPRO-M001`` (warning)
    Unreachable states, and reachable dead states (no outgoing
    transitions, unmarked, not forbidden) — modelling debris.
``REPRO-M002`` (error)
    Blocking states — reachable but unable to reach any marked state —
    with a shortest counterexample trace to the nearest one.  Forbidden
    states are excluded: a specification *declares* bad states; blocking
    is judged on the permitted remainder.
``REPRO-M003`` (error)
    Controllability violations of a supervisor against its plant, one
    finding per violation with the witness trace.
``REPRO-M004`` (error / warning)
    Alphabet inconsistencies across a plant/specification/supervisor
    set (an event controllable in one model, uncontrollable in another;
    specification events the plant does not know), and — per model —
    alphabet events never enabled at any state (spec coverage gaps).
``REPRO-M005`` (warning)
    Uncontrollable dead-ends: a healthy reachable state with an
    uncontrollable transition into a forbidden or blocking state — the
    environment, not the supervisor, decides whether the model degrades.
``REPRO-M006`` (error / warning)
    Runtime-monitor consistency: the RES-I2/RES-I3 episode rules of
    ``resilience/monitor.py`` replayed against the supervisor model via
    a capping-episode tracker product.  Flags transitions the monitor
    would reject although the model permits them (budget raises during
    an episode, escalated criticals with no hard-drop answer) and rules
    the model can never trigger.
``REPRO-M007`` (error / warning)
    Stale persisted supervisor: re-synthesize the supremal controllable
    supervisor from the bundled plant (and specification when present)
    and compare languages and canonical digests; a divergence means the
    shipped artifact no longer matches what synthesis would produce.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.automata.automaton import Automaton, automaton_from_table
from repro.automata.events import Alphabet
from repro.automata.language import marked_language_difference
from repro.automata.serialization import canonical_digest
from repro.automata.symbolic import (
    EncodedAutomaton,
    backward_reachable,
    encode_automaton,
    forward_reachable,
    forward_search,
    nearest_state,
    restrict_states,
    synchronous_product,
    witness_trace,
)
from repro.automata.synthesis import SynthesisError, synthesize_supervisor
from repro.automata.verification import check_controllability
from repro.core.alphabet import (
    CRITICAL,
    DECREASE_CRITICAL_POWER,
    INCREASE_BIG_POWER,
    INCREASE_LITTLE_POWER,
    SAFE_POWER,
)

__all__ = [
    "MAX_LISTED",
    "MAX_PER_RULE",
    "check_alphabet_consistency",
    "check_bundle_freshness",
    "check_event_coverage",
    "check_model",
    "check_monitor_consistency",
    "check_pair_controllability",
    "check_reachability",
]

# How many state/event names a summary message lists before eliding.
MAX_LISTED = 8
# How many findings one rule may emit per model before summarizing.
MAX_PER_RULE = 10


def _names(items: list[str]) -> str:
    shown = items[:MAX_LISTED]
    suffix = ", ..." if len(items) > MAX_LISTED else ""
    return "[" + ", ".join(repr(name) for name in shown) + suffix + "]"


def _trace_text(trace: tuple[str, ...]) -> str:
    return "[" + " -> ".join(trace) + "]" if trace else "[]"


def _finding(
    path: str, rule: str, severity: Severity, message: str
) -> Finding:
    return Finding(
        path=path, line=1, rule=rule, severity=severity, message=message
    )


# ----------------------------------------------------------------------
# M001 / M002 / M005 — reachability, blocking, uncontrollable dead-ends
# ----------------------------------------------------------------------
def check_reachability(
    automaton: Automaton,
    path: str,
    *,
    role: str | None = None,
    enc: EncodedAutomaton | None = None,
) -> list[Finding]:
    """M001 (unreachable/dead), M002 (blocking + trace), M005
    (uncontrollable dead-ends).

    ``role='specification'`` skips M005 — a specification *intentionally*
    routes uncontrollable events into forbidden states so synthesis must
    avoid the prefix; flagging that would punish the paper's own models.
    """
    findings: list[Finding] = []
    enc = enc if enc is not None else encode_automaton(automaton)
    if enc.initial < 0:
        findings.append(
            _finding(
                path,
                "REPRO-M001",
                Severity.WARNING,
                f"automaton {automaton.name!r} has no initial state; every "
                "state is unreachable",
            )
        )
        return findings

    full_reach = forward_reachable(enc)
    unreachable = ~full_reach
    if unreachable.any():
        names = sorted(
            enc.state_label(int(i)) for i in np.flatnonzero(unreachable)
        )
        findings.append(
            _finding(
                path,
                "REPRO-M001",
                Severity.WARNING,
                f"automaton {automaton.name!r}: "
                f"{len(names)} unreachable state(s): {_names(names)}",
            )
        )

    # Out-degree zero, reachable, neither marked nor forbidden: a state
    # the model can enter but never leave or complete from.
    out_degree = np.zeros(enc.n_states, dtype=np.int64)
    for e in range(enc.n_events):
        if enc.src[e].size:
            np.add.at(out_degree, enc.src[e], 1)
    dead = full_reach & (out_degree == 0) & ~enc.marked & ~enc.forbidden
    if dead.any():
        names = sorted(enc.state_label(int(i)) for i in np.flatnonzero(dead))
        findings.append(
            _finding(
                path,
                "REPRO-M001",
                Severity.WARNING,
                f"automaton {automaton.name!r}: {len(names)} dead state(s) "
                f"(no outgoing transitions, unmarked): {_names(names)}",
            )
        )

    # Blocking, judged on the non-forbidden subgraph.
    keep = ~enc.forbidden
    restricted = restrict_states(enc, keep)
    tree = forward_search(restricted)
    reach = tree.visited
    blocking = reach & ~backward_reachable(restricted)
    if blocking.any():
        names = sorted(
            enc.state_label(int(i)) for i in np.flatnonzero(blocking)
        )
        witness_target = nearest_state(tree, blocking)
        trace = witness_trace(restricted, tree, witness_target)
        findings.append(
            _finding(
                path,
                "REPRO-M002",
                Severity.ERROR,
                f"automaton {automaton.name!r}: {len(names)} blocking "
                f"state(s) {_names(names)}; shortest counterexample trace "
                f"to {enc.state_label(witness_target)!r}: "
                f"{_trace_text(trace)}",
            )
        )

    if role != "specification":
        findings.extend(
            _uncontrollable_deadends(automaton, path, enc, reach, blocking, tree)
        )
    return findings


def _uncontrollable_deadends(
    automaton: Automaton,
    path: str,
    enc: EncodedAutomaton,
    reach: np.ndarray,
    blocking: np.ndarray,
    tree,
) -> list[Finding]:
    """M005: uncontrollable transitions from healthy reachable states
    into forbidden or blocking states."""
    bad = enc.forbidden | blocking
    if not bad.any():
        return []
    findings: list[Finding] = []
    hits: list[tuple[tuple[str, ...], str, str, str]] = []
    for e in range(enc.n_events):
        if enc.event_controllable[e] or not enc.src[e].size:
            continue
        src, dst = enc.src[e], enc.dst[e]
        mask = reach[src] & ~bad[src] & bad[dst]
        for k in np.flatnonzero(mask):
            source = int(src[k])
            hits.append(
                (
                    witness_trace(enc, tree, source),
                    enc.state_label(source),
                    enc.event_names[e],
                    enc.state_label(int(dst[k])),
                )
            )
    hits.sort(key=lambda h: (len(h[0]), h[0], h[1], h[2]))
    for trace, source, event, target in hits[:MAX_PER_RULE]:
        findings.append(
            _finding(
                path,
                "REPRO-M005",
                Severity.WARNING,
                f"automaton {automaton.name!r}: uncontrollable event "
                f"{event!r} forces state {source!r} into degraded state "
                f"{target!r}; witness trace: {_trace_text(trace)}",
            )
        )
    if len(hits) > MAX_PER_RULE:
        findings.append(
            _finding(
                path,
                "REPRO-M005",
                Severity.WARNING,
                f"automaton {automaton.name!r}: "
                f"{len(hits) - MAX_PER_RULE} further uncontrollable "
                "dead-end(s) elided",
            )
        )
    return findings


# ----------------------------------------------------------------------
# M003 — controllability with witness traces
# ----------------------------------------------------------------------
def check_pair_controllability(
    plant: Automaton, supervisor: Automaton, path: str
) -> list[Finding]:
    """M003: every violation of L(S/P) controllability, with traces."""
    ok, violations = check_controllability(plant, supervisor)
    if ok:
        return []
    findings = [
        _finding(
            path,
            "REPRO-M003",
            Severity.ERROR,
            f"{violation}; witness trace: {_trace_text(violation.trace)}",
        )
        for violation in violations[:MAX_PER_RULE]
    ]
    if len(violations) > MAX_PER_RULE:
        findings.append(
            _finding(
                path,
                "REPRO-M003",
                Severity.ERROR,
                f"{len(violations) - MAX_PER_RULE} further controllability "
                "violation(s) elided",
            )
        )
    return findings


# ----------------------------------------------------------------------
# M004 — alphabet consistency and spec coverage
# ----------------------------------------------------------------------
def check_event_coverage(
    automaton: Automaton,
    path: str,
    *,
    enc: EncodedAutomaton | None = None,
) -> list[Finding]:
    """M004 (per model): alphabet events never enabled at any state."""
    enc = enc if enc is not None else encode_automaton(automaton)
    silent = sorted(
        enc.event_names[e]
        for e in range(enc.n_events)
        if not enc.src[e].size
    )
    if not silent:
        return []
    return [
        _finding(
            path,
            "REPRO-M004",
            Severity.WARNING,
            f"automaton {automaton.name!r}: event(s) {_names(silent)} are "
            "in the alphabet but never enabled at any state (spec "
            "coverage gap)",
        )
    ]


def check_alphabet_consistency(
    models: dict[str, Automaton], path: str
) -> list[Finding]:
    """M004 (cross-model): attribute disagreements and plant coverage.

    An event that is controllable in one model and uncontrollable in
    another silently changes the synthesis result — error.  A
    specification event the plant's alphabet lacks constrains nothing —
    warning.
    """
    findings: list[Finding] = []
    seen: dict[str, tuple[str, bool, bool]] = {}
    for role in sorted(models):
        automaton = models[role]
        for event in automaton.alphabet:
            prior = seen.get(event.name)
            if prior is None:
                seen[event.name] = (
                    role,
                    event.controllable,
                    event.observable,
                )
                continue
            prior_role, prior_ctrl, prior_obs = prior
            if prior_ctrl != event.controllable:
                findings.append(
                    _finding(
                        path,
                        "REPRO-M004",
                        Severity.ERROR,
                        f"event {event.name!r} is "
                        f"{'controllable' if prior_ctrl else 'uncontrollable'}"
                        f" in {prior_role!r} but "
                        f"{'controllable' if event.controllable else 'uncontrollable'}"
                        f" in {role!r}",
                    )
                )
            elif prior_obs != event.observable:
                findings.append(
                    _finding(
                        path,
                        "REPRO-M004",
                        Severity.ERROR,
                        f"event {event.name!r} is "
                        f"{'observable' if prior_obs else 'unobservable'} in "
                        f"{prior_role!r} but "
                        f"{'observable' if event.observable else 'unobservable'}"
                        f" in {role!r}",
                    )
                )
    plant = models.get("plant")
    specification = models.get("specification")
    if plant is not None and specification is not None:
        plant_names = {e.name for e in plant.alphabet}
        orphaned = sorted(
            e.name
            for e in specification.alphabet
            if e.name not in plant_names
        )
        if orphaned:
            findings.append(
                _finding(
                    path,
                    "REPRO-M004",
                    Severity.WARNING,
                    f"specification event(s) {_names(orphaned)} are not in "
                    "the plant alphabet and constrain nothing",
                )
            )
    return findings


# ----------------------------------------------------------------------
# M006 — runtime-monitor consistency
# ----------------------------------------------------------------------
def _episode_tracker(alphabet: Alphabet) -> Automaton:
    """The capping-episode flag the runtime monitor keeps: Free until an
    accepted ``critical``, back to Free on ``safePower`` (the exact
    semantics of ``InvariantMonitor.capping_episode``)."""
    sigma = Alphabet.of([alphabet[CRITICAL], alphabet[SAFE_POWER]])
    return automaton_from_table(
        "EpisodeTracker",
        sigma,
        transitions=[
            ("Free", SAFE_POWER, "Free"),
            ("Free", CRITICAL, "Locked"),
            ("Locked", CRITICAL, "Locked"),
            ("Locked", SAFE_POWER, "Free"),
        ],
        initial="Free",
        marked=["Free", "Locked"],
    )


def check_monitor_consistency(
    supervisor: Automaton,
    path: str,
    *,
    enc: EncodedAutomaton | None = None,
) -> list[Finding]:
    """M006: replay the monitor's RES-I2/RES-I3 episode rules against
    the supervisor model.

    The monitor (``repro/resilience/monitor.py``) tracks a capping
    episode between an accepted ``critical`` and the next ``safePower``.
    We shadow that flag as a two-state tracker composed with the
    supervisor and check, over the *reachable* product:

    * RES-I2 shadow — the model must not enable a budget-raising action
      while the episode flag is set, else every such run is flagged by a
      monitor that is right to do so (error, with witness trace);
    * RES-I3 shadow — after an escalated ``critical`` (fired while the
      episode is active) the hard drop ``decreaseCriticalPower`` must be
      executable via controllable events only, or the monitor's demand
      can never be satisfied (error, with witness trace);
    * dead rules — if ``critical`` can never fire, RES-I2/RES-I3 can
      never trigger at runtime (warning);
    * ambiguity — a state reachable both inside and outside an episode
      makes the monitor's verdict trace-dependent (warning).

    Skipped entirely for models whose alphabet lacks the capping events.
    """
    names = {event.name for event in supervisor.alphabet}
    if CRITICAL not in names or SAFE_POWER not in names:
        return []
    enc = enc if enc is not None else encode_automaton(supervisor)
    if enc.initial < 0:
        return []
    findings: list[Finding] = []
    critical_enabled = enc.event_enabled(CRITICAL)
    if not critical_enabled.any():
        findings.append(
            _finding(
                path,
                "REPRO-M006",
                Severity.WARNING,
                f"automaton {supervisor.name!r}: {CRITICAL!r} is never "
                "enabled, so monitor rules RES-I2/RES-I3 can never trigger",
            )
        )
        return findings

    tracker = encode_automaton(_episode_tracker(supervisor.alphabet))
    # Sorted state order puts Free at 0, Locked at 1.
    locked_index = tracker.state_names.index("Locked")  # type: ignore[union-attr]
    pair = synchronous_product(enc, tracker)
    tree = forward_search(pair.product)
    visited = tree.visited.reshape(enc.n_states, tracker.n_states)
    locked_reach = visited[:, locked_index]
    free_reach = visited[:, 1 - locked_index]

    # RES-I2 shadow: budget raises while the episode flag is set.
    for event_name in (INCREASE_BIG_POWER, INCREASE_LITTLE_POWER):
        if event_name not in names:
            continue
        raised = locked_reach & enc.event_enabled(event_name)
        for state in np.flatnonzero(raised)[:MAX_PER_RULE]:
            target = int(state) * tracker.n_states + locked_index
            findings.append(
                _finding(
                    path,
                    "REPRO-M006",
                    Severity.ERROR,
                    f"automaton {supervisor.name!r}: {event_name!r} is "
                    f"enabled at state {enc.state_label(int(state))!r} "
                    "during a capping episode — the runtime monitor "
                    "(RES-I2) rejects every such execution; witness "
                    f"trace: {_trace_text(witness_trace(pair.product, tree, target))}",
                )
            )

    # RES-I3 shadow: escalated criticals must admit the hard drop.
    if DECREASE_CRITICAL_POWER in names:
        drop_enabled = enc.event_enabled(DECREASE_CRITICAL_POWER)
        critical_index = enc.event_index(CRITICAL)
        assert critical_index is not None
        src, dst = enc.src[critical_index], enc.dst[critical_index]
        controllable_only = enc.event_controllable.copy()
        emitted = 0
        for k in np.flatnonzero(locked_reach[src]):
            if emitted >= MAX_PER_RULE:
                break
            source, target = int(src[k]), int(dst[k])
            start = np.zeros(enc.n_states, dtype=bool)
            start[target] = True
            closure = forward_reachable(
                enc, start=start, event_mask=controllable_only
            )
            if (closure & drop_enabled).any():
                continue
            pair_source = source * tracker.n_states + locked_index
            trace = witness_trace(pair.product, tree, pair_source)
            emitted += 1
            findings.append(
                _finding(
                    path,
                    "REPRO-M006",
                    Severity.ERROR,
                    f"automaton {supervisor.name!r}: escalated "
                    f"{CRITICAL!r} at state {enc.state_label(source)!r} "
                    f"reaches {enc.state_label(target)!r} where "
                    f"{DECREASE_CRITICAL_POWER!r} cannot be executed via "
                    "controllable events — the monitor's RES-I3 demand is "
                    f"unsatisfiable; witness trace: "
                    f"{_trace_text(trace + (CRITICAL,))}",
                )
            )
    else:
        findings.append(
            _finding(
                path,
                "REPRO-M006",
                Severity.WARNING,
                f"automaton {supervisor.name!r}: alphabet lacks "
                f"{DECREASE_CRITICAL_POWER!r}, so the monitor's RES-I3 "
                "demand can never be satisfied",
            )
        )

    ambiguous = locked_reach & free_reach
    if ambiguous.any():
        listed = sorted(
            enc.state_label(int(i)) for i in np.flatnonzero(ambiguous)
        )
        findings.append(
            _finding(
                path,
                "REPRO-M006",
                Severity.WARNING,
                f"automaton {supervisor.name!r}: state(s) {_names(listed)} "
                "are reachable both inside and outside a capping episode; "
                "monitor verdicts for RES-I2/RES-I3 become trace-dependent",
            )
        )
    return findings


# ----------------------------------------------------------------------
# M007 — stale-bundle detection
# ----------------------------------------------------------------------
def check_bundle_freshness(
    plant: Automaton,
    supervisor: Automaton,
    path: str,
    *,
    specification: Automaton | None = None,
) -> list[Finding]:
    """M007: does re-synthesis still produce the persisted supervisor?

    With a specification we re-run the paper's full design flow
    (``supC(plant, spec)``); without one, the persisted supervisor
    itself serves as the specification — for a genuine synthesis output
    ``supC(plant, supervisor)`` reproduces it exactly, so any
    difference means the artifact predates a model change.

    Re-synthesis runs on the symbolic engine (the explicit oracle yields
    an identical supervisor, only slower — large persisted bundles made
    this rule the analyzer's long pole before the bitset fixpoint).
    """
    spec = specification if specification is not None else supervisor
    try:
        synthesis = synthesize_supervisor(plant, spec, engine="symbolic")
    except (SynthesisError, ValueError) as exc:
        return [
            _finding(
                path,
                "REPRO-M007",
                Severity.ERROR,
                f"re-synthesis from the bundled models failed: {exc}",
            )
        ]
    fresh = synthesis.supervisor
    persisted_digest = canonical_digest(supervisor)
    fresh_digest = canonical_digest(fresh)
    difference = marked_language_difference(supervisor, fresh)
    if difference is not None:
        trace, reason = difference
        return [
            _finding(
                path,
                "REPRO-M007",
                Severity.ERROR,
                "persisted supervisor is stale: re-synthesized supremal "
                f"controllable supervisor diverges after trace "
                f"{_trace_text(trace)} ({reason}); persisted digest "
                f"{persisted_digest[:12]}, re-synthesized {fresh_digest[:12]}",
            )
        ]
    if persisted_digest != fresh_digest:
        return [
            _finding(
                path,
                "REPRO-M007",
                Severity.WARNING,
                "persisted supervisor is language-equivalent to the "
                "re-synthesized one but not canonically isomorphic "
                f"(digest {persisted_digest[:12]} vs {fresh_digest[:12]}); "
                "it likely carries redundant states",
            )
        ]
    return []


# ----------------------------------------------------------------------
# Per-model driver
# ----------------------------------------------------------------------
def check_model(
    automaton: Automaton, path: str, *, role: str | None = None
) -> list[Finding]:
    """All single-model M-rules for one automaton.

    ``role`` tunes the rules: specifications skip M005 (their forbidden
    traps are intentional) and only supervisors get the M006 monitor
    replay (the monitor replays the deployed supervisor, nothing else).
    """
    enc = encode_automaton(automaton)
    findings = check_reachability(automaton, path, role=role, enc=enc)
    findings.extend(check_event_coverage(automaton, path, enc=enc))
    if role == "supervisor":
        findings.extend(check_monitor_consistency(automaton, path, enc=enc))
    return findings
