"""``python -m repro.analysis models`` — the formal model analyzer CLI.

Mirrors the flow analyzer's interface: positional paths, text/JSON/SARIF
output, a baseline of accepted findings, an incremental cache, and
``--strict`` to fail on warnings.  Two extra switches are model-check
specific: ``--no-resynth`` skips the M007 re-synthesis (the dominant
cost on large bundles) and ``--case-study`` synthesizes the paper's
Exynos supervisor in-process and scans it, so CI can gate the design
flow itself even when no artifacts are committed.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Report, Severity
from repro.analysis.flow.baseline import (
    Baseline,
    apply_baseline,
    write_baseline,
)
from repro.analysis.flow.sarif import report_to_json, report_to_sarif
from repro.analysis.models.cache import (
    DEFAULT_MODEL_CACHE_DIR,
    ModelCheckCache,
)
from repro.analysis.models.scan import (
    ModelScanResult,
    ModelScanStats,
    analyze_model_set,
    scan_paths,
)

__all__ = ["models_main"]

TOOL_NAME = "repro-models"


def _case_study_result(*, resynthesize: bool) -> ModelScanResult:
    """Synthesize the paper's case-study supervisor and scan it."""
    from repro.core.synthesis_flow import build_case_study_supervisor

    verified = build_case_study_supervisor()
    findings = analyze_model_set(
        {
            "plant": verified.plant,
            "specification": verified.specification,
            "supervisor": verified.supervisor,
        },
        path="<case-study>",
        resynthesize=resynthesize,
    )
    report = Report()
    report.extend(findings)
    report.artifacts_checked = 3
    report.files_checked = 1
    stats = ModelScanStats(
        units_scanned=1,
        models_checked=3,
        resynthesized=1 if resynthesize else 0,
    )
    return ModelScanResult(report=report, stats=stats)


def models_main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.analysis models [options] [paths...]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis models",
        description="Formal model analyzer: symbolic reachability, "
        "blocking/controllability counterexamples, monitor consistency "
        "and stale-bundle detection (rules REPRO-M001..M007)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="model files, model-set directories or bundle directories "
        "(default: ./artifacts if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("models-baseline.json"),
        help="baseline file of accepted findings (default: "
        "models-baseline.json; missing file = empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_MODEL_CACHE_DIR,
        help="incremental cache directory (default: "
        ".analysis-cache/models)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache",
    )
    parser.add_argument(
        "--no-resynth",
        action="store_true",
        help="skip the M007 re-synthesis check (fast mode)",
    )
    parser.add_argument(
        "--case-study",
        action="store_true",
        help="synthesize the paper's case-study supervisor in-process "
        "and scan it instead of walking paths",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors",
    )
    args = parser.parse_args(argv)

    resynthesize = not args.no_resynth
    if args.case_study:
        result = _case_study_result(resynthesize=resynthesize)
    else:
        paths = args.paths or (
            ["artifacts"] if Path("artifacts").is_dir() else ["."]
        )
        cache = None if args.no_cache else ModelCheckCache(args.cache_dir)
        result = scan_paths(paths, cache=cache, resynthesize=resynthesize)
        if cache is not None:
            result.stats.cache_hits = cache.hits
            result.stats.cache_misses = cache.misses
    report = result.report

    if args.write_baseline:
        count = write_baseline(sorted(report.findings), args.baseline)
        print(f"wrote {count} baseline entries to {args.baseline}")
        return 0

    if args.baseline.is_file():
        baseline = Baseline.load(args.baseline)
        filtered = Report(
            findings=apply_baseline(sorted(report.findings), baseline),
            files_checked=report.files_checked,
            artifacts_checked=report.artifacts_checked,
        )
        report = filtered

    if args.format == "json":
        rendered = report_to_json(
            report, stats=result.stats.as_dict(), tool_name=TOOL_NAME
        )
    elif args.format == "sarif":
        rendered = report_to_sarif(report, tool_name=TOOL_NAME)
    else:
        rendered = report.format_text() + "\n"
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
        print(f"wrote {args.output}: {report.summary()}")
    else:
        print(rendered, end="")

    failing = Severity.WARNING if args.strict else Severity.ERROR
    has_failures = any(f.severity >= failing for f in report.findings)
    return 1 if has_failures else 0
