"""Formal model analyzer: REPRO-M rules over automata and bundles.

The third analyzer tier.  Where the artifact verifier (A-rules) checks
*payload shape* and the flow analyzer (F-rules) checks *Python source*,
this tier model-checks the *behaviour* of the formal artifacts the repo
ships — plants, specifications, synthesized supervisors, persisted
policy bundles — with the bitset reachability kernel from
:mod:`repro.automata.symbolic`, attaching a shortest counterexample
trace to every negative verdict.
"""

from repro.analysis.models.cache import (
    DEFAULT_MODEL_CACHE_DIR,
    MODEL_CHECK_SCHEMA,
    ModelCheckCache,
)
from repro.analysis.models.cli import models_main
from repro.analysis.models.rules import (
    check_alphabet_consistency,
    check_bundle_freshness,
    check_event_coverage,
    check_model,
    check_monitor_consistency,
    check_pair_controllability,
    check_reachability,
)
from repro.analysis.models.scan import (
    MODEL_ROLES,
    ModelScanResult,
    ModelScanStats,
    analyze_model_set,
    infer_role,
    scan_paths,
)

__all__ = [
    "DEFAULT_MODEL_CACHE_DIR",
    "MODEL_CHECK_SCHEMA",
    "MODEL_ROLES",
    "ModelCheckCache",
    "ModelScanResult",
    "ModelScanStats",
    "analyze_model_set",
    "check_alphabet_consistency",
    "check_bundle_freshness",
    "check_event_coverage",
    "check_model",
    "check_monitor_consistency",
    "check_pair_controllability",
    "check_reachability",
    "infer_role",
    "models_main",
    "scan_paths",
]
