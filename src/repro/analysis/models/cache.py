"""Digest-keyed incremental cache for model-check results.

Same sidecar discipline as :class:`repro.analysis.flow.cache.ModuleCache`
but keyed per model-check *unit* (one automaton file, or one bundle
directory) on the sha256 of its raw content bytes.  Model checking is
pure in the unit's content, so a content hit can replay the stored
finding list without re-running reachability — exactly the property the
flow analyzer exploits for source modules.

The schema salt folds in the package version; bump
:data:`MODEL_CHECK_SCHEMA` whenever a rule's message wording or
semantics change so stale verdicts cannot leak through an old cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro import __version__
from repro.analysis.findings import Finding

__all__ = ["DEFAULT_MODEL_CACHE_DIR", "MODEL_CHECK_SCHEMA", "ModelCheckCache"]

# Bump when any M-rule changes what it reports.
MODEL_CHECK_SCHEMA = "model-check/1"

DEFAULT_MODEL_CACHE_DIR = Path(".analysis-cache") / "models"


class ModelCheckCache:
    """Pickle-per-unit cache of ``list[Finding]`` with sha256 sidecars."""

    def __init__(self, root: str | Path = DEFAULT_MODEL_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keys ----------------------------------------------------------
    @property
    def salt(self) -> str:
        return f"{MODEL_CHECK_SCHEMA}/{__version__}"

    def key_for(self, unit: str, content: bytes) -> str:
        hasher = hashlib.sha256()
        hasher.update(self.salt.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(unit.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(content)
        return hasher.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- lookup --------------------------------------------------------
    def load(self, unit: str, content: bytes) -> list[Finding] | None:
        key = self.key_for(unit, content)
        entry = self._entry_path(key)
        sidecar = entry.with_suffix(".pkl.sha256")
        try:
            payload = entry.read_bytes()
            expected = sidecar.read_text(encoding="utf-8").strip()
        except OSError:
            self.misses += 1
            return None
        if hashlib.sha256(payload).hexdigest() != expected:
            self._evict(entry, sidecar)
            self.misses += 1
            return None
        try:
            findings = pickle.loads(payload)
        except Exception:
            self._evict(entry, sidecar)
            self.misses += 1
            return None
        if not isinstance(findings, list) or not all(
            isinstance(f, Finding) for f in findings
        ):
            self._evict(entry, sidecar)
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(self, unit: str, content: bytes, findings: list[Finding]) -> None:
        key = self.key_for(unit, content)
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(list(findings), protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        self._atomic_write(entry, payload)
        self._atomic_write(
            entry.with_suffix(".pkl.sha256"), (digest + "\n").encode("ascii")
        )

    # -- internals -----------------------------------------------------
    @staticmethod
    def _atomic_write(target: Path, data: bytes) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, target)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _evict(self, entry: Path, sidecar: Path) -> None:
        self.evictions += 1
        for stale in (entry, sidecar):
            try:
                stale.unlink()
            except OSError:
                pass
