"""Unit discovery and orchestration for the formal model analyzer.

The analyzer checks *model-check units*:

* a single serialized automaton ``*.json`` (role inferred from the file
  stem: ``plant``, ``specification``/``spec``, ``supervisor``);
* a policy-bundle directory (``bundle.json`` manifest) — the embedded
  supervisor/plant automata are extracted straight from the manifest so
  a bundle with damaged gain arrays can still be model-checked;
* a directory holding two or more role-named automaton files — treated
  as one plant/specification/supervisor *model set* so the cross-model
  rules (M003 controllability, M004 alphabet consistency, M007
  staleness) apply.

Each unit is cached by the sha256 of its raw content
(:class:`~repro.analysis.models.cache.ModelCheckCache`): unchanged
artifacts replay their stored findings without re-running reachability.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.findings import Finding, Report, Severity
from repro.analysis.models.cache import ModelCheckCache
from repro.analysis.models.rules import (
    check_alphabet_consistency,
    check_bundle_freshness,
    check_model,
    check_pair_controllability,
)
from repro.automata.automaton import Automaton
from repro.automata.serialization import automaton_from_dict
from repro.core.persistence import BUNDLE_MANIFEST

__all__ = [
    "MODEL_ROLES",
    "ModelScanResult",
    "ModelScanStats",
    "analyze_model_set",
    "infer_role",
    "scan_paths",
]

# File-stem -> canonical role.  ``spec`` is accepted as an alias because
# the paper's figures label the specification automaton ``SP``/"spec".
MODEL_ROLES: dict[str, str] = {
    "plant": "plant",
    "specification": "specification",
    "spec": "specification",
    "supervisor": "supervisor",
}

_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "results", "output"}


def infer_role(stem: str) -> str | None:
    """Canonical model role for a file stem, or ``None``."""
    return MODEL_ROLES.get(stem.lower())


@dataclass
class ModelScanStats:
    """Counters the CLI and tests assert on."""

    units_scanned: int = 0
    models_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    resynthesized: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "units_scanned": self.units_scanned,
            "models_checked": self.models_checked,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resynthesized": self.resynthesized,
        }


@dataclass
class ModelScanResult:
    report: Report
    stats: ModelScanStats = field(default_factory=ModelScanStats)


def _finding(path: str, rule: str, message: str) -> Finding:
    return Finding(
        path=path, line=1, rule=rule, severity=Severity.ERROR, message=message
    )


def _load_automaton_file(
    path: Path,
) -> tuple[Automaton | None, list[Finding]]:
    """Decode one serialized automaton, reusing the A-rule vocabulary."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        return None, [
            _finding(str(path), "REPRO-A001", f"unreadable JSON: {exc}")
        ]
    try:
        return automaton_from_dict(payload), []
    except Exception as exc:
        return None, [
            _finding(
                str(path),
                "REPRO-A002",
                f"automaton payload fails to decode: {exc}",
            )
        ]


# ----------------------------------------------------------------------
# Model sets
# ----------------------------------------------------------------------
def analyze_model_set(
    models: Mapping[str, Automaton],
    *,
    path: str,
    paths: Mapping[str, str] | None = None,
    resynthesize: bool = True,
) -> list[Finding]:
    """All M-rules over a role -> automaton mapping.

    ``paths`` optionally maps each role to the file its findings should
    anchor at; cross-model findings anchor at ``path``.  Set
    ``resynthesize=False`` to skip the M007 re-synthesis (it dominates
    runtime on large models).
    """
    normalized = {
        MODEL_ROLES.get(role.lower(), role.lower()): automaton
        for role, automaton in models.items()
    }
    anchors = dict(paths or {})
    findings: list[Finding] = []
    for role in sorted(normalized):
        findings.extend(
            check_model(
                normalized[role], anchors.get(role, path), role=role
            )
        )
    findings.extend(check_alphabet_consistency(normalized, path))
    plant = normalized.get("plant")
    supervisor = normalized.get("supervisor")
    if plant is not None and supervisor is not None:
        findings.extend(check_pair_controllability(plant, supervisor, path))
        if resynthesize:
            findings.extend(
                check_bundle_freshness(
                    plant,
                    supervisor,
                    path,
                    specification=normalized.get("specification"),
                )
            )
    return findings


# ----------------------------------------------------------------------
# Unit discovery
# ----------------------------------------------------------------------
def _looks_like_bundle_dir(path: Path) -> bool:
    return path.is_dir() and (path / BUNDLE_MANIFEST).is_file()


def _walk_units(
    paths: Iterable[Path],
) -> tuple[list[Path], list[Path], list[Path]]:
    """Partition inputs into (single model files, set dirs, bundle dirs)."""
    model_files: list[Path] = []
    set_dirs: list[Path] = []
    bundle_dirs: list[Path] = []

    def role_files(directory: Path) -> list[Path]:
        return [
            child
            for child in sorted(directory.iterdir())
            if child.is_file()
            and child.suffix == ".json"
            and infer_role(child.stem) is not None
        ]

    def visit_dir(directory: Path) -> None:
        if _looks_like_bundle_dir(directory):
            bundle_dirs.append(directory)
            return
        grouped = role_files(directory)
        if len(grouped) >= 2:
            set_dirs.append(directory)
        else:
            model_files.extend(grouped)
        for child in sorted(directory.iterdir()):
            if child.name in _SKIP_DIRS or child.name.startswith("."):
                continue
            if child.is_dir():
                visit_dir(child)

    for path in paths:
        if path.is_dir():
            visit_dir(path)
        elif path.is_file():
            if path.name == BUNDLE_MANIFEST:
                bundle_dirs.append(path.parent)
            elif path.suffix == ".json":
                model_files.append(path)
    return model_files, set_dirs, bundle_dirs


def _unit_content(files: Sequence[Path]) -> bytes:
    chunks: list[bytes] = []
    for file in files:
        chunks.append(file.name.encode("utf-8") + b"\x00")
        try:
            chunks.append(file.read_bytes())
        except OSError:
            chunks.append(b"<unreadable>")
        chunks.append(b"\x00")
    return b"".join(chunks)


def _pack_unit(findings: list[Finding], models: int) -> list[Finding]:
    """Prefix a marker finding carrying the unit's model count so cache
    replays can restore the stats without re-decoding the artifacts."""
    marker = Finding(
        path="",
        line=0,
        rule="REPRO-C001",
        severity=Severity.INFO,
        message=f"__models_checked__:{models}",
    )
    return [marker, *findings]


def _unpack_unit(cached: list[Finding]) -> tuple[list[Finding], int]:
    if cached and cached[0].message.startswith("__models_checked__:"):
        return cached[1:], int(cached[0].message.rsplit(":", 1)[1])
    return cached, 0


# ----------------------------------------------------------------------
# Unit analyzers
# ----------------------------------------------------------------------
def _analyze_model_file(
    path: Path, *, resynthesize: bool
) -> tuple[list[Finding], int, bool]:
    automaton, errors = _load_automaton_file(path)
    if automaton is None:
        return errors, 0, False
    role = infer_role(path.stem)
    return check_model(automaton, str(path), role=role), 1, False


def _set_result(
    findings: list[Finding],
    models: dict[str, Automaton],
    *,
    resynthesize: bool,
) -> tuple[list[Finding], int, bool]:
    ran_resynthesis = (
        resynthesize and "plant" in models and "supervisor" in models
    )
    return findings, len(models), ran_resynthesis


def _analyze_set_dir(
    directory: Path, *, resynthesize: bool
) -> tuple[list[Finding], int, bool]:
    findings: list[Finding] = []
    models: dict[str, Automaton] = {}
    anchors: dict[str, str] = {}
    for child in sorted(directory.iterdir()):
        if not (child.is_file() and child.suffix == ".json"):
            continue
        role = infer_role(child.stem)
        if role is None:
            continue
        automaton, errors = _load_automaton_file(child)
        findings.extend(errors)
        if automaton is not None:
            models[role] = automaton
            anchors[role] = str(child)
    findings.extend(
        analyze_model_set(
            models,
            path=str(directory),
            paths=anchors,
            resynthesize=resynthesize,
        )
    )
    return _set_result(findings, models, resynthesize=resynthesize)


def _analyze_bundle_unit(
    directory: Path, *, resynthesize: bool
) -> tuple[list[Finding], int, bool]:
    manifest_path = directory / BUNDLE_MANIFEST
    try:
        manifest: Any = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        return (
            [
                _finding(
                    str(manifest_path),
                    "REPRO-A001",
                    f"unreadable manifest: {exc}",
                )
            ],
            0,
            False,
        )
    if not isinstance(manifest, dict) or "supervisor" not in manifest:
        return (
            [
                _finding(
                    str(manifest_path),
                    "REPRO-A009",
                    "bundle manifest has no supervisor payload",
                )
            ],
            0,
            False,
        )
    models: dict[str, Automaton] = {}
    findings: list[Finding] = []
    for role in ("supervisor", "plant"):
        payload = manifest.get(role)
        if payload is None:
            continue
        try:
            models[role] = automaton_from_dict(payload)
        except Exception as exc:
            findings.append(
                _finding(
                    str(manifest_path),
                    "REPRO-A002",
                    f"bundle {role} payload fails to decode: {exc}",
                )
            )
    findings.extend(
        analyze_model_set(
            models, path=str(manifest_path), resynthesize=resynthesize
        )
    )
    return _set_result(findings, models, resynthesize=resynthesize)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def scan_paths(
    paths: Sequence[str | Path],
    *,
    cache: ModelCheckCache | None = None,
    resynthesize: bool = True,
) -> ModelScanResult:
    """Model-check every unit under ``paths`` and aggregate a report."""
    resolved = [Path(p) for p in paths]
    report = Report()
    stats = ModelScanStats()
    for path in resolved:
        if not path.exists():
            report.add(
                Finding(
                    path=str(path),
                    line=0,
                    rule="REPRO-C001",
                    severity=Severity.ERROR,
                    message="input path does not exist",
                )
            )

    model_files, set_dirs, bundle_dirs = _walk_units(resolved)
    # The resynthesize flag changes what a unit reports, so cached runs
    # with a different flag must not be replayed.
    mode = b"resynth\x00" if resynthesize else b"quick\x00"

    units: list[tuple[str, Sequence[Path], Any]] = []
    for file in model_files:
        units.append((str(file), (file,), _analyze_model_file))
    for directory in set_dirs:
        members = [
            child
            for child in sorted(directory.iterdir())
            if child.is_file()
            and child.suffix == ".json"
            and infer_role(child.stem) is not None
        ]
        units.append((str(directory), members, _analyze_set_dir))
    for directory in bundle_dirs:
        units.append(
            (str(directory), (directory / BUNDLE_MANIFEST,), _analyze_bundle_unit)
        )

    for unit_name, content_files, analyzer in units:
        stats.units_scanned += 1
        content = mode + _unit_content(content_files)
        if cache is not None:
            cached = cache.load(unit_name, content)
            if cached is not None:
                findings, models = _unpack_unit(cached)
                report.extend(findings)
                stats.models_checked += models
                stats.cache_hits += 1
                continue
            stats.cache_misses += 1
        target = Path(unit_name)
        findings, models, ran_resynthesis = analyzer(
            target, resynthesize=resynthesize
        )
        if ran_resynthesis:
            stats.resynthesized += 1
        report.extend(findings)
        stats.models_checked += models
        if cache is not None:
            cache.store(unit_name, content, _pack_unit(findings, models))

    report.artifacts_checked = stats.models_checked
    report.files_checked = stats.units_scanned
    return ModelScanResult(report=report, stats=stats)
