"""Inline finding suppressions: ``# repro: noqa[RULE-ID, ...]``.

A source line carrying the comment suppresses findings of the named
rules **on that physical line** (the line the finding anchors at — for
multi-line statements, put the comment on the statement's first line).
The marker is deliberately namespaced (``repro:``) so it cannot collide
with flake8/ruff ``noqa`` handling, and deliberately requires explicit
rule ids: there is no blanket ``noqa`` — every suppression names what it
silences and is validated against the rule registry.  A suppression
naming an unknown rule id is itself an error finding (``REPRO-N001``,
the lint-of-the-lint), so a typo cannot silently disable nothing.

Both the file-local lint (:mod:`repro.analysis.lint`) and the
whole-program flow analyzer (:mod:`repro.analysis.flow`) honor the same
markers through this module.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.analysis.findings import Finding, Severity, known_rule_ids

__all__ = [
    "SUPPRESSION_PATTERN",
    "collect_suppressions",
    "filter_findings",
]

# `# repro: noqa[REPRO-L006]` / `# repro: noqa[REPRO-F003, REPRO-F004]`
# Anchored at the comment start: a comment (or docstring) merely
# *mentioning* the syntax mid-text is not a suppression.
SUPPRESSION_PATTERN = re.compile(
    r"^#\s*repro:\s*noqa\[(?P<ids>[^\]]*)\]"
)


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """(lineno, text) for each comment token; [] if tokenization fails."""
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # broken source is REPRO-L000's problem, not ours
    return comments


def collect_suppressions(
    source: str, path: str
) -> tuple[dict[int, frozenset[str]], list[Finding]]:
    """Parse suppression markers out of ``source``.

    Returns ``(suppressions, findings)`` where ``suppressions`` maps a
    1-based line number to the rule ids suppressed on that line, and
    ``findings`` holds one ``REPRO-N001`` error per id that is not in
    the rule registry (including an empty bracket list).
    """
    if "repro:" not in source:  # cheap pre-filter for the common case
        return {}, []
    known = known_rule_ids()
    suppressions: dict[int, frozenset[str]] = {}
    findings: list[Finding] = []
    for lineno, comment in _comment_tokens(source):
        match = SUPPRESSION_PATTERN.match(comment)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        if not ids:
            findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    rule="REPRO-N001",
                    severity=Severity.ERROR,
                    message="empty suppression `# repro: noqa[]`; name the "
                    "rule ids being silenced",
                )
            )
            continue
        valid = frozenset(rule for rule in ids if rule in known)
        for rule in ids:
            if rule not in known:
                findings.append(
                    Finding(
                        path=path,
                        line=lineno,
                        rule="REPRO-N001",
                        severity=Severity.ERROR,
                        message=f"suppression names unknown rule id {rule!r}; "
                        "see repro.analysis.findings.RULE_REGISTRY",
                    )
                )
        if valid:
            suppressions[lineno] = valid
    return suppressions, findings


def filter_findings(
    findings: list[Finding],
    suppressions: dict[int, frozenset[str]],
) -> list[Finding]:
    """Drop findings whose (line, rule) is suppressed.

    ``REPRO-N001`` findings are never suppressible — a suppression
    cannot vouch for itself.
    """
    if not suppressions:
        return list(findings)
    return [
        f
        for f in findings
        if f.rule == "REPRO-N001"
        or f.rule not in suppressions.get(f.line, frozenset())
    ]
