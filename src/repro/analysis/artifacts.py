"""File-level artifact analysis: JSON automata and policy bundles.

Maps on-disk control artifacts to the checks in
:mod:`repro.analysis.automata_checks` and
:mod:`repro.analysis.gain_checks`:

* ``*.json`` containing an automaton payload (the
  :mod:`repro.automata.serialization` format) — structural, reachability
  and round-trip checks;
* a directory with a ``bundle.json`` manifest (the
  :mod:`repro.core.persistence` policy-bundle format) — per-automaton
  checks, cross-module alphabet consistency, closed-loop
  controllability/nonblocking of supervisor vs bundled plant, and
  numeric checks on every gain set in ``gains.npz``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.automata_checks import (
    check_automaton_payload,
    check_modular_alphabets,
    check_supervisor_against_plant,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.gain_checks import check_gains
from repro.automata.serialization import automaton_from_dict
from repro.core.persistence import BUNDLE_MANIFEST, gains_from_arrays

__all__ = [
    "analyze_automaton_file",
    "analyze_bundle_dir",
    "looks_like_automaton_payload",
    "looks_like_bundle_dir",
]


def _finding(path: str, rule: str, message: str) -> Finding:
    return Finding(
        path=path, line=1, rule=rule, severity=Severity.ERROR, message=message
    )


def looks_like_automaton_payload(payload: Any) -> bool:
    """Heuristic: a dict with the serialization format's key shape."""
    return isinstance(payload, dict) and {
        "states",
        "transitions",
        "events",
    } <= payload.keys()


def looks_like_bundle_dir(path: Path) -> bool:
    return path.is_dir() and (path / BUNDLE_MANIFEST).is_file()


def analyze_automaton_file(path: str | Path) -> list[Finding]:
    """Check one serialized automaton JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [_finding(str(path), "REPRO-A001", f"unreadable JSON: {exc}")]
    if not looks_like_automaton_payload(payload):
        return [
            _finding(
                str(path),
                "REPRO-A001",
                "JSON file is not an automaton payload (missing "
                "states/transitions/events keys)",
            )
        ]
    return check_automaton_payload(payload, str(path))


def analyze_bundle_dir(path: str | Path) -> list[Finding]:
    """Check a policy-bundle directory end to end."""
    path = Path(path)
    manifest_path = path / BUNDLE_MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [
            _finding(str(manifest_path), "REPRO-A001", f"unreadable manifest: {exc}")
        ]
    if manifest.get("format") != "spectr-policy-bundle/1":
        return [
            _finding(
                str(manifest_path),
                "REPRO-A001",
                f"unsupported bundle format {manifest.get('format')!r}",
            )
        ]

    findings: list[Finding] = []
    payloads: dict[str, Any] = {}
    for role in ("supervisor", "plant"):
        payload = manifest.get(role)
        if payload is None:
            if role == "supervisor":
                findings.append(
                    _finding(
                        str(manifest_path),
                        "REPRO-A001",
                        "bundle has no supervisor automaton",
                    )
                )
            continue
        payloads[role] = payload
        findings.extend(
            check_automaton_payload(payload, f"{manifest_path}#{role}")
        )

    findings.extend(check_modular_alphabets(payloads, str(manifest_path)))

    clean_so_far = not any(f.severity == Severity.ERROR for f in findings)
    if clean_so_far and "supervisor" in payloads and "plant" in payloads:
        findings.extend(
            check_supervisor_against_plant(
                automaton_from_dict(payloads["plant"]),
                automaton_from_dict(payloads["supervisor"]),
                str(manifest_path),
            )
        )

    findings.extend(_analyze_bundle_gains(path, manifest))
    return findings


def _analyze_bundle_gains(path: Path, manifest: dict[str, Any]) -> list[Finding]:
    gains_path = path / "gains.npz"
    subsystems = manifest.get("subsystems", {})
    if not subsystems:
        return []
    if not gains_path.is_file():
        return [
            _finding(
                str(gains_path),
                "REPRO-G002",
                "manifest declares gain sets but gains.npz is missing",
            )
        ]
    try:
        with np.load(gains_path) as data:
            arrays = {key: data[key] for key in data.files}
    except (OSError, ValueError) as exc:
        return [
            _finding(str(gains_path), "REPRO-G001", f"unreadable gains.npz: {exc}")
        ]

    findings: list[Finding] = []
    for subsystem, meta in subsystems.items():
        for gain_name in meta.get("gain_sets", ()):
            prefix = f"{subsystem}/{gain_name}"
            try:
                gains = gains_from_arrays(arrays, prefix, gain_name)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                findings.append(
                    _finding(
                        str(gains_path),
                        "REPRO-G002",
                        f"gain set {prefix!r} cannot be reconstructed: {exc}",
                    )
                )
                continue
            findings.extend(
                check_gains(gains, f"{gains_path}#{prefix}")
            )
    return findings
