"""Structure-of-arrays fleet kernel: step N simulated SoCs per array op.

One :class:`FleetPlatform` advances ``N`` independent simulated devices
per tick with a handful of numpy operations instead of ``N`` scalar
``ExynosSoC.step`` calls.  Per-cluster frequency / active cores / power
live as ``(N,)`` float arrays; every per-tick quantity is computed with
element-wise array ops whose per-row results are **bit-identical** to
the scalar oracle (``repro.platform.soc``).  The equivalence contract is
enforced by ``tests/platform/test_fleet_equivalence.py`` and the golden
fleet fixture in ``tests/exec/fixtures``.

Bit-identity ground rules (each is probe-verified and pinned by tests):

* Anything involving a Python ``**`` in the scalar path (voltage², the
  frequency-scale power law, scheduler core strength) is precomputed per
  operating point with *Python-float* arithmetic into lookup tables
  indexed by snapped OPP — array ``**`` is not bit-identical to scalar
  ``**``.
* Sensor noise comes from per-device ``Generator``s seeded exactly like
  the scalar devices.  Each device pre-draws ``standard_normal`` blocks
  in the documented order (QoS workload draw first when noisy, then Big
  power + per-core PMUs, then Little) — ``rng.normal(1, s)`` equals
  ``1 + s * standard_normal()`` draw-for-draw, and block draws consume
  the ziggurat stream identically to interleaved scalar draws (see
  ``tests/platform/test_rng_contract.py``).
* Masked updates use ``np.where`` (in-place masked assignment can turn
  ``+0.0`` into ``-0.0``); clamps use ``minimum``/``maximum`` chains
  that replay the scalar branch structure.

The kernel reproduces only the scalar *fast* path: plain noisy sensors,
no idle insertion, fewer than 8 cores per cluster, no attached fault
layers.  ``soc.fleet_sensor_layout`` rejects anything else loudly;
faulted devices run on the scalar oracle (see
``repro.exec.fleet_jobs``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.control.fused import fused_kernel
from repro.platform.opp import big_cluster_opps, little_cluster_opps
from repro.platform.perf import (
    amdahl_speedup,
    big_cluster_perf_model,
    frequency_scale,
    little_cluster_perf_model,
)
from repro.platform.power import (
    big_cluster_power_model,
    little_cluster_power_model,
)
from repro.platform.scheduler import HMPScheduler
from repro.platform.soc import (
    Cluster,
    PlatformError,
    SoCConfig,
    fleet_sensor_layout,
)
from repro.workloads.base import BackgroundTask, QoSWorkload

__all__ = [
    "FleetCluster",
    "FleetClusterTelemetry",
    "FleetPlatform",
    "FleetTelemetry",
]

_BIG_ID = np.int8(1)
_LITTLE_ID = np.int8(2)


class FleetCluster:
    """SoA state of one cluster role (big or little) across all devices.

    Built from a *template* scalar :class:`Cluster` so the initial state,
    sensor parameters and model coefficients are exactly what a freshly
    constructed scalar device would have.
    """

    def __init__(
        self, template: Cluster, n_devices: int, *, strength_exponent: float
    ) -> None:  # repro: shape[n_devices: int[N]]
        sensor, pmu_sensors = fleet_sensor_layout(template)
        self.name = template.name
        self.n_cores = template.n_cores  # repro: shape[int[C]]
        self.n_cores_f = float(template.n_cores)  # repro: shape[float]
        self.opps = template.opps
        self.power_model = template.power_model
        self.perf_model = template.perf_model
        points = template.opps.points
        self.freq_table = template.opps.frequency_array  # repro: shape[(n_opp,) f8]
        self.volt_table = template.opps.voltage_array  # repro: shape[(n_opp,) f8]
        # Per-OPP lookup tables, all built with Python-float arithmetic
        # so indexed values match the scalar expressions bit-for-bit.
        self.dynamic_table, self.leakage_table = (
            template.power_model.per_opp_tables(template.opps)
        )
        ipc = template.perf_model.ipc_factor
        self.core_rate_table = np.array(  # repro: shape[(n_opp,) f8]
            [ipc * p.frequency_ghz for p in points], dtype=float
        )
        self.strength_table = np.array(  # repro: shape[(n_opp,) f8]
            [(ipc * p.frequency_ghz) ** strength_exponent for p in points],
            dtype=float,
        )
        self.idle_core_fraction = template.power_model.idle_core_fraction
        self.uncore_power = template.power_model.uncore_power
        self.power_noise_fraction = sensor.noise_fraction
        self.power_resolution = sensor.resolution
        self.power_floor = sensor.floor
        self.pmu_noise_fractions = [s.noise_fraction for s in pmu_sensors]
        self.pmu_resolutions = [s.resolution for s in pmu_sensors]
        self.pmu_floors = [s.floor for s in pmu_sensors]
        # Fused sensor rows: column 0 is the power sensor, columns
        # 1..n_cores the per-core PMUs.  Broadcasting one (1 + n_cores,)
        # parameter row against the (N, 1 + n_cores) noise block applies
        # the same elementwise ops as the per-sensor loop.
        sensors = [sensor, *pmu_sensors]
        self.noise_row = np.array(  # repro: shape[(C+1,) f8]
            [s.noise_fraction for s in sensors], dtype=float
        )
        resolutions = np.array([s.resolution for s in sensors], dtype=float)
        self.res_mask_row = resolutions > 0  # repro: shape[(C+1,) b1]
        self.any_resolution = bool(self.res_mask_row.any())  # repro: shape[bool]
        self.safe_res_row = np.where(  # repro: shape[(C+1,) f8]
            self.res_mask_row, resolutions, 1.0
        )
        self.floor_row = np.array(  # repro: shape[(C+1,) f8]
            [s.floor for s in sensors], dtype=float
        )
        self.core_ids = np.arange(self.n_cores, dtype=float)  # repro: shape[(C,) f8]
        self._reading_buf = np.empty(  # repro: shape[(N, C+1) f8]
            (n_devices, 1 + self.n_cores), dtype=float
        )
        self.res_mask_i8 = np.ascontiguousarray(  # repro: shape[(C+1,) i1]
            self.res_mask_row, dtype=np.int8
        )
        # Compiled-telemetry state: the kernel handle is set by
        # FleetPlatform after a per-cluster differential probe.  Output
        # buffers are double-buffered so the previous tick's telemetry
        # arrays stay intact without per-tick allocation.
        self.telemetry_kernel = None
        self._telemetry_args = None
        self._out_flip = 0  # repro: shape[int]
        self._power_bufs = (
            np.empty(n_devices, dtype=float),
            np.empty(n_devices, dtype=float),
        )
        self._ips_bufs = (
            np.empty(n_devices, dtype=float),
            np.empty(n_devices, dtype=float),
        )
        # DVFS snap scratch: reused as ``opp_idx`` every set_frequency.
        self._snap_out = np.empty(n_devices, dtype=np.int64)  # repro: shape[(N,) i8]
        initial = template.opps.snap_indices(
            np.array([template.frequency_ghz], dtype=float)
        )
        self.opp_idx = np.full(n_devices, int(initial[0]))  # repro: shape[(N,) i8]
        self.frequency = self.freq_table[self.opp_idx]  # repro: shape[(N,) f8]
        self.voltage = self.volt_table[self.opp_idx]  # repro: shape[(N,) f8]
        self.active = np.full(  # repro: shape[(N,) f8]
            n_devices, float(template.active_cores)
        )

    def set_frequency(self, requests: np.ndarray) -> np.ndarray:
        # repro: shape[requests: (N,) f8; -> (N,) f8]
        """Vectorized DVFS: snap every row's request to its OPP."""
        idx = self.opps.snap_indices(requests, out=self._snap_out)
        self.opp_idx = idx
        self.frequency = self.freq_table[idx]
        self.voltage = self.volt_table[idx]
        return self.frequency

    def apply_core_requests(
        self, requests: np.ndarray, mask: np.ndarray
    ) -> None:  # repro: shape[requests: (N,) f8; mask: (N,) b1]
        """Vectorized hotplug for the rows selected by ``mask``.

        ``np.rint`` is round-half-to-even, matching the scalar
        ``int(round(float(count)))`` actuator semantics exactly.
        """
        snapped = np.minimum(
            np.maximum(np.rint(requests), 1.0), self.n_cores_f
        )
        # In-place write keeps the array's identity (and with it the
        # compiled-telemetry pointer cache) stable; np.where materializes
        # its result before the assignment copies it over.
        self.active[...] = np.where(mask, snapped, self.active)


@dataclass
class FleetClusterTelemetry:
    """Per-cluster sensor readings, one ``(N,)`` array per field."""

    frequency_ghz: np.ndarray  # repro: shape[(N,) f8]
    voltage_v: np.ndarray  # repro: shape[(N,) f8]
    active_cores: np.ndarray  # repro: shape[(N,) f8]
    busy_core_equivalents: np.ndarray  # repro: shape[(N,) f8]
    power_w: np.ndarray  # repro: shape[(N,) f8]
    ips: np.ndarray  # repro: shape[(N,) f8]


@dataclass
class FleetTelemetry:
    """Fleet-wide sensor snapshot for one interval.

    ``chip_power_w`` is precomputed with the same ``big + little``
    addition as the scalar ``Telemetry.chip_power_w`` property.
    """

    time_s: float
    qos_rate: np.ndarray
    qos_raw: np.ndarray
    big: FleetClusterTelemetry
    little: FleetClusterTelemetry
    chip_power_w: np.ndarray


class FleetPlatform:
    """N simulated Exynos-like devices advanced per tick by array ops.

    Every device runs the *same* workload/scenario (one N-device job
    replaces N identical jobs with different seeds); per-device noise
    comes from independent generators seeded with the per-row seeds.
    """

    def __init__(
        self,
        *,
        qos_app: QoSWorkload | None = None,
        background: list[BackgroundTask] | None = None,
        seeds,
        config: SoCConfig | None = None,
        noise_chunk_ticks: int = 256,
    ) -> None:
        self.config = config or SoCConfig()
        if self.config.dt_s <= 0:
            raise PlatformError("dt must be positive")
        if self.config.heartbeat_window_s <= 0:
            raise PlatformError("heartbeat window must be positive")
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise PlatformError("fleet needs at least one device seed")
        self.seeds = seeds
        self.n_devices = len(seeds)  # repro: shape[int[N]]
        # Scheduler constants are read off a real HMPScheduler so the
        # mirror can never drift from the scalar defaults.
        scalar_scheduler = HMPScheduler()
        self._little_bias = scalar_scheduler._little_bias
        self._strength_exponent = scalar_scheduler._strength_exponent
        self._hysteresis_multiplier = (
            1.0 + scalar_scheduler._migration_hysteresis
        )
        big_template = Cluster(
            "big",
            n_cores=self.config.cores_per_cluster,
            opps=big_cluster_opps(),
            power_model=big_cluster_power_model(),
            perf_model=big_cluster_perf_model(),
        )
        little_template = Cluster(
            "little",
            n_cores=self.config.cores_per_cluster,
            opps=little_cluster_opps(),
            power_model=little_cluster_power_model(),
            perf_model=little_cluster_perf_model(),
        )
        self.big = FleetCluster(  # repro: shape[obj[FleetCluster]]
            big_template,
            self.n_devices,
            strength_exponent=self._strength_exponent,
        )
        self.little = FleetCluster(  # repro: shape[obj[FleetCluster]]
            little_template,
            self.n_devices,
            strength_exponent=self._strength_exponent,
        )
        # Compiled telemetry sweep: enabled per cluster only when the
        # differential probe reproduces the numpy path bit-for-bit
        # (fused_kernel() is None under REPRO_DISABLE_FUSED or when no
        # compiler is available — the numpy path then runs everywhere).
        kernel = fused_kernel()
        if kernel is not None:
            for fc in (self.big, self.little):
                if _probe_cluster_telemetry(fc, kernel):
                    fc.telemetry_kernel = kernel
        self.qos_app = qos_app
        self.background = list(background or [])
        # Per-task, per-row previous-cluster ids (1=big, 2=little).
        self._sched_prev: dict[str, np.ndarray] = {}
        # Shared-timestamp heartbeat window: (time, (N,) counts) pairs.
        self._hb_window = self.config.heartbeat_window_s
        self._hb_records: deque[tuple[float, np.ndarray]] = deque()
        self.rngs = [np.random.default_rng(s) for s in seeds]
        self.time_s = 0.0  # repro: shape[float]
        # Pre-drawn standard-normal blocks.  Per-tick draw layout per
        # device: [QoS workload (iff noisy)] + [big power, big PMUs] +
        # [little power, little PMUs] — the documented scalar order.
        self._qos_draws = (  # repro: shape[int[q]]
            1 if qos_app is not None and qos_app.variability > 0 else 0
        )
        per_cluster = self.config.cores_per_cluster + 1  # repro: shape[int[C+1]]
        self._draws_per_tick = self._qos_draws + 2 * per_cluster  # repro: shape[int[q + 2*(C+1)]]
        self._noise_chunk = max(1, int(noise_chunk_ticks))  # repro: shape[int]
        self._noise_buf = np.empty(  # repro: shape[(N, _) f8 !rng[q + 2*(C+1)]]
            (self.n_devices, self._draws_per_tick * self._noise_chunk),
            dtype=float,
        )
        self._noise_used = self._noise_chunk  # repro: shape[int]
        if qos_app is not None:
            self._qos_threads = float(qos_app.threads)  # repro: shape[float]
            perf = big_template.perf_model
            # peak_rate * frequency_scale(f) per OPP — the first two
            # factors of the left-associative scalar product
            # peak * fs * speedup / reference_speedup.
            self._peak_fs_table = np.array(  # repro: shape[(n_opp,) f8 | none]
                [
                    qos_app.peak_rate
                    * frequency_scale(
                        p.frequency_ghz, perf.f_max_ghz, qos_app.freq_alpha
                    )
                    for p in big_template.opps.points
                ],
                dtype=float,
            )
        else:
            self._qos_threads = 0.0
            self._peak_fs_table = None

    # ------------------------------------------------------------------
    def step(self) -> FleetTelemetry:
        """Advance all devices one control interval (scalar-step mirror)."""
        now = self.time_s
        qos_app = self.qos_app
        qos_threads = self._qos_threads
        width = self._draws_per_tick
        if self._noise_used == self._noise_chunk:
            self._refill_noise()
        z = self._noise_buf[
            :, self._noise_used * width : (self._noise_used + 1) * width
        ]
        self._noise_used += 1

        big = self.big
        little = self.little
        active_bg = [t for t in self.background if t.active_at(now)]
        if active_bg:
            big_demand, little_demand = self._place(active_bg, qos_threads)
        else:
            if self._sched_prev:
                self._sched_prev.clear()
            big_demand = 0.0
            little_demand = 0.0

        big_capacity = big.active
        big_runnable = qos_threads + big_demand
        big_share = _fair_share_capacity(big_capacity, big_runnable)
        qos_rate_raw = 0.0
        if qos_app is not None:
            qos_rate_raw = self._qos_rate(now, qos_threads * big_share, z)
            self._hb_issue(now, qos_rate_raw * self.config.dt_s)
        big_busy = np.minimum(big_capacity, big_runnable)
        little_capacity = little.active
        little_busy = np.minimum(little_capacity, little_demand)

        offset = self._qos_draws
        per_cluster = big.n_cores + 1
        big_telemetry = _cluster_telemetry(
            big, big_busy, z[:, offset : offset + per_cluster]
        )
        offset += per_cluster
        little_telemetry = _cluster_telemetry(
            little, little_busy, z[:, offset : offset + little.n_cores + 1]
        )
        qos_rate = self._hb_rate(now) if qos_app is not None else 0.0
        telemetry = FleetTelemetry(
            time_s=now,
            qos_rate=qos_rate,
            qos_raw=qos_rate_raw,
            big=big_telemetry,
            little=little_telemetry,
            chip_power_w=big_telemetry.power_w + little_telemetry.power_w,
        )
        self.time_s = now + self.config.dt_s
        return telemetry

    def _refill_noise(self) -> None:
        # Chunked standard_normal draws consume the ziggurat stream
        # exactly like per-tick draws would (RNG contract tests).
        buf = self._noise_buf
        for row, rng in enumerate(self.rngs):
            rng.standard_normal(out=buf[row])
        self._noise_used = 0

    # ------------------------------------------------------------------
    def _qos_rate(self, now: float, effective_threads, z) -> np.ndarray:
        # repro: shape[z: (N, q + 2*(C+1)) f8; -> (N,) f8]
        """Vectorized ``QoSWorkload.rate`` on the Big cluster."""
        qos_app = self.qos_app
        qos_threads = self._qos_threads
        current_fraction = qos_app.parallel_fraction_at(now)
        reference_speedup = amdahl_speedup(current_fraction, qos_threads)
        if reference_speedup == 0:
            base = 0.0
        else:
            speedup = _amdahl_array(current_fraction, effective_threads)
            base = (
                self._peak_fs_table[self.big.opp_idx]
                * speedup
                / reference_speedup
            )
        if current_fraction != qos_app.parallel_fraction:
            nominal_ref = amdahl_speedup(
                qos_app.parallel_fraction, qos_threads
            )
            phase_ref = amdahl_speedup(current_fraction, qos_threads)
            if nominal_ref > 0:
                base = base * (phase_ref / nominal_ref)
        if qos_app.variability > 0:
            gain = 1.0 + qos_app.variability * z[:, 0]
            gain = np.minimum(np.maximum(gain, 0.5), 1.5)
            base = base * gain
        return np.maximum(base, 0.0)

    # ------------------------------------------------------------------
    def _hb_issue(self, time_s: float, counts: np.ndarray) -> None:
        self._hb_records.append((time_s, counts))
        self._hb_evict(time_s)

    def _hb_evict(self, now_s: float) -> None:
        horizon = now_s - self._hb_window + self._hb_window * 1e-6
        records = self._hb_records
        while records and records[0][0] <= horizon:
            records.popleft()

    def _hb_rate(self, now_s: float):
        self._hb_evict(now_s)
        # Sequential accumulation from 0.0 mirrors the scalar
        # sum(r.count for r in records) fold order.
        total = 0.0
        for _, counts in self._hb_records:
            total = total + counts
        return total / self._hb_window

    # ------------------------------------------------------------------
    def _place(self, tasks, qos_threads: float):
        """Vectorized ``HMPScheduler.place``: per-task loop, per-row costs."""
        big = self.big
        little = self.little
        big_capacity = big.active * big.strength_table[big.opp_idx]
        little_capacity = (
            little.active * little.strength_table[little.opp_idx]
        )
        multiplier = self._hysteresis_multiplier
        previous_map = self._sched_prev
        big_load = qos_threads
        little_load = 0.0
        big_demand = 0.0
        little_demand = 0.0
        active_names = set()
        for task in sorted(tasks, key=lambda t: (-t.demand, t.name)):
            active_names.add(task.name)
            demand = task.demand
            big_cost = (big_load + demand) / big_capacity
            little_cost = (
                (little_load + demand) / little_capacity - self._little_bias
            )
            previous = previous_map.get(task.name)
            if previous is not None:
                little_cost = np.where(
                    previous == _BIG_ID, little_cost * multiplier, little_cost
                )
                big_cost = np.where(
                    previous == _LITTLE_ID, big_cost * multiplier, big_cost
                )
            choose_little = little_cost <= big_cost
            little_load = little_load + np.where(choose_little, demand, 0.0)
            big_load = big_load + np.where(choose_little, 0.0, demand)
            little_demand = little_demand + np.where(
                choose_little, demand, 0.0
            )
            big_demand = big_demand + np.where(choose_little, 0.0, demand)
            previous_map[task.name] = np.where(
                choose_little, _LITTLE_ID, _BIG_ID
            )
        for name in list(previous_map):
            if name not in active_names:
                del previous_map[name]
        return big_demand, little_demand


# ----------------------------------------------------------------------
def _fair_share_capacity(capacity: np.ndarray, runnable):
    # repro: shape[capacity: (N,) f8]
    """Vectorized ``soc.fair_share_capacity``."""
    if np.ndim(runnable) == 0:
        if runnable <= 0:
            return 0.0
        return np.minimum(1.0, capacity / runnable)
    safe = np.where(runnable > 0.0, runnable, 1.0)
    return np.where(
        runnable <= 0.0, 0.0, np.minimum(1.0, capacity / safe)
    )


def _amdahl_array(parallel_fraction: float, threads) -> np.ndarray:
    """Element-wise mirror of ``perf.amdahl_speedup``.

    The ``threads < 1`` branch is reachable (a contended thread gets a
    fractional core share), so both branches are computed and selected
    with ``np.where``; the denominator is guarded so masked-out rows
    never divide by zero.
    """
    guarded = np.maximum(threads, 1.0)
    full = 1.0 / (
        (1.0 - parallel_fraction) + parallel_fraction / guarded
    )
    out = np.where(threads < 1.0, threads, full)
    return np.where(threads <= 0.0, 0.0, out)


def _cluster_telemetry(
    fc: FleetCluster, busy_core_equivalents: np.ndarray, z: np.ndarray
) -> FleetClusterTelemetry:
    # repro: shape[fc: obj[FleetCluster]; busy_core_equivalents: (N,) f8]
    # repro: shape[z: (N, C+1) f8; -> obj[FleetClusterTelemetry]]
    """Vectorized ``soc.read_cluster_telemetry`` fast path.

    Dispatches to the compiled single-sweep kernel when the cluster's
    construction-time probe proved it bit-identical (and the inputs
    have the layout it was probed with); otherwise runs the numpy
    formulation.  Both produce the same bits.
    """
    kernel = fc.telemetry_kernel
    if (
        kernel is not None
        and busy_core_equivalents.flags.c_contiguous
        and z.strides[1] == 8
        and fc.opp_idx.dtype == np.int64
    ):
        return _cluster_telemetry_fused(fc, busy_core_equivalents, z, kernel)
    return _cluster_telemetry_numpy(fc, busy_core_equivalents, z)


def _cluster_telemetry_fused(
    fc: FleetCluster,
    busy_core_equivalents: np.ndarray,
    z: np.ndarray,
    kernel,
) -> FleetClusterTelemetry:
    # repro: shape[fc: obj[FleetCluster]; busy_core_equivalents: (N,) f8]
    # repro: shape[z: (N, C+1) f8; -> obj[FleetClusterTelemetry]]
    """One compiled sweep over the batch (probe-verified bit-identical)."""
    flip = fc._out_flip
    fc._out_flip = 1 - flip
    power_w = fc._power_bufs[flip]
    ips = fc._ips_bufs[flip]
    # Prebuilt argument vectors (one per output flip) avoid re-deriving
    # seventeen ctypes pointers per call; they are keyed on the identity
    # of the two arrays that may be replaced (``active`` by the probe,
    # ``opp_idx`` by the probe and by the first ``set_frequency``) and
    # rebuilt whenever either moves.
    cached = fc._telemetry_args
    if (
        cached is None
        or cached[0] is not fc.active
        or cached[1] is not fc.opp_idx
    ):
        cached = (
            fc.active,
            fc.opp_idx,
            tuple(
                kernel.telemetry_args(
                    fc.active,
                    fc.opp_idx,
                    fc.dynamic_table,
                    fc.leakage_table,
                    fc.core_rate_table,
                    fc.idle_core_fraction,
                    fc.uncore_power,
                    fc.noise_row,
                    fc.res_mask_i8,
                    fc.safe_res_row,
                    fc.floor_row,
                    fc.any_resolution,
                    fc._power_bufs[side],
                    fc._ips_bufs[side],
                )
                for side in (0, 1)
            ),
        )
        fc._telemetry_args = cached
    kernel.cluster_telemetry_ptrs(cached[2][flip], busy_core_equivalents, z)
    return FleetClusterTelemetry(
        frequency_ghz=fc.frequency,
        voltage_v=fc.voltage,
        active_cores=fc.active,
        busy_core_equivalents=busy_core_equivalents,
        power_w=power_w,
        ips=ips,
    )


def _probe_cluster_telemetry(fc: FleetCluster, kernel) -> bool:
    # repro: shape[fc: obj[FleetCluster]]
    """Differential gate for the compiled telemetry sweep.

    Runs both implementations over random cluster states (random
    active counts, OPP indices, busy equivalents — including negative
    and over-capacity — and noise magnitudes spanning the gain clamp)
    and accepts only bit-exact agreement on every reading.
    """
    if fc.n_cores + 1 > 16:
        return False
    n = fc.active.shape[0]
    n_opps = len(fc.freq_table)
    rng = np.random.default_rng(0x7E1E)
    saved = (fc.active, fc.opp_idx, fc._out_flip)
    try:
        for scale in (1e-2, 1.0, 1e2):
            fc.active = rng.integers(1, fc.n_cores + 1, n).astype(float)
            fc.opp_idx = rng.integers(0, n_opps, n)
            bce = rng.standard_normal(n) * fc.n_cores_f
            wide = rng.standard_normal((n, fc.n_cores + 4)) * scale
            z = wide[:, 2 : fc.n_cores + 3]
            reference = _cluster_telemetry_numpy(fc, bce, z)
            fast = _cluster_telemetry_fused(fc, bce, z, kernel)
            if not (
                np.array_equal(reference.power_w, fast.power_w)
                and np.array_equal(reference.ips, fast.ips)
            ):
                return False
    except Exception:
        return False
    finally:
        fc.active, fc.opp_idx, fc._out_flip = saved
    return True


def _cluster_telemetry_numpy(
    fc: FleetCluster, busy_core_equivalents: np.ndarray, z: np.ndarray
) -> FleetClusterTelemetry:
    # repro: shape[fc: obj[FleetCluster]; busy_core_equivalents: (N,) f8]
    # repro: shape[z: (N, C+1) f8; -> obj[FleetClusterTelemetry]]
    """Vectorized ``soc.read_cluster_telemetry``, numpy formulation."""
    active = fc.active
    idx = fc.opp_idx
    busy = np.minimum(np.maximum(busy_core_equivalents, 0.0), active)
    idle_cores = active - busy
    dynamic = fc.dynamic_table[idx] * (  # repro: shape[(N,) f8]
        busy + fc.idle_core_fraction * idle_cores
    )
    static = fc.leakage_table[idx] * active  # repro: shape[(N,) f8]
    true_power_w = dynamic + static + fc.uncore_power  # repro: shape[(N,) f8]
    total_ips = busy_core_equivalents * fc.core_rate_table[idx]
    share = 1.0 / active
    target = total_ips * share
    # All sensors of the cluster read in one fused (N, 1 + n_cores)
    # block: column 0 the power sensor, columns 1.. the PMUs.  Every op
    # is elementwise with per-column parameters, so each element equals
    # the per-sensor _read_with_gain result bit for bit.
    values = fc._reading_buf
    values[:, 0] = true_power_w
    values[:, 1:] = np.where(
        fc.core_ids < active[:, None], target[:, None], 0.0
    )
    gain = 1.0 + fc.noise_row * z
    gain = np.minimum(np.maximum(gain, 0.0), 2.0)
    values = values * gain
    if fc.any_resolution:
        values = np.where(
            fc.res_mask_row,
            np.rint(values / fc.safe_res_row) * fc.safe_res_row,
            values,
        )
    values = np.maximum(values, fc.floor_row)
    power_w = values[:, 0]
    # Sequential column fold, mirroring the scalar per-core accumulation
    # order (pairwise np.sum would associate differently).
    ips = 0.0
    for i in range(fc.n_cores):
        ips = ips + values[:, i + 1]
    return FleetClusterTelemetry(
        frequency_ghz=fc.frequency,
        voltage_v=fc.voltage,
        active_cores=active,
        busy_core_equivalents=busy_core_equivalents,
        power_w=power_w,
        ips=ips,
    )


def _read_with_gain(
    true_values, z, noise_fraction: float, resolution: float, floor: float
):
    """Vectorized ``soc._read_with_gain`` (``NoisySensor.read`` with a
    pre-drawn gain): identical clamp structure, ``np.rint`` for the
    round-half-to-even quantization."""
    gain = 1.0 + noise_fraction * z
    gain = np.minimum(np.maximum(gain, 0.0), 2.0)
    values = true_values * gain
    if resolution > 0:
        values = np.rint(values / resolution) * resolution
    return np.maximum(values, floor)
