"""Operating performance points (DVFS tables) for the simulated SoC.

Frequency/voltage pairs modelled after the Exynos 5422 used on the
ODROID-XU3: the "Big" Cortex-A15 cluster scales 200 MHz - 2.0 GHz, the
"Little" Cortex-A7 cluster 200 MHz - 1.4 GHz, both in 100 MHz steps with
the voltage rising roughly linearly across the range.  DVFS is applied
per cluster (footnote 4 of the paper: the platform "provides only
per-cluster power sensors and DVFS").
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass


@dataclass(frozen=True)
class OPP:
    """One operating point: frequency in GHz, supply voltage in volts."""

    frequency_ghz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.voltage_v <= 0:
            raise ValueError("OPP entries must be positive")


class OPPTable:
    """An ordered, immutable DVFS table with snapping and interpolation."""

    # Bound on the request-keyed snap memo.  Requests at the actuator
    # rails (saturated controllers re-requesting min/max frequency every
    # interval) and re-snaps of already-snapped values dominate the hot
    # path, so even a small memo absorbs most lookups; once full, new
    # keys fall through to the bisection without being cached.
    SNAP_CACHE_LIMIT = 4096

    def __init__(self, points: list[OPP], name: str = "opp") -> None:
        if not points:
            raise ValueError("OPP table must be non-empty")
        ordered = sorted(points, key=lambda p: p.frequency_ghz)
        freqs = [p.frequency_ghz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate frequencies in OPP table")
        volts = [p.voltage_v for p in ordered]
        if any(b < a for a, b in zip(volts, volts[1:])):
            raise ValueError("voltage must be non-decreasing with frequency")
        self.name = name
        self._points = tuple(ordered)
        self._freqs = tuple(freqs)
        self._snap_cache: dict[float, OPP] = {}

    @property
    def points(self) -> tuple[OPP, ...]:
        return self._points

    @property
    def min_frequency(self) -> float:
        return self._freqs[0]

    @property
    def max_frequency(self) -> float:
        return self._freqs[-1]

    @property
    def frequencies(self) -> tuple[float, ...]:
        return self._freqs

    def snap(self, frequency_ghz: float) -> OPP:
        """Nearest valid operating point to a requested frequency.

        Requests outside the table clamp to the extremes — this is the
        actuator-saturation behaviour the controllers experience.
        """
        f = float(frequency_ghz)
        cached = self._snap_cache.get(f)
        if cached is not None:
            return cached
        if f <= self._freqs[0]:
            opp = self._points[0]
        elif f >= self._freqs[-1]:
            opp = self._points[-1]
        else:
            index = bisect_left(self._freqs, f)
            below, above = self._points[index - 1], self._points[index]
            if f - below.frequency_ghz <= above.frequency_ghz - f:
                opp = below
            else:
                opp = above
        if len(self._snap_cache) < self.SNAP_CACHE_LIMIT:
            self._snap_cache[f] = opp
        return opp

    def voltage_for(self, frequency_ghz: float) -> float:
        """Voltage of the snapped operating point."""
        return self.snap(frequency_ghz).voltage_v

    def __len__(self) -> int:
        return len(self._points)


def _linear_table(
    f_min: float, f_max: float, v_min: float, v_max: float, step: float, name: str
) -> OPPTable:
    points = []
    f = f_min
    while f <= f_max + 1e-9:
        fraction = (f - f_min) / (f_max - f_min) if f_max > f_min else 0.0
        points.append(OPP(round(f, 3), round(v_min + fraction * (v_max - v_min), 4)))
        f += step
    return OPPTable(points, name=name)


def big_cluster_opps() -> OPPTable:
    """Cortex-A15-like table: 200 MHz @ 0.90 V up to 2.0 GHz @ 1.3625 V."""
    return _linear_table(0.2, 2.0, 0.90, 1.3625, 0.1, "big-a15")


def little_cluster_opps() -> OPPTable:
    """Cortex-A7-like table: 200 MHz @ 0.90 V up to 1.4 GHz @ 1.25 V."""
    return _linear_table(0.2, 1.4, 0.90, 1.25, 0.1, "little-a7")
