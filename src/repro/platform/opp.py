"""Operating performance points (DVFS tables) for the simulated SoC.

Frequency/voltage pairs modelled after the Exynos 5422 used on the
ODROID-XU3: the "Big" Cortex-A15 cluster scales 200 MHz - 2.0 GHz, the
"Little" Cortex-A7 cluster 200 MHz - 1.4 GHz, both in 100 MHz steps with
the voltage rising roughly linearly across the range.  DVFS is applied
per cluster (footnote 4 of the paper: the platform "provides only
per-cluster power sensors and DVFS").
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.control.fused import fused_kernel


@dataclass(frozen=True)
class OPP:
    """One operating point: frequency in GHz, supply voltage in volts."""

    frequency_ghz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.voltage_v <= 0:
            raise ValueError("OPP entries must be positive")


class OPPTable:
    """An ordered, immutable DVFS table with snapping and interpolation."""

    # Bound on the request-keyed snap memo.  Requests at the actuator
    # rails (saturated controllers re-requesting min/max frequency every
    # interval) and re-snaps of already-snapped values dominate the hot
    # path, so even a small memo absorbs most lookups; once full, new
    # keys fall through to the bisection without being cached.
    SNAP_CACHE_LIMIT = 4096

    def __init__(self, points: list[OPP], name: str = "opp") -> None:
        if not points:
            raise ValueError("OPP table must be non-empty")
        ordered = sorted(points, key=lambda p: p.frequency_ghz)
        freqs = [p.frequency_ghz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate frequencies in OPP table")
        volts = [p.voltage_v for p in ordered]
        if any(b < a for a, b in zip(volts, volts[1:])):
            raise ValueError("voltage must be non-decreasing with frequency")
        self.name = name
        self._points = tuple(ordered)
        self._freqs = tuple(freqs)
        self._snap_cache: dict[float, OPP] = {}
        # Array mirrors of the table columns for the vectorized snap
        # (repro.platform.fleet).  Built from the exact same Python
        # floats as the scalar tuple, so indexed lookups are bit-equal.
        self._freqs_array = np.array(freqs, dtype=float)
        self._volts_array = np.array(volts, dtype=float)
        # Compiled-snap handle, resolved lazily on the first vectorized
        # snap (None until probed; stays None if the probe fails).
        self._snap_kernel = None
        self._snap_probed = False

    @property
    def points(self) -> tuple[OPP, ...]:
        return self._points

    @property
    def min_frequency(self) -> float:
        return self._freqs[0]

    @property
    def max_frequency(self) -> float:
        return self._freqs[-1]

    @property
    def frequencies(self) -> tuple[float, ...]:
        return self._freqs

    def snap(self, frequency_ghz: float) -> OPP:
        """Nearest valid operating point to a requested frequency.

        Requests outside the table clamp to the extremes — this is the
        actuator-saturation behaviour the controllers experience.
        """
        f = float(frequency_ghz)
        if f != f:  # NaN: bisect and searchsorted disagree on NaN placement
            raise ValueError(f"cannot snap NaN frequency on table {self.name!r}")
        cached = self._snap_cache.get(f)
        if cached is not None:
            return cached
        if f <= self._freqs[0]:
            opp = self._points[0]
        elif f >= self._freqs[-1]:
            opp = self._points[-1]
        else:
            index = bisect_left(self._freqs, f)
            below, above = self._points[index - 1], self._points[index]
            if f - below.frequency_ghz <= above.frequency_ghz - f:
                opp = below
            else:
                opp = above
        if len(self._snap_cache) < self.SNAP_CACHE_LIMIT:
            self._snap_cache[f] = opp
        return opp

    def voltage_for(self, frequency_ghz: float) -> float:
        """Voltage of the snapped operating point."""
        return self.snap(frequency_ghz).voltage_v

    @property
    def frequency_array(self):
        """Table frequencies as a float array (read-only by convention)."""
        return self._freqs_array

    @property
    def voltage_array(self):
        """Table voltages as a float array (read-only by convention)."""
        return self._volts_array

    def snap_indices(self, requests, out=None):
        """Vectorized `snap`: table indices for an array of requests.

        Bit-equivalent to calling :meth:`snap` per element — the same
        clamp-at-rails and prefer-the-lower-point-on-ties comparisons are
        evaluated with the same IEEE doubles.  NaN requests raise, as in
        the scalar path.  ``out`` (int64, same length) receives the
        indices when given — required for the compiled single-sweep
        snap, which is used only after a construction-time probe shows
        it reproduces the numpy formulation index-for-index.
        """
        f = np.asarray(requests, dtype=float)
        if np.isnan(f).any():
            raise ValueError(f"cannot snap NaN frequency on table {self.name!r}")
        last = len(self._freqs) - 1
        if (
            out is not None
            and last > 0
            and f.ndim == 1
            and out.shape == f.shape
            and out.dtype == np.int64
        ):
            kernel = self._resolve_snap_kernel()
            if kernel is not None:
                if not f.flags.c_contiguous:
                    f = np.ascontiguousarray(f)
                kernel.snap_indices(f, self._freqs_array, out)
                return out
        chosen = self._snap_indices_numpy(f)
        if out is not None and out.shape == chosen.shape:
            out[...] = chosen
            return out
        return chosen

    def _snap_indices_numpy(self, f: np.ndarray):
        freqs = self._freqs_array
        last = len(self._freqs) - 1
        if last == 0:
            return np.full(f.shape, 0)
        index = np.searchsorted(freqs, f, side="left")
        hi = np.minimum(np.maximum(index, 1), last)
        below = freqs[hi - 1]
        above = freqs[hi]
        chosen = np.where(f - below <= above - f, hi - 1, hi)
        chosen = np.where(f <= freqs[0], 0, chosen)
        chosen = np.where(f >= freqs[last], last, chosen)
        return chosen

    def _resolve_snap_kernel(self):
        """Probe-gated compiled snap (None when unavailable or inexact).

        The probe sweeps random requests plus every table frequency,
        every midpoint (the tie cases) and both rails, and accepts the
        kernel only on index-for-index agreement with the numpy path.
        """
        if self._snap_probed:
            return self._snap_kernel
        self._snap_probed = True
        kernel = fused_kernel()
        if kernel is None:
            return None
        freqs = self._freqs_array
        rng = np.random.default_rng(0x59A9)
        probe = np.concatenate(
            [
                rng.uniform(freqs[0] - 1.0, freqs[-1] + 1.0, 4096),
                freqs,
                (freqs[:-1] + freqs[1:]) / 2.0,
                [freqs[0] - 0.5, freqs[-1] + 0.5],
            ]
        )
        reference = self._snap_indices_numpy(probe)
        fast = np.empty(probe.shape, dtype=np.int64)
        try:
            kernel.snap_indices(np.ascontiguousarray(probe), freqs, fast)
        except Exception:
            return None
        if np.array_equal(reference, fast):
            self._snap_kernel = kernel
        return self._snap_kernel

    def __len__(self) -> int:
        return len(self._points)


def _linear_table(
    f_min: float, f_max: float, v_min: float, v_max: float, step: float, name: str
) -> OPPTable:
    points = []
    f = f_min
    while f <= f_max + 1e-9:
        fraction = (f - f_min) / (f_max - f_min) if f_max > f_min else 0.0
        points.append(OPP(round(f, 3), round(v_min + fraction * (v_max - v_min), 4)))
        f += step
    return OPPTable(points, name=name)


def big_cluster_opps() -> OPPTable:
    """Cortex-A15-like table: 200 MHz @ 0.90 V up to 2.0 GHz @ 1.3625 V."""
    return _linear_table(0.2, 2.0, 0.90, 1.3625, 0.1, "big-a15")


def little_cluster_opps() -> OPPTable:
    """Cortex-A7-like table: 200 MHz @ 0.90 V up to 1.4 GHz @ 1.25 V."""
    return _linear_table(0.2, 1.4, 0.90, 1.25, 0.1, "little-a7")
