"""Cluster power model.

Per-cluster power is the sum of switching (dynamic) power, which follows
the classical ``C_eff * V^2 * f`` law scaled by how many core-equivalents
are busy, per-active-core leakage (voltage dependent), and a fixed
uncore floor.  Coefficients are calibrated so the simulated Exynos
reproduces the operating envelope of the paper's Figure 13: the Big
cluster fully busy at 2.0 GHz draws ~5.2 W, at 1.4 GHz ~2.7 W; the
Little cluster fully busy at 1.4 GHz draws ~1.0 W.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PowerModel:
    """Coefficients of one cluster's power model.

    Attributes
    ----------
    dynamic_coefficient:
        Effective switched capacitance term, in W / (GHz * V^2) per busy
        core-equivalent.
    leakage_per_core:
        Static power per *active* (powered) core in W per volt.
    uncore_power:
        Always-on cluster overhead (interconnect, L2) in W.
    idle_core_fraction:
        Fraction of the per-core dynamic power an active-but-idle core
        still burns (clock tree, snooping).
    """

    dynamic_coefficient: float
    leakage_per_core: float
    uncore_power: float
    idle_core_fraction: float = 0.05

    def __post_init__(self) -> None:
        if min(self.dynamic_coefficient, self.leakage_per_core, self.uncore_power) < 0:
            raise ValueError("power coefficients must be non-negative")
        if not 0 <= self.idle_core_fraction <= 1:
            raise ValueError("idle_core_fraction must lie in [0, 1]")

    def cluster_power(
        self,
        frequency_ghz: float,
        voltage_v: float,
        active_cores: int,
        busy_core_equivalents: float,
    ) -> float:
        """Total cluster power in watts.

        Parameters
        ----------
        busy_core_equivalents:
            Sum of per-core utilizations (0..active_cores); fractional
            values model partially-busy cores.
        """
        if active_cores < 0:
            raise ValueError("active_cores must be non-negative")
        busy = min(max(busy_core_equivalents, 0.0), float(active_cores))
        per_core_dynamic = (
            self.dynamic_coefficient * voltage_v**2 * frequency_ghz
        )
        idle_cores = active_cores - busy
        dynamic = per_core_dynamic * (
            busy + self.idle_core_fraction * idle_cores
        )
        static = self.leakage_per_core * voltage_v * active_cores
        return dynamic + static + self.uncore_power

    def per_opp_tables(self, opps) -> tuple[np.ndarray, np.ndarray]:
        """Per-operating-point power terms for the vectorized fleet kernel.

        Returns ``(per_core_dynamic, leakage_voltage)`` arrays indexed by
        OPP table position.  Each entry is computed with the *same*
        Python-float expressions as :meth:`cluster_power` (array ``**``
        is not bit-identical to scalar ``**``), so a fleet row that looks
        its terms up by snapped OPP index reproduces the scalar model
        exactly.
        """
        per_core_dynamic = [
            self.dynamic_coefficient * point.voltage_v**2 * point.frequency_ghz
            for point in opps.points
        ]
        leakage_voltage = [
            self.leakage_per_core * point.voltage_v for point in opps.points
        ]
        return (
            np.array(per_core_dynamic, dtype=float),
            np.array(leakage_voltage, dtype=float),
        )


def big_cluster_power_model() -> PowerModel:
    """Cortex-A15-like coefficients (high-performance, power hungry)."""
    return PowerModel(
        dynamic_coefficient=0.40,
        leakage_per_core=0.055,
        uncore_power=0.15,
        idle_core_fraction=0.06,
    )


def little_cluster_power_model() -> PowerModel:
    """Cortex-A7-like coefficients (low-power, in-order)."""
    return PowerModel(
        dynamic_coefficient=0.10,
        leakage_per_core=0.012,
        uncore_power=0.04,
        idle_core_fraction=0.04,
    )
