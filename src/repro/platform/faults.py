"""Fault injection for robustness evaluation.

The paper's first key question is **robustness**: "How can we provide
guarantees and perform robustness analysis?"  Beyond the design-time
robust-stability analysis (:mod:`repro.control.robustness`), a resource
manager must survive *runtime* corner cases: sensors glitch, readings
drop out, workloads spike.  This module wraps the platform's sensors
with injectable fault models so tests and studies can verify that the
managers degrade gracefully and the supervisor's formal guarantees
(never executing a disabled action, never raising budgets during a
capping episode) hold under faults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.sensors import NoisySensor


@dataclass
class FaultModel:
    """A time-windowed sensor fault.

    Kinds:

    * ``"stuck"`` — the sensor repeats the last pre-fault value;
    * ``"dropout"`` — the sensor reads zero (e.g. an I2C read failure
      surfaced as an empty register);
    * ``"spike"`` — readings are multiplied by ``magnitude``;
    * ``"bias"`` — readings are offset by ``magnitude``.
    """

    kind: str
    start_s: float
    end_s: float
    magnitude: float = 2.0

    VALID_KINDS = ("stuck", "dropout", "spike", "bias")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(
                f"kind must be one of {self.VALID_KINDS}, got {self.kind!r}"
            )
        if self.start_s >= self.end_s:
            raise ValueError("fault window must have positive duration")

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


class FaultySensor(NoisySensor):
    """A sensor wrapper applying scheduled faults.

    Drop-in replacement for :class:`NoisySensor`; the platform's clock
    must be supplied through :meth:`set_time` before each read (the
    simulator loop does this once per interval).
    """

    def __init__(
        self, base: NoisySensor, faults: list[FaultModel] | None = None
    ) -> None:
        super().__init__(
            name=f"{base.name}+faults",
            noise_fraction=base.noise_fraction,
            resolution=base.resolution,
            floor=base.floor,
        )
        self.faults = list(faults or [])
        self._now_s = 0.0
        self._last_healthy: float | None = None

    def add_fault(self, fault: FaultModel) -> None:
        self.faults.append(fault)

    def set_time(self, time_s: float) -> None:
        self._now_s = time_s

    def read(self, true_value: float, rng: np.random.Generator) -> float:
        healthy = super().read(true_value, rng)
        fault = next(
            (f for f in self.faults if f.active_at(self._now_s)), None
        )
        if fault is None:
            self._last_healthy = healthy
            return healthy
        if fault.kind == "stuck":
            return (
                self._last_healthy if self._last_healthy is not None else healthy
            )
        if fault.kind == "dropout":
            return self.floor
        if fault.kind == "spike":
            return healthy * fault.magnitude
        return max(self.floor, healthy + fault.magnitude)  # bias


def inject_power_sensor_fault(soc, cluster_name: str, fault: FaultModel) -> FaultySensor:
    """Replace one cluster's power sensor with a faulty wrapper.

    Works for both :class:`~repro.platform.soc.ExynosSoC` (clusters
    ``big``/``little``) and :class:`~repro.platform.manycore.ManyCoreSoC`.
    Returns the wrapper so further faults can be scheduled.
    """
    clusters = getattr(soc, "clusters", None)
    if callable(clusters):  # ExynosSoC exposes clusters() as a method
        clusters = clusters()
    if clusters is None:
        clusters = [soc.big, soc.little]
    for cluster in clusters:
        if cluster.name == cluster_name:
            if isinstance(cluster.power_sensor, FaultySensor):
                cluster.power_sensor.add_fault(fault)
                return cluster.power_sensor
            wrapper = FaultySensor(cluster.power_sensor, [fault])
            cluster.power_sensor = wrapper
            _hook_clock(soc, wrapper)
            return wrapper
    raise ValueError(f"no cluster named {cluster_name!r}")


def _hook_clock(soc, sensor: FaultySensor) -> None:
    """Keep the fault window in sync with the simulator clock."""
    original_step = soc.step

    def stepped():
        sensor.set_time(soc.time_s)
        return original_step()

    soc.step = stepped  # type: ignore[method-assign]
