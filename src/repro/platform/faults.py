"""Fault injection for robustness evaluation.

The paper's first key question is **robustness**: "How can we provide
guarantees and perform robustness analysis?"  Beyond the design-time
robust-stability analysis (:mod:`repro.control.robustness`), a resource
manager must survive *runtime* corner cases: sensors glitch, readings
drop out, actuators reject requests, workloads spike.  This module
provides injectable fault models for both halves of the observe-act
loop so tests and fault campaigns (:mod:`repro.resilience`) can verify
that the managers degrade gracefully and the supervisor's formal
guarantees (never executing a disabled action, never raising budgets
during a capping episode) hold under faults:

* **Sensor faults** (:class:`FaultModel` + :class:`FaultySensor`) —
  stuck/dropout/spike/bias readings on any :class:`NoisySensor`;
* **Actuator faults** (:class:`ActuatorFaultModel` +
  :class:`ClusterActuatorFaults`) — DVFS-request rejection,
  clamped/partial application, hotplug failure and delayed actuation on
  a :class:`~repro.platform.soc.Cluster`;
* :class:`ActuatorProxy` — the manager-side bounded-retry +
  hold-last-good wrapper that turns a silently rejected request into a
  controlled degradation to the previous safe operating point.

Clock propagation is native: the SoC step loops call ``set_time`` on
every time-aware sensor/actuator layer once per interval (see
``ExynosSoC.step`` / ``ManyCoreSoC.step``), so injecting faults on both
clusters never wraps or double-wraps ``soc.step``.

Overlapping fault windows
-------------------------
When several fault windows of one :class:`FaultModel` list are active
at the same instant, **the fault with the earliest** ``start_s``
**wins**; ties are broken by injection order (first added wins).  The
rule is deterministic and independent of list mutation order, so a
campaign that schedules a ``stuck`` window overlapping a later
``spike`` window always replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.sensors import NoisySensor

__all__ = [
    "ActuatorFaultModel",
    "ActuatorProxy",
    "ActuationEvent",
    "ClusterActuatorFaults",
    "FaultModel",
    "FaultySensor",
    "inject_actuator_fault",
    "inject_power_sensor_fault",
]


@dataclass
class FaultModel:
    """A time-windowed sensor fault.

    Kinds:

    * ``"stuck"`` — the sensor repeats the last pre-fault value;
    * ``"dropout"`` — the sensor reads zero (e.g. an I2C read failure
      surfaced as an empty register);
    * ``"spike"`` — readings are multiplied by ``magnitude``;
    * ``"bias"`` — readings are offset by ``magnitude``.
    """

    kind: str
    start_s: float
    end_s: float
    magnitude: float = 2.0

    VALID_KINDS = ("stuck", "dropout", "spike", "bias")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(
                f"kind must be one of {self.VALID_KINDS}, got {self.kind!r}"
            )
        if self.start_s >= self.end_s:
            raise ValueError("fault window must have positive duration")

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


class FaultySensor(NoisySensor):
    """A sensor wrapper applying scheduled faults.

    Drop-in replacement for :class:`NoisySensor`; the platform's clock
    is supplied through :meth:`set_time` once per interval by the SoC
    step loop (any sensor exposing ``set_time`` is time-aware).
    """

    def __init__(
        self, base: NoisySensor, faults: list[FaultModel] | None = None
    ) -> None:
        super().__init__(
            name=f"{base.name}+faults",
            noise_fraction=base.noise_fraction,
            resolution=base.resolution,
            floor=base.floor,
        )
        self.faults = list(faults or [])
        self._now_s = 0.0
        self._last_healthy: float | None = None

    def add_fault(self, fault: FaultModel) -> None:
        self.faults.append(fault)

    def set_time(self, time_s: float) -> None:
        self._now_s = time_s

    def active_fault(self) -> FaultModel | None:
        """The winning fault at the current time (precedence rule above)."""
        active = [
            (f.start_s, index, f)
            for index, f in enumerate(self.faults)
            if f.active_at(self._now_s)
        ]
        if not active:
            return None
        return min(active)[2]

    def read(self, true_value: float, rng: np.random.Generator) -> float:
        healthy = super().read(true_value, rng)
        fault = self.active_fault()
        if fault is None:
            self._last_healthy = healthy
            return healthy
        if fault.kind == "stuck":
            return (
                self._last_healthy if self._last_healthy is not None else healthy
            )
        if fault.kind == "dropout":
            return self.floor
        if fault.kind == "spike":
            return healthy * fault.magnitude
        return max(self.floor, healthy + fault.magnitude)  # bias


# ----------------------------------------------------------------------
# Actuator faults
# ----------------------------------------------------------------------
@dataclass
class ActuatorFaultModel:
    """A time-windowed actuator fault on one cluster.

    Kinds:

    * ``"reject"`` — a DVFS request is dropped with probability
      ``probability`` (the actuator silently keeps its previous
      operating point, as a busy DVFS governor or an EBUSY sysfs write
      does);
    * ``"clamp"`` — the applied frequency is clamped to at most
      ``magnitude`` GHz (a stuck thermal limit);
    * ``"partial"`` — the actuator moves only ``magnitude`` (0..1) of
      the way from the current frequency toward the request;
    * ``"hotplug_fail"`` — core on/off-lining requests are dropped;
    * ``"delay"`` — the request is applied ``delay_s`` seconds late
      (queued, then applied by the clock sync).
    """

    kind: str
    start_s: float
    end_s: float
    magnitude: float = 1.0
    probability: float = 1.0
    delay_s: float = 0.2

    VALID_KINDS = ("reject", "clamp", "partial", "hotplug_fail", "delay")

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(
                f"kind must be one of {self.VALID_KINDS}, got {self.kind!r}"
            )
        if self.start_s >= self.end_s:
            raise ValueError("fault window must have positive duration")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.kind == "partial" and not 0.0 <= self.magnitude <= 1.0:
            raise ValueError("partial magnitude is a fraction in [0, 1]")

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


class ClusterActuatorFaults:
    """Scheduled actuator faults for one cluster.

    Installed by :func:`inject_actuator_fault` as the cluster's
    ``actuator_faults`` attribute; :meth:`Cluster.set_frequency
    <repro.platform.soc.Cluster.set_frequency>` and
    :meth:`~repro.platform.soc.Cluster.set_active_cores` consult it
    natively — no method monkey-patching.  The SoC step loop keeps the
    clock in sync through :meth:`set_time` (which also applies matured
    ``delay`` requests).

    Overlap precedence matches :class:`FaultySensor`: earliest
    ``start_s`` wins, ties broken by injection order.
    """

    def __init__(
        self,
        cluster,
        faults: list[ActuatorFaultModel] | None = None,
        *,
        seed: int = 2018,
    ) -> None:
        self.cluster = cluster
        self.faults = list(faults or [])
        self.rng = np.random.default_rng(seed)
        self._now_s = 0.0
        self._pending_dvfs: list[tuple[float, float]] = []
        self._bypass = False
        self.rejected_dvfs_count = 0
        self.rejected_hotplug_count = 0

    def add_fault(self, fault: ActuatorFaultModel) -> None:
        self.faults.append(fault)

    def active_fault(self, *kinds: str) -> ActuatorFaultModel | None:
        active = [
            (f.start_s, index, f)
            for index, f in enumerate(self.faults)
            if f.active_at(self._now_s) and (not kinds or f.kind in kinds)
        ]
        if not active:
            return None
        return min(active)[2]

    def set_time(self, time_s: float) -> None:
        self._now_s = time_s
        self._apply_matured_dvfs()

    def _apply_matured_dvfs(self) -> None:
        matured = [
            req for req in self._pending_dvfs if req[0] <= self._now_s
        ]
        if not matured:
            return
        self._pending_dvfs = [
            req for req in self._pending_dvfs if req[0] > self._now_s
        ]
        # Apply in maturation order; bypass the fault filter so a still-
        # active delay window cannot re-queue its own maturation.
        self._bypass = True
        try:
            for _, frequency_ghz in sorted(matured):
                self.cluster.set_frequency(frequency_ghz)
        finally:
            self._bypass = False

    # ------------------------------------------------------------------
    # Filters consulted by the Cluster actuators
    # ------------------------------------------------------------------
    def filter_frequency(
        self, current_ghz: float, requested_ghz: float
    ) -> float:
        """The frequency actually applied for a DVFS request."""
        if self._bypass:
            return requested_ghz
        fault = self.active_fault("reject", "clamp", "partial", "delay")
        if fault is None:
            return requested_ghz
        if fault.kind == "reject":
            if self.rng.random() < fault.probability:
                self.rejected_dvfs_count += 1
                return current_ghz
            return requested_ghz
        if fault.kind == "clamp":
            return min(requested_ghz, fault.magnitude)
        if fault.kind == "partial":
            return current_ghz + fault.magnitude * (
                requested_ghz - current_ghz
            )
        # delay: queue the request, keep the current operating point.
        self._pending_dvfs.append(
            (self._now_s + fault.delay_s, requested_ghz)
        )
        return current_ghz

    def allow_hotplug(self) -> bool:
        """Whether a hotplug request is honoured right now."""
        if self._bypass:
            return True
        fault = self.active_fault("hotplug_fail")
        if fault is None:
            return True
        if self.rng.random() < fault.probability:
            self.rejected_hotplug_count += 1
            return False
        return True


@dataclass
class ActuationEvent:
    """One proxy intervention, recorded for traces and reports."""

    time_s: float
    actuator: str  # "dvfs" | "hotplug"
    outcome: str  # "retried" | "held" | "partial"
    requested: float
    applied: float


class ActuatorProxy:
    """Bounded-retry + hold-last-good actuation surface for one cluster.

    Managers actuate through this thin wrapper instead of the raw
    cluster: a request whose applied value does not match the expected
    (OPP-snapped) value is retried up to ``max_retries`` times; if the
    actuator still refuses to move, the proxy *holds the last good
    operating point* — the previous successfully applied state — so a
    rejected request degrades to a known-safe point instead of silently
    diverging from what the controller believes it commanded.

    All non-actuation attribute access is forwarded to the wrapped
    cluster, so the proxy is a drop-in replacement wherever a
    :class:`~repro.platform.soc.Cluster` is expected.
    """

    def __init__(self, cluster, *, max_retries: int = 2) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._cluster = cluster
        self.max_retries = max_retries
        self.last_good_frequency_ghz = cluster.frequency_ghz
        self.last_good_cores = cluster.active_cores
        self.events: list[ActuationEvent] = []
        self.retry_count = 0
        self.hold_count = 0
        self.partial_count = 0
        self._now_s = 0.0

    def __getattr__(self, name: str):
        return getattr(self._cluster, name)

    @property
    def wrapped(self):
        return self._cluster

    def set_time(self, time_s: float) -> None:
        self._now_s = time_s

    # ------------------------------------------------------------------
    def set_frequency(self, frequency_ghz: float) -> float:
        expected_ghz = self._cluster.opps.snap(frequency_ghz).frequency_ghz
        before_ghz = self._cluster.frequency_ghz
        applied_ghz = self._cluster.set_frequency(frequency_ghz)
        attempts = 0
        while (
            abs(applied_ghz - expected_ghz) > 1e-12
            and abs(applied_ghz - before_ghz) <= 1e-12
            and attempts < self.max_retries
        ):
            attempts += 1
            self.retry_count += 1
            applied_ghz = self._cluster.set_frequency(frequency_ghz)
        if abs(applied_ghz - expected_ghz) <= 1e-12:
            self.last_good_frequency_ghz = applied_ghz
            if attempts:
                self._record("dvfs", "retried", expected_ghz, applied_ghz)
        elif abs(applied_ghz - before_ghz) <= 1e-12:
            # Rejected after retries: degrade to the last good point.
            self.hold_count += 1
            applied_ghz = self._hold_frequency()
            self._record("dvfs", "held", expected_ghz, applied_ghz)
        else:
            # Clamped/partial application: a real (safe) operating point
            # was reached, just not the requested one.
            self.partial_count += 1
            self.last_good_frequency_ghz = applied_ghz
            self._record("dvfs", "partial", expected_ghz, applied_ghz)
        return applied_ghz

    def _hold_frequency(self) -> float:
        current_ghz = self._cluster.frequency_ghz
        if abs(current_ghz - self.last_good_frequency_ghz) > 1e-12:
            # A stale delayed apply (or partial) moved the hardware away
            # from the last good point; try once to re-assert it.
            current_ghz = self._cluster.set_frequency(
                self.last_good_frequency_ghz
            )
        return current_ghz

    def set_active_cores(self, count: float) -> int:
        requested = int(round(float(count)))
        requested = max(1, min(self._cluster.n_cores, requested))
        before = self._cluster.active_cores
        applied = self._cluster.set_active_cores(count)
        attempts = 0
        while (
            applied != requested
            and applied == before
            and attempts < self.max_retries
        ):
            attempts += 1
            self.retry_count += 1
            applied = self._cluster.set_active_cores(count)
        if applied == requested:
            self.last_good_cores = applied
            if attempts:
                self._record(
                    "hotplug", "retried", float(requested), float(applied)
                )
        else:
            self.hold_count += 1
            self._record(
                "hotplug", "held", float(requested), float(applied)
            )
        return applied

    def _record(
        self, actuator: str, outcome: str, requested: float, applied: float
    ) -> None:
        self.events.append(
            ActuationEvent(
                time_s=self._now_s,
                actuator=actuator,
                outcome=outcome,
                requested=requested,
                applied=applied,
            )
        )


# ----------------------------------------------------------------------
# Injection helpers
# ----------------------------------------------------------------------
def _resolve_clusters(soc) -> list:
    """The cluster list of any supported SoC, or a clear error.

    Supports :class:`~repro.platform.soc.ExynosSoC` (``clusters()``
    method), :class:`~repro.platform.manycore.ManyCoreSoC` (``clusters``
    list attribute), and any object exposing ``big``/``little``
    clusters.
    """
    clusters = getattr(soc, "clusters", None)
    if callable(clusters):  # ExynosSoC exposes clusters() as a method
        clusters = clusters()
    if clusters is None:
        big = getattr(soc, "big", None)
        little = getattr(soc, "little", None)
        if big is None or little is None:
            raise TypeError(
                f"{type(soc).__name__} exposes neither a 'clusters' "
                "attribute/method nor 'big'/'little' clusters; cannot "
                "inject faults"
            )
        clusters = [big, little]
    return list(clusters)


def _find_cluster(soc, cluster_name: str):
    clusters = _resolve_clusters(soc)
    for cluster in clusters:
        if cluster.name == cluster_name:
            return cluster
    names = sorted(c.name for c in clusters)
    raise ValueError(
        f"no cluster named {cluster_name!r} (available: {names})"
    )


def inject_power_sensor_fault(soc, cluster_name: str, fault: FaultModel) -> FaultySensor:
    """Replace one cluster's power sensor with a faulty wrapper.

    Works for both :class:`~repro.platform.soc.ExynosSoC` (clusters
    ``big``/``little``) and :class:`~repro.platform.manycore.ManyCoreSoC`
    (clusters ``big0``/``little0``...).  Returns the wrapper so further
    faults can be scheduled.  The SoC step loop propagates the clock to
    the wrapper natively; ``soc.step`` is never wrapped.
    """
    cluster = _find_cluster(soc, cluster_name)
    if isinstance(cluster.power_sensor, FaultySensor):
        cluster.power_sensor.add_fault(fault)
        return cluster.power_sensor
    wrapper = FaultySensor(cluster.power_sensor, [fault])
    cluster.power_sensor = wrapper
    return wrapper


def inject_actuator_fault(
    soc,
    cluster_name: str,
    fault: ActuatorFaultModel,
    *,
    seed: int = 2018,
) -> ClusterActuatorFaults:
    """Schedule an actuator fault on one cluster.

    Attaches (or reuses) the cluster's :class:`ClusterActuatorFaults`
    layer; the SoC step loop keeps its clock in sync.  Returns the
    layer so further faults can be scheduled.
    """
    cluster = _find_cluster(soc, cluster_name)
    layer = getattr(cluster, "actuator_faults", None)
    if isinstance(layer, ClusterActuatorFaults):
        layer.add_fault(fault)
        return layer
    layer = ClusterActuatorFaults(cluster, [fault], seed=seed)
    cluster.actuator_faults = layer
    return layer
