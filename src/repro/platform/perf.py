"""Cluster performance (throughput) model.

Workload throughput responds to the two actuators the controllers own:

* **Frequency** via a concave power law ``(f / f_max)^alpha`` — ``alpha``
  close to 1 for compute-bound code, well below 1 for memory-bound code
  whose DRAM accesses do not speed up with core clock.
* **Core count** via Amdahl's law evaluated at the *effective* thread
  count the scheduler can grant (fractional when threads time-share
  cores with background tasks).

The heterogeneity of the HMP enters through a per-cluster
``ipc_factor``: an in-order A7 core sustains a fraction of the A15's
instructions-per-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass


def amdahl_speedup(parallel_fraction: float, threads: float) -> float:
    """Amdahl's law with a continuous thread count.

    ``threads`` may be fractional (a thread receiving a 60% core share
    contributes 0.6); values below 1 scale the whole execution linearly
    (even the serial part only gets a fraction of a core).
    """
    if not 0 <= parallel_fraction <= 1:
        raise ValueError("parallel_fraction must lie in [0, 1]")
    if threads <= 0:
        return 0.0
    if threads < 1.0:
        return threads
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / threads)


def frequency_scale(frequency_ghz: float, f_max_ghz: float, alpha: float) -> float:
    """Relative throughput at ``f`` vs. the cluster's maximum frequency."""
    if f_max_ghz <= 0:
        raise ValueError("f_max must be positive")
    if frequency_ghz <= 0:
        return 0.0
    ratio = min(frequency_ghz / f_max_ghz, 1.0)
    return ratio**alpha


@dataclass(frozen=True)
class ClusterPerfModel:
    """Throughput characteristics of one cluster's cores.

    ``ipc_factor`` expresses core strength relative to the Big cluster
    (1.0 for the A15s, ~0.35 for the in-order A7s); ``f_max_ghz`` anchors
    the frequency scale.
    """

    ipc_factor: float
    f_max_ghz: float

    def __post_init__(self) -> None:
        if self.ipc_factor <= 0 or self.f_max_ghz <= 0:
            raise ValueError("perf model parameters must be positive")

    def core_rate(self, frequency_ghz: float, freq_alpha: float) -> float:
        """Relative single-core rate vs. a Big core at max frequency."""
        return self.ipc_factor * frequency_scale(
            frequency_ghz, self.f_max_ghz, freq_alpha
        )

    def workload_rate(
        self,
        peak_rate: float,
        frequency_ghz: float,
        effective_threads: float,
        *,
        parallel_fraction: float,
        freq_alpha: float,
        reference_threads: float = 4.0,
    ) -> float:
        """Throughput of a workload given allocation and interference.

        ``peak_rate`` is the workload's rate at maximum frequency with
        ``reference_threads`` unencumbered threads on this cluster.
        """
        if peak_rate < 0:
            raise ValueError("peak_rate must be non-negative")
        reference_speedup = amdahl_speedup(parallel_fraction, reference_threads)
        if reference_speedup == 0:
            return 0.0
        speedup = amdahl_speedup(parallel_fraction, effective_threads)
        fs = frequency_scale(frequency_ghz, self.f_max_ghz, freq_alpha)
        return peak_rate * fs * speedup / reference_speedup


def big_cluster_perf_model() -> ClusterPerfModel:
    """Out-of-order A15-like cores at up to 2.0 GHz."""
    return ClusterPerfModel(ipc_factor=1.0, f_max_ghz=2.0)


def little_cluster_perf_model() -> ClusterPerfModel:
    """In-order A7-like cores at up to 1.4 GHz."""
    return ClusterPerfModel(ipc_factor=0.35, f_max_ghz=1.4)
