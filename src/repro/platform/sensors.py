"""Sensor models: per-cluster power meters and per-core PMU counters.

The real ODROID-XU3 exposes INA231 power sensors per cluster and ARM PMU
performance counters per core.  Both are noisy, quantized instruments;
the controllers must be robust to that, so the simulator reproduces
multiplicative Gaussian noise plus a resolution floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class NoisySensor:
    """A scalar sensor with multiplicative noise and quantization.

    Parameters
    ----------
    noise_fraction:
        Standard deviation of the multiplicative Gaussian noise.
    resolution:
        Quantization step of the readout (0 disables quantization).
    floor:
        Minimum reportable value (sensors cannot read below their
        offset floor).
    """

    name: str
    noise_fraction: float = 0.015
    resolution: float = 0.0
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        if self.resolution < 0:
            raise ValueError("resolution must be non-negative")

    def read(self, true_value: float, rng: np.random.Generator) -> float:
        """One noisy readout of ``true_value``.

        The clamp on the noise gain is scalar ``min``/``max`` — for a
        scalar operand this is bit-identical to ``np.clip`` without the
        array round-trip, and the single ``rng.normal`` draw per read is
        part of the platform's RNG draw-order contract (see
        ``tests/platform/test_rng_contract.py``).
        """
        value = float(true_value)
        if self.noise_fraction > 0:
            gain = rng.normal(1.0, self.noise_fraction)
            if gain < 0.0:
                gain = 0.0
            elif gain > 2.0:
                gain = 2.0
            value *= float(gain)
        if self.resolution > 0:
            value = round(value / self.resolution) * self.resolution
        return max(value, self.floor)


def batched_noise_eligible(power_sensor_, pmu_sensors) -> bool:
    """Mirror of the scalar batched-draw gate in ``soc.read_cluster_telemetry``.

    The scalar fast path pre-draws one ``standard_normal(n_cores + 1)``
    block per cluster only when every sensor is a plain ``NoisySensor``
    with strictly positive noise (a zero-noise or subclassed sensor may
    consume a different number of draws).  The fleet kernel requires the
    same shape so its per-row noise blocks line up with the scalar
    stream.
    """
    return (
        type(power_sensor_) is NoisySensor
        and power_sensor_.noise_fraction > 0
        and all(
            type(sensor) is NoisySensor and sensor.noise_fraction > 0
            for sensor in pmu_sensors
        )
    )


def power_sensor(cluster_name: str) -> NoisySensor:
    """INA231-like cluster power sensor: ~1.5% noise, 5 mW resolution."""
    return NoisySensor(
        name=f"{cluster_name}-power",
        noise_fraction=0.015,
        resolution=0.005,
        floor=0.0,
    )


def pmu_counter(core_name: str) -> NoisySensor:
    """PMU-derived per-core rate counter.

    Per-core instruction rates sampled at a 50 ms granularity fluctuate
    substantially (scheduling quanta, cache warmth): ~5% relative noise.
    Cluster-level aggregates average much of this away, which is one of
    the reasons cluster-scoped models identify so much better than
    per-core-scoped ones (Figures 5 and 15).
    """
    return NoisySensor(
        name=f"{core_name}-pmu",
        noise_fraction=0.05,
        resolution=0.0,
        floor=0.0,
    )
