"""Many-cluster platform: SPECTR's scalability substrate.

The paper argues (Sections 2.3, 3.1, 5.2) that supervisory control
scales to many-core systems where monolithic MIMO control cannot: one
small leaf controller per subsystem plus one supervisor whose size does
not grow with the core count.  This module provides the platform side
of that demonstration — an SoC with one Big (QoS-hosting) cluster plus
an arbitrary number of Little clusters, sharing the same power/perf
models, sensors, and a sticky least-loaded scheduler generalized to N
clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.opp import big_cluster_opps, little_cluster_opps
from repro.platform.perf import (
    big_cluster_perf_model,
    little_cluster_perf_model,
)
from repro.platform.power import (
    big_cluster_power_model,
    little_cluster_power_model,
)
from repro.platform.soc import (
    Cluster,
    ClusterTelemetry,
    PlatformError,
    SoCConfig,
    fair_share_capacity,
    read_cluster_telemetry,
    sync_cluster_clocks,
)
from repro.workloads.base import BackgroundTask, QoSWorkload
from repro.workloads.heartbeats import HeartbeatMonitor


@dataclass
class ManyCoreTelemetry:
    """Sensor snapshot of the many-cluster platform."""

    time_s: float
    qos_rate: float
    qos_raw: float
    clusters: list[ClusterTelemetry]

    @property
    def chip_power_w(self) -> float:
        return float(sum(c.power_w for c in self.clusters))


class MultiClusterScheduler:
    """Sticky least-loaded placement across N clusters."""

    def __init__(
        self,
        *,
        strength_exponent: float = 0.5,
        migration_hysteresis: float = 0.35,
    ) -> None:
        self._strength_exponent = strength_exponent
        self._migration_hysteresis = migration_hysteresis
        self._previous: dict[str, int] = {}

    def place(
        self,
        tasks: list[BackgroundTask],
        clusters: list[Cluster],
        resident_threads: list[float],
    ) -> list[list[BackgroundTask]]:
        """Assign each task a cluster index; returns tasks per cluster."""
        loads = list(resident_threads)
        capacities = [
            c.active_cores * c.core_rate_ips() ** self._strength_exponent
            for c in clusters
        ]
        assigned: list[list[BackgroundTask]] = [[] for _ in clusters]
        active_names = set()
        for task in sorted(tasks, key=lambda t: (-t.demand, t.name)):
            active_names.add(task.name)
            costs = []
            for index, capacity in enumerate(capacities):
                if capacity <= 0:
                    costs.append(float("inf"))
                    continue
                cost = (loads[index] + task.demand) / capacity
                if self._previous.get(task.name) not in (None, index):
                    cost *= 1.0 + self._migration_hysteresis
                costs.append(cost)
            best = int(np.argmin(costs))
            assigned[best].append(task)
            loads[best] += task.demand
            self._previous[task.name] = best
        for name in list(self._previous):
            if name not in active_names:
                del self._previous[name]
        return assigned


class ManyCoreSoC:
    """One Big (QoS host) cluster + ``n_little`` Little clusters."""

    def __init__(
        self,
        *,
        n_little: int = 3,
        qos_app: QoSWorkload | None = None,
        background: list[BackgroundTask] | None = None,
        config: SoCConfig | None = None,
    ) -> None:
        if n_little < 0:
            raise PlatformError("n_little must be non-negative")
        self.config = config or SoCConfig()
        self.clusters: list[Cluster] = [
            Cluster(
                "big0",
                n_cores=self.config.cores_per_cluster,
                opps=big_cluster_opps(),
                power_model=big_cluster_power_model(),
                perf_model=big_cluster_perf_model(),
            )
        ]
        for index in range(n_little):
            self.clusters.append(
                Cluster(
                    f"little{index}",
                    n_cores=self.config.cores_per_cluster,
                    opps=little_cluster_opps(),
                    power_model=little_cluster_power_model(),
                    perf_model=little_cluster_perf_model(),
                )
            )
        self.qos_app = qos_app
        self.background = list(background or [])
        self.scheduler = MultiClusterScheduler()
        self.heartbeats = HeartbeatMonitor(
            window_s=self.config.heartbeat_window_s
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.time_s = 0.0

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def host(self) -> Cluster:
        """The cluster hosting the QoS application."""
        return self.clusters[0]

    def step(self) -> ManyCoreTelemetry:
        """Advance one control interval."""
        now = self.time_s
        sync_cluster_clocks(self.clusters, now)
        active_bg = [t for t in self.background if t.active_at(now)]
        qos_threads = float(self.qos_app.threads) if self.qos_app else 0.0
        resident = [0.0] * self.n_clusters
        resident[0] = qos_threads
        assigned = self.scheduler.place(active_bg, self.clusters, resident)

        telemetries: list[ClusterTelemetry] = []
        qos_rate_raw = 0.0
        for index, cluster in enumerate(self.clusters):
            capacity = cluster.effective_capacity()
            bg_demand = sum(t.demand for t in assigned[index])
            runnable = resident[index] + bg_demand
            if index == 0 and self.qos_app is not None:
                share = fair_share_capacity(capacity, runnable)
                qos_rate_raw = self.qos_app.rate(
                    cluster.perf_model,
                    cluster.frequency_ghz,
                    qos_threads * share,
                    time_s=now,
                    rng=self.rng,
                )
                self.heartbeats.issue(
                    now, qos_rate_raw * self.config.dt_s
                )
            busy = min(capacity, runnable)
            telemetries.append(self._cluster_telemetry(cluster, busy))

        qos_rate = (
            self.heartbeats.rate(now) if self.qos_app is not None else 0.0
        )
        self.time_s = now + self.config.dt_s
        return ManyCoreTelemetry(
            time_s=now,
            qos_rate=qos_rate,
            qos_raw=qos_rate_raw,
            clusters=telemetries,
        )

    def _cluster_telemetry(
        self, cluster: Cluster, busy: float
    ) -> ClusterTelemetry:
        # Shared hot-path kernel with ExynosSoC (same draw order: power
        # sensor first, then one PMU draw per core).
        return read_cluster_telemetry(cluster, busy, self.rng)
