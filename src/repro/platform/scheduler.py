"""HMP task scheduler for background (non-QoS) tasks.

Models the relevant behaviour of Linux's big.LITTLE HMP scheduler for
the paper's scenario: the QoS application's threads run on the Big
cluster; single-threaded background tasks "have no runtime restrictions,
i.e., the Linux scheduler can freely migrate them between and within
clusters".  We reproduce the load-balancing outcome: each background
task lands on the cluster whose *relative load* (runnable threads per
unit of compute capacity) its arrival raises the least, with the Little
cluster preferred on ties (Linux's HMP scheduler "typically maps
[low-priority] threads to a core on the low-power Little cluster").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime circular import with repro.workloads
    from repro.workloads.base import BackgroundTask


@dataclass(frozen=True)
class Placement:
    """Background-task placement for one control interval.

    Demands are cached: a Placement is a value object (frozen, tuple
    fields), so its aggregate demand never changes once built, and the
    scheduler reuses the same instance across intervals while the
    assignment is unchanged.
    """

    big_tasks: tuple[BackgroundTask, ...]
    little_tasks: tuple[BackgroundTask, ...]

    @cached_property
    def big_demand(self) -> float:
        return sum(t.demand for t in self.big_tasks)

    @cached_property
    def little_demand(self) -> float:
        return sum(t.demand for t in self.little_tasks)


@dataclass(frozen=True)
class ClusterCapacity:
    """Scheduling view of one cluster: slots and per-core strength."""

    active_cores: int
    core_strength: float  # relative compute capability of one core

    @property
    def capacity(self) -> float:
        return self.active_cores * self.core_strength

    def scheduling_capacity(self, strength_exponent: float) -> float:
        """Capacity as the load balancer sees it.

        Linux's HMP load balancing is *partially* capacity aware: it
        weighs core strength, but far less than proportionally (runnable
        counts dominate).  ``strength_exponent`` in (0, 1) interpolates
        between pure thread-count balancing (0) and fully
        strength-proportional balancing (1).
        """
        return self.active_cores * self.core_strength**strength_exponent


_EMPTY_PLACEMENT = Placement(big_tasks=(), little_tasks=())


class HMPScheduler:
    """Greedy least-loaded placement with migration hysteresis.

    The scheduler is stateful: a task stays on its current cluster
    unless moving reduces its relative load by more than
    ``migration_hysteresis``.  Without this stickiness the load
    balancer re-shuffles every interval as the DVFS controllers move
    cluster capacities, producing task-sloshing limit cycles no real
    kernel exhibits (Linux balances on a coarser period and biases
    toward the current CPU).
    """

    def __init__(
        self,
        *,
        little_bias: float = 1e-6,
        strength_exponent: float = 0.5,
        migration_hysteresis: float = 0.35,
    ) -> None:
        # Bias nudges ties toward Little, matching Linux HMP behaviour
        # for background work.
        if not 0 <= strength_exponent <= 1:
            raise ValueError("strength_exponent must lie in [0, 1]")
        if migration_hysteresis < 0:
            raise ValueError("migration_hysteresis must be non-negative")
        self._little_bias = little_bias
        self._strength_exponent = strength_exponent
        self._migration_hysteresis = migration_hysteresis
        self._previous: dict[str, str] = {}
        self._last_placement: Placement | None = None

    def reset(self) -> None:
        """Forget previous assignments (e.g. between experiments)."""
        self._previous.clear()
        self._last_placement = None

    def place_idle(self) -> Placement:
        """Fast path for an interval with no runnable background tasks.

        Equivalent to ``place([], ...)`` — every previously-tracked task
        has departed, so hysteresis state is dropped — without building
        capacity views the empty placement would never consult.
        """
        if self._previous:
            self._previous.clear()
        self._last_placement = _EMPTY_PLACEMENT
        return _EMPTY_PLACEMENT

    def place(
        self,
        tasks: list[BackgroundTask],
        *,
        big: ClusterCapacity,
        little: ClusterCapacity,
        big_resident_threads: float = 0.0,
        little_resident_threads: float = 0.0,
    ) -> Placement:
        """Assign each task to a cluster.

        ``*_resident_threads`` count threads already pinned there (the
        QoS application's threads on Big).  Tasks are weighted by their
        core strength when computing load, so a Big slot absorbs more
        work per unit of load than a Little slot.
        """
        big_load = big_resident_threads
        little_load = little_resident_threads
        big_assigned: list[BackgroundTask] = []
        little_assigned: list[BackgroundTask] = []
        active_names = set()
        for task in sorted(tasks, key=lambda t: (-t.demand, t.name)):
            active_names.add(task.name)
            big_cost = self._relative_load(big_load + task.demand, big)
            little_cost = (
                self._relative_load(little_load + task.demand, little)
                - self._little_bias
            )
            previous = self._previous.get(task.name)
            if previous == "big":
                little_cost *= 1.0 + self._migration_hysteresis
            elif previous == "little":
                big_cost *= 1.0 + self._migration_hysteresis
            if little_cost <= big_cost:
                little_assigned.append(task)
                little_load += task.demand
                self._previous[task.name] = "little"
            else:
                big_assigned.append(task)
                big_load += task.demand
                self._previous[task.name] = "big"
        # Drop departed tasks so names can be reused across phases.
        for name in list(self._previous):
            if name not in active_names:
                del self._previous[name]
        big_tuple = tuple(big_assigned)
        little_tuple = tuple(little_assigned)
        # Hysteresis makes the unchanged assignment the common case:
        # reuse the previous Placement (a frozen value object) instead
        # of allocating a fresh one every interval.  Equality is by
        # task value, so a task whose demand changed misses the cache.
        last = self._last_placement
        if (
            last is not None
            and last.big_tasks == big_tuple
            and last.little_tasks == little_tuple
        ):
            return last
        placement = Placement(big_tasks=big_tuple, little_tasks=little_tuple)
        self._last_placement = placement
        return placement

    def _relative_load(self, threads: float, cluster: ClusterCapacity) -> float:
        capacity = cluster.scheduling_capacity(self._strength_exponent)
        if capacity <= 0:
            return float("inf")
        return threads / capacity


def fair_share(active_cores: int, runnable_threads: float) -> float:
    """CFS-like per-thread core share on one cluster.

    With ``A`` active cores and ``T`` runnable single-core threads each
    thread receives ``min(1, A/T)`` of a core.
    """
    if active_cores < 0:
        raise ValueError("active_cores must be non-negative")
    if runnable_threads <= 0:
        return 0.0
    return min(1.0, active_cores / runnable_threads)
