"""The simulated big.LITTLE SoC.

Assembles OPP tables, power/performance models, sensors and the HMP
scheduler into a discrete-time plant with exactly the sensor/actuator
surface the paper's resource managers see on the ODROID-XU3:

* per-cluster actuators: DVFS frequency (snapped to the OPP table) and
  active core count (hotplug);
* optional per-core idle-cycle-insertion actuators (used only by the
  large-MIMO scalability experiments of Figures 4/5/15);
* per-cluster power sensors, per-core PMU rate counters, and a
  Heartbeats-based QoS reading for the foreground application.

The simulation step is the 50 ms control interval of the paper's
userspace daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.opp import OPPTable, big_cluster_opps, little_cluster_opps
from repro.platform.perf import (
    ClusterPerfModel,
    big_cluster_perf_model,
    little_cluster_perf_model,
)
from repro.platform.power import (
    PowerModel,
    big_cluster_power_model,
    little_cluster_power_model,
)
from repro.platform.scheduler import ClusterCapacity, HMPScheduler, fair_share
from repro.platform.sensors import NoisySensor, pmu_counter, power_sensor
from repro.workloads.base import BackgroundTask, QoSWorkload
from repro.workloads.heartbeats import HeartbeatMonitor


class PlatformError(RuntimeError):
    """Raised on invalid actuation or configuration."""


class Cluster:
    """One homogeneous core cluster with its actuators and sensors."""

    def __init__(
        self,
        name: str,
        *,
        n_cores: int,
        opps: OPPTable,
        power_model: PowerModel,
        perf_model: ClusterPerfModel,
    ) -> None:
        if n_cores < 1:
            raise PlatformError("cluster needs at least one core")
        self.name = name
        self.n_cores = n_cores
        self.opps = opps
        self.power_model = power_model
        self.perf_model = perf_model
        self._frequency_ghz = opps.max_frequency
        self._active_cores = n_cores
        self._idle_fractions = np.zeros(n_cores, dtype=float)
        self.power_sensor: NoisySensor = power_sensor(name)
        self.pmu_sensors: list[NoisySensor] = [
            pmu_counter(f"{name}-core{i}") for i in range(n_cores)
        ]
        # Optional fault-injection layer consulted by the actuators
        # (set by repro.platform.faults.inject_actuator_fault).
        self.actuator_faults = None

    # ------------------------------ actuators -------------------------
    @property
    def frequency_ghz(self) -> float:
        return self._frequency_ghz

    def set_frequency(self, frequency_ghz: float) -> float:
        """DVFS request; snaps to the nearest OPP and returns it.

        When a fault-injection layer is attached, the request passes
        through it first (it may be rejected, clamped, applied
        partially, or delayed); the value that survives is snapped to
        the OPP table like any governor write.
        """
        target_ghz = self.opps.snap(frequency_ghz).frequency_ghz
        if self.actuator_faults is not None:
            target_ghz = self.actuator_faults.filter_frequency(
                self._frequency_ghz, target_ghz
            )
            target_ghz = self.opps.snap(target_ghz).frequency_ghz
        self._frequency_ghz = target_ghz
        return target_ghz

    @property
    def voltage_v(self) -> float:
        return self.opps.voltage_for(self._frequency_ghz)

    @property
    def active_cores(self) -> int:
        return self._active_cores

    def set_active_cores(self, count: float) -> int:
        """Hotplug request; rounds and clamps to [1, n_cores].

        A request dropped by an attached fault-injection layer leaves
        the active count unchanged (silent hotplug failure).
        """
        if (
            self.actuator_faults is not None
            and not self.actuator_faults.allow_hotplug()
        ):
            return self._active_cores
        snapped = int(round(float(count)))
        snapped = max(1, min(self.n_cores, snapped))
        self._active_cores = snapped
        return snapped

    @property
    def idle_fractions(self) -> np.ndarray:
        return self._idle_fractions.copy()

    def set_idle_fraction(self, core: int, fraction: float) -> None:
        """Per-core idle-cycle insertion (Figure 4's per-core actuator)."""
        if not 0 <= core < self.n_cores:
            raise PlatformError(f"core index {core} out of range")
        self._idle_fractions[core] = float(np.clip(fraction, 0.0, 0.95))

    # ------------------------------ derived ---------------------------
    def effective_capacity(self) -> float:
        """Core-equivalents available after idle-cycle insertion."""
        active = self._idle_fractions[: self._active_cores]
        return float(np.sum(1.0 - active))

    def core_rate_ips(self) -> float:
        """Instructions/s of one fully-busy core at the current OPP (G-inst/s)."""
        # IPC-like constant folded into ipc_factor; 1 G-inst/s per GHz
        # for a Big core at alpha=1.
        return self.perf_model.ipc_factor * self._frequency_ghz


@dataclass
class ClusterTelemetry:
    """Per-cluster sensor readings for one interval."""

    frequency_ghz: float
    voltage_v: float
    active_cores: int
    busy_core_equivalents: float
    power_w: float
    ips: float
    per_core_ips: np.ndarray


@dataclass
class Telemetry:
    """Full sensor snapshot the resource managers consume each interval."""

    time_s: float
    qos_rate: float
    qos_raw: float
    big: ClusterTelemetry
    little: ClusterTelemetry

    @property
    def chip_power_w(self) -> float:
        return self.big.power_w + self.little.power_w


@dataclass
class SoCConfig:
    """Construction parameters for :class:`ExynosSoC`."""

    dt_s: float = 0.05
    seed: int = 2018
    heartbeat_window_s: float = 0.10
    cores_per_cluster: int = 4


class ExynosSoC:
    """The simulated Exynos-5422-like platform.

    A single foreground :class:`QoSWorkload` runs (pinned) on the Big
    cluster; background tasks are free to migrate.  Call
    :meth:`step` once per 50 ms control interval.
    """

    def __init__(
        self,
        *,
        qos_app: QoSWorkload | None = None,
        background: list[BackgroundTask] | None = None,
        config: SoCConfig | None = None,
    ) -> None:
        self.config = config or SoCConfig()
        if self.config.dt_s <= 0:
            raise PlatformError("dt must be positive")
        self.big = Cluster(
            "big",
            n_cores=self.config.cores_per_cluster,
            opps=big_cluster_opps(),
            power_model=big_cluster_power_model(),
            perf_model=big_cluster_perf_model(),
        )
        self.little = Cluster(
            "little",
            n_cores=self.config.cores_per_cluster,
            opps=little_cluster_opps(),
            power_model=little_cluster_power_model(),
            perf_model=little_cluster_perf_model(),
        )
        self.qos_app = qos_app
        self.background = list(background or [])
        self.scheduler = HMPScheduler()
        self.heartbeats = HeartbeatMonitor(
            window_s=self.config.heartbeat_window_s
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.time_s = 0.0

    # ------------------------------------------------------------------
    def add_background_task(self, task: BackgroundTask) -> None:
        self.background.append(task)

    def clusters(self) -> tuple[Cluster, Cluster]:
        return self.big, self.little

    # ------------------------------------------------------------------
    def step(self) -> Telemetry:
        """Advance one control interval and return sensor readings."""
        now = self.time_s
        sync_cluster_clocks(self.clusters(), now)
        active_bg = [t for t in self.background if t.active_at(now)]
        qos_threads = float(self.qos_app.threads) if self.qos_app else 0.0
        placement = self.scheduler.place(
            active_bg,
            big=ClusterCapacity(
                active_cores=self.big.active_cores,
                core_strength=self.big.core_rate_ips(),
            ),
            little=ClusterCapacity(
                active_cores=self.little.active_cores,
                core_strength=self.little.core_rate_ips(),
            ),
            big_resident_threads=qos_threads,
        )

        # --- Big cluster: QoS app + its share of background tasks -----
        big_capacity = self.big.effective_capacity()
        big_runnable = qos_threads + placement.big_demand
        big_share = fair_share_capacity(big_capacity, big_runnable)
        qos_effective_threads = qos_threads * big_share
        qos_rate_raw = 0.0
        if self.qos_app is not None:
            qos_rate_raw = self.qos_app.rate(
                self.big.perf_model,
                self.big.frequency_ghz,
                qos_effective_threads,
                time_s=now,
                rng=self.rng,
            )
            self.heartbeats.issue(now, qos_rate_raw * self.config.dt_s)
        big_busy = min(big_capacity, big_runnable)

        # --- Little cluster: background only ---------------------------
        little_capacity = self.little.effective_capacity()
        little_busy = min(little_capacity, placement.little_demand)

        big_telemetry = self._cluster_telemetry(self.big, big_busy)
        little_telemetry = self._cluster_telemetry(self.little, little_busy)

        qos_rate = (
            self.heartbeats.rate(now) if self.qos_app is not None else 0.0
        )
        telemetry = Telemetry(
            time_s=now,
            qos_rate=qos_rate,
            qos_raw=qos_rate_raw,
            big=big_telemetry,
            little=little_telemetry,
        )
        self.time_s = now + self.config.dt_s
        return telemetry

    def _cluster_telemetry(
        self, cluster: Cluster, busy_core_equivalents: float
    ) -> ClusterTelemetry:
        true_power_w = cluster.power_model.cluster_power(
            cluster.frequency_ghz,
            cluster.voltage_v,
            cluster.active_cores,
            busy_core_equivalents,
        )
        measured_power_w = cluster.power_sensor.read(true_power_w, self.rng)
        per_core_ips = np.zeros(cluster.n_cores, dtype=float)
        weights = 1.0 - cluster.idle_fractions
        weights[cluster.active_cores:] = 0.0
        total_weight = float(np.sum(weights))
        core_rate = cluster.core_rate_ips()
        total_ips = busy_core_equivalents * core_rate
        for i in range(cluster.n_cores):
            share = weights[i] / total_weight if total_weight > 0 else 0.0
            per_core_ips[i] = cluster.pmu_sensors[i].read(
                total_ips * share, self.rng
            )
        return ClusterTelemetry(
            frequency_ghz=cluster.frequency_ghz,
            voltage_v=cluster.voltage_v,
            active_cores=cluster.active_cores,
            busy_core_equivalents=busy_core_equivalents,
            power_w=measured_power_w,
            ips=float(np.sum(per_core_ips)),
            per_core_ips=per_core_ips,
        )


def sync_cluster_clocks(clusters, time_s: float) -> None:
    """Propagate the simulator clock to every time-aware sensor/actuator.

    Called once per control interval by the SoC step loops.  Any object
    exposing ``set_time`` (fault-injection sensor wrappers, actuator
    fault layers) is time-aware; plain sensors are skipped.  This is
    native clock propagation — fault injection never wraps ``soc.step``,
    so injecting faults on multiple clusters cannot double-wrap the
    step loop.
    """
    for cluster in clusters:
        for instrument in (
            cluster.power_sensor,
            *cluster.pmu_sensors,
            cluster.actuator_faults,
        ):
            clock_setter = getattr(instrument, "set_time", None)
            if clock_setter is not None:
                clock_setter(time_s)


def fair_share_capacity(capacity: float, runnable_threads: float) -> float:
    """Per-thread core share when capacity may be fractional."""
    if runnable_threads <= 0:
        return 0.0
    return min(1.0, capacity / runnable_threads)


# Re-export for symmetry with the scheduler module.
__all__ = [
    "Cluster",
    "ClusterTelemetry",
    "ExynosSoC",
    "PlatformError",
    "SoCConfig",
    "Telemetry",
    "fair_share",
    "fair_share_capacity",
    "sync_cluster_clocks",
]
