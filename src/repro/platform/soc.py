"""The simulated big.LITTLE SoC.

Assembles OPP tables, power/performance models, sensors and the HMP
scheduler into a discrete-time plant with exactly the sensor/actuator
surface the paper's resource managers see on the ODROID-XU3:

* per-cluster actuators: DVFS frequency (snapped to the OPP table) and
  active core count (hotplug);
* optional per-core idle-cycle-insertion actuators (used only by the
  large-MIMO scalability experiments of Figures 4/5/15);
* per-cluster power sensors, per-core PMU rate counters, and a
  Heartbeats-based QoS reading for the foreground application.

The simulation step is the 50 ms control interval of the paper's
userspace daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.opp import OPPTable, big_cluster_opps, little_cluster_opps
from repro.platform.perf import (
    ClusterPerfModel,
    big_cluster_perf_model,
    little_cluster_perf_model,
)
from repro.platform.power import (
    PowerModel,
    big_cluster_power_model,
    little_cluster_power_model,
)
from repro.platform.scheduler import ClusterCapacity, HMPScheduler, fair_share
from repro.platform.sensors import (
    NoisySensor,
    batched_noise_eligible,
    pmu_counter,
    power_sensor,
)
from repro.workloads.base import BackgroundTask, QoSWorkload
from repro.workloads.heartbeats import HeartbeatMonitor


class PlatformError(RuntimeError):
    """Raised on invalid actuation or configuration."""


class Cluster:
    """One homogeneous core cluster with its actuators and sensors."""

    def __init__(
        self,
        name: str,
        *,
        n_cores: int,
        opps: OPPTable,
        power_model: PowerModel,
        perf_model: ClusterPerfModel,
    ) -> None:
        if n_cores < 1:
            raise PlatformError("cluster needs at least one core")
        self.name = name
        self.n_cores = n_cores
        self.opps = opps
        self.power_model = power_model
        self.perf_model = perf_model
        self._frequency_ghz = opps.max_frequency
        self._voltage_v = opps.snap(self._frequency_ghz).voltage_v
        self._active_cores = n_cores
        self._idle_fractions = np.zeros(n_cores, dtype=float)
        # Count of cores with nonzero idle insertion; lets the hot path
        # skip the idle-weighting array math in the common all-busy case.
        self._idle_cores = 0
        self.power_sensor: NoisySensor = power_sensor(name)
        self.pmu_sensors: list[NoisySensor] = [
            pmu_counter(f"{name}-core{i}") for i in range(n_cores)
        ]
        # Optional fault-injection layer consulted by the actuators
        # (set by repro.platform.faults.inject_actuator_fault).
        self.actuator_faults = None
        # Identity-keyed cache of bound ``set_time`` methods; rebuilt
        # when fault injection swaps an instrument (see clock_setters).
        self._clock_setter_key: tuple | None = None
        self._clock_setters: tuple = ()

    # ------------------------------ actuators -------------------------
    @property
    def frequency_ghz(self) -> float:
        return self._frequency_ghz

    def set_frequency(self, frequency_ghz: float) -> float:
        """DVFS request; snaps to the nearest OPP and returns it.

        When a fault-injection layer is attached, the request passes
        through it first (it may be rejected, clamped, applied
        partially, or delayed); the value that survives is snapped to
        the OPP table like any governor write.
        """
        opp = self.opps.snap(frequency_ghz)
        if self.actuator_faults is not None:
            target_ghz = self.actuator_faults.filter_frequency(
                self._frequency_ghz, opp.frequency_ghz
            )
            opp = self.opps.snap(target_ghz)
        self._frequency_ghz = opp.frequency_ghz
        self._voltage_v = opp.voltage_v
        return opp.frequency_ghz

    @property
    def voltage_v(self) -> float:
        # Cached alongside the frequency by set_frequency, so telemetry
        # never re-bisects the OPP table.
        return self._voltage_v

    @property
    def active_cores(self) -> int:
        return self._active_cores

    def set_active_cores(self, count: float) -> int:
        """Hotplug request; rounds and clamps to [1, n_cores].

        Rounding is Python's built-in round-half-to-even ("banker's
        rounding"): a request of 2.5 cores plugs **2**, while 3.5 plugs
        4.  This is pinned as the intended actuator semantics
        (``tests/platform/test_soc.py::TestHotplugRounding``): it is
        the behaviour the golden traces were generated with, it avoids
        a systematic upward hotplug bias when a continuous controller
        dithers around ``.5`` requests, and ``ActuatorProxy`` applies
        the same rounding so proxied and direct actuation agree.

        A request dropped by an attached fault-injection layer leaves
        the active count unchanged (silent hotplug failure).
        """
        if (
            self.actuator_faults is not None
            and not self.actuator_faults.allow_hotplug()
        ):
            return self._active_cores
        snapped = int(round(float(count)))
        snapped = max(1, min(self.n_cores, snapped))
        self._active_cores = snapped
        return snapped

    @property
    def idle_fractions(self) -> np.ndarray:
        return self._idle_fractions.copy()

    def set_idle_fraction(self, core: int, fraction: float) -> None:
        """Per-core idle-cycle insertion (Figure 4's per-core actuator)."""
        if not 0 <= core < self.n_cores:
            raise PlatformError(f"core index {core} out of range")
        clipped = float(fraction)
        if clipped < 0.0:
            clipped = 0.0
        elif clipped > 0.95:
            clipped = 0.95
        was_idle = self._idle_fractions[core] > 0.0
        self._idle_fractions[core] = clipped
        if (clipped > 0.0) != was_idle:
            self._idle_cores += 1 if clipped > 0.0 else -1

    # ------------------------------ derived ---------------------------
    def effective_capacity(self) -> float:
        """Core-equivalents available after idle-cycle insertion."""
        if self._idle_cores == 0:
            # All-busy common case; bit-identical to summing ones.
            return float(self._active_cores)
        return _idle_adjusted_capacity(self._idle_fractions, self._active_cores)

    def core_rate_ips(self) -> float:
        """Instructions/s of one fully-busy core at the current OPP (G-inst/s)."""
        # IPC-like constant folded into ipc_factor; 1 G-inst/s per GHz
        # for a Big core at alpha=1.
        return self.perf_model.ipc_factor * self._frequency_ghz

    # ------------------------------ clocking --------------------------
    def clock_setters(self) -> tuple:
        """Bound ``set_time`` methods of the time-aware instruments.

        Cached on the identity of the instrument objects: fault
        injection replaces ``power_sensor`` / attaches
        ``actuator_faults`` by plain assignment, so the per-step cost is
        one id-tuple comparison instead of a ``getattr`` scan over every
        sensor.  Plain sensors (no ``set_time``) contribute nothing, so
        the fault-free fast path iterates an empty tuple.
        """
        key = (
            id(self.power_sensor),
            id(self.actuator_faults),
            *map(id, self.pmu_sensors),
        )
        if key != self._clock_setter_key:
            setters = []
            for instrument in (
                self.power_sensor,
                *self.pmu_sensors,
                self.actuator_faults,
            ):
                setter = getattr(instrument, "set_time", None)
                if setter is not None:
                    setters.append(setter)
            self._clock_setters = tuple(setters)
            self._clock_setter_key = key
        return self._clock_setters


@dataclass
class ClusterTelemetry:
    """Per-cluster sensor readings for one interval."""

    frequency_ghz: float
    voltage_v: float
    active_cores: int
    busy_core_equivalents: float
    power_w: float
    ips: float
    per_core_ips: np.ndarray


@dataclass
class Telemetry:
    """Full sensor snapshot the resource managers consume each interval."""

    time_s: float
    qos_rate: float
    qos_raw: float
    big: ClusterTelemetry
    little: ClusterTelemetry

    @property
    def chip_power_w(self) -> float:
        return self.big.power_w + self.little.power_w


@dataclass
class SoCConfig:
    """Construction parameters for :class:`ExynosSoC`."""

    dt_s: float = 0.05
    seed: int = 2018
    heartbeat_window_s: float = 0.10
    cores_per_cluster: int = 4


class ExynosSoC:
    """The simulated Exynos-5422-like platform.

    A single foreground :class:`QoSWorkload` runs (pinned) on the Big
    cluster; background tasks are free to migrate.  Call
    :meth:`step` once per 50 ms control interval.
    """

    def __init__(
        self,
        *,
        qos_app: QoSWorkload | None = None,
        background: list[BackgroundTask] | None = None,
        config: SoCConfig | None = None,
    ) -> None:
        self.config = config or SoCConfig()
        if self.config.dt_s <= 0:
            raise PlatformError("dt must be positive")
        self.big = Cluster(
            "big",
            n_cores=self.config.cores_per_cluster,
            opps=big_cluster_opps(),
            power_model=big_cluster_power_model(),
            perf_model=big_cluster_perf_model(),
        )
        self.little = Cluster(
            "little",
            n_cores=self.config.cores_per_cluster,
            opps=little_cluster_opps(),
            power_model=little_cluster_power_model(),
            perf_model=little_cluster_perf_model(),
        )
        self.qos_app = qos_app
        self.background = list(background or [])
        self.scheduler = HMPScheduler()
        self.heartbeats = HeartbeatMonitor(
            window_s=self.config.heartbeat_window_s
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.time_s = 0.0
        self._clusters = (self.big, self.little)

    # ------------------------------------------------------------------
    def add_background_task(self, task: BackgroundTask) -> None:
        self.background.append(task)

    def clusters(self) -> tuple[Cluster, Cluster]:
        return self._clusters

    # ------------------------------------------------------------------
    def step(self) -> Telemetry:
        """Advance one control interval and return sensor readings.

        Hot path: the RNG draw order here is a contract (see
        ``tests/platform/test_rng_contract.py``) — per step, the QoS
        workload draws first (if present and noisy), then each cluster
        in Big/Little order draws its power sensor followed by one PMU
        draw per core.  Optimizations must preserve that order exactly;
        the golden traces in ``tests/exec/fixtures`` pin it down to the
        bit.
        """
        now = self.time_s
        big = self.big
        little = self.little
        sync_cluster_clocks(self._clusters, now)
        qos_app = self.qos_app
        qos_threads = float(qos_app.threads) if qos_app else 0.0
        active_bg = [t for t in self.background if t.active_at(now)]
        if active_bg:
            placement = self.scheduler.place(
                active_bg,
                big=ClusterCapacity(
                    active_cores=big._active_cores,
                    core_strength=big.core_rate_ips(),
                ),
                little=ClusterCapacity(
                    active_cores=little._active_cores,
                    core_strength=little.core_rate_ips(),
                ),
                big_resident_threads=qos_threads,
            )
            big_demand = placement.big_demand
            little_demand = placement.little_demand
        else:
            # No runnable background work: skip capacity-view and
            # placement churn entirely (still lets the scheduler drop
            # departed tasks so names can be reused across phases).
            self.scheduler.place_idle()
            big_demand = 0.0
            little_demand = 0.0

        # --- Big cluster: QoS app + its share of background tasks -----
        big_capacity = big.effective_capacity()
        big_runnable = qos_threads + big_demand
        big_share = fair_share_capacity(big_capacity, big_runnable)
        qos_rate_raw = 0.0
        if qos_app is not None:
            qos_rate_raw = qos_app.rate(
                big.perf_model,
                big._frequency_ghz,
                qos_threads * big_share,
                time_s=now,
                rng=self.rng,
            )
            self.heartbeats.issue(now, qos_rate_raw * self.config.dt_s)
        big_busy = min(big_capacity, big_runnable)

        # --- Little cluster: background only ---------------------------
        little_capacity = little.effective_capacity()
        little_busy = min(little_capacity, little_demand)

        big_telemetry = self._cluster_telemetry(big, big_busy)
        little_telemetry = self._cluster_telemetry(little, little_busy)

        qos_rate = self.heartbeats.rate(now) if qos_app is not None else 0.0
        telemetry = Telemetry(
            time_s=now,
            qos_rate=qos_rate,
            qos_raw=qos_rate_raw,
            big=big_telemetry,
            little=little_telemetry,
        )
        self.time_s = now + self.config.dt_s
        return telemetry

    def _cluster_telemetry(
        self, cluster: Cluster, busy_core_equivalents: float
    ) -> ClusterTelemetry:
        # Thin indirection kept so repro.perf can hook the sensor stage
        # per SoC instance; the shared kernel lives at module level.
        return read_cluster_telemetry(cluster, busy_core_equivalents, self.rng)


def read_cluster_telemetry(
    cluster: Cluster, busy_core_equivalents: float, rng: np.random.Generator
) -> ClusterTelemetry:
    """One cluster's sensor readings for one interval (shared kernel).

    Used by both :class:`ExynosSoC` and ``ManyCoreSoC``.  Draw order per
    cluster: one power-sensor draw, then one PMU draw per core (all
    cores, including inactive ones — their target rate is simply zero).
    The uniform-weights fast path avoids the per-step numpy temporaries;
    it is bit-identical to the array formulation because each share is
    the same ``1/active`` quotient and a sequential sum matches
    ``np.sum`` below numpy's 8-wide pairwise unroll.  When every sensor
    is a plain noisy one, the noise gains come from one batched
    ``standard_normal`` call — ``rng.normal(1, s)`` equals
    ``1 + s * standard_normal()`` draw-for-draw, so the stream is
    consumed identically (asserted by the RNG contract tests).
    """
    frequency_ghz = cluster._frequency_ghz
    true_power_w = cluster.power_model.cluster_power(
        frequency_ghz,
        cluster._voltage_v,
        cluster._active_cores,
        busy_core_equivalents,
    )
    n_cores = cluster.n_cores
    active = cluster._active_cores
    total_ips = busy_core_equivalents * (
        cluster.perf_model.ipc_factor * frequency_ghz
    )
    pmu_sensors = cluster.pmu_sensors
    power_sensor_ = cluster.power_sensor
    if cluster._idle_cores == 0 and n_cores < 8:
        share = 1.0 / float(active)
        target = total_ips * share
        ips = 0.0
        values = []
        if (
            type(power_sensor_) is NoisySensor
            and power_sensor_.noise_fraction > 0
            and all(
                type(s) is NoisySensor and s.noise_fraction > 0
                for s in pmu_sensors
            )
        ):
            z = rng.standard_normal(n_cores + 1)
            measured_power_w = _read_with_gain(
                power_sensor_, true_power_w, z[0]
            )
            for i in range(n_cores):
                value = _read_with_gain(
                    pmu_sensors[i],
                    target if i < active else 0.0,
                    z[i + 1],
                )
                values.append(value)
                ips += value
        else:
            measured_power_w = power_sensor_.read(true_power_w, rng)
            for i in range(n_cores):
                value = pmu_sensors[i].read(
                    target if i < active else 0.0, rng
                )
                values.append(value)
                ips += value
        per_core_ips = np.array(values, dtype=float)
    else:
        measured_power_w = power_sensor_.read(true_power_w, rng)
        per_core_ips, ips = _telemetry_with_idle_insertion(
            cluster, total_ips, rng
        )
    return ClusterTelemetry(
        frequency_ghz=frequency_ghz,
        voltage_v=cluster._voltage_v,
        active_cores=active,
        busy_core_equivalents=busy_core_equivalents,
        power_w=measured_power_w,
        ips=ips,
        per_core_ips=per_core_ips,
    )


def _read_with_gain(sensor: NoisySensor, true_value: float, z: float) -> float:
    """``NoisySensor.read`` with the noise gain supplied from a batched
    standard-normal draw: ``1 + noise_fraction * z`` is bit-identical to
    the scalar ``rng.normal(1, noise_fraction)`` the sensor would draw.
    """
    value = float(true_value)
    gain = 1.0 + sensor.noise_fraction * z
    if gain < 0.0:
        gain = 0.0
    elif gain > 2.0:
        gain = 2.0
    value *= float(gain)
    resolution = sensor.resolution
    if resolution > 0:
        value = round(value / resolution) * resolution
    return max(value, sensor.floor)


def _telemetry_with_idle_insertion(
    cluster: Cluster, total_ips: float, rng: np.random.Generator
):
    """Idle-insertion / wide-cluster telemetry slow path.

    Deliberately kept on numpy (REPRO-L009 allowlisted): idle weighting
    needs the array math, and for >= 8 cores a sequential sum would not
    match ``np.sum``'s pairwise reduction bit-for-bit.
    """
    n_cores = cluster.n_cores
    per_core_ips = np.zeros(n_cores, dtype=float)
    weights = 1.0 - cluster._idle_fractions
    weights[cluster._active_cores:] = 0.0
    total_weight = float(np.sum(weights))
    for i in range(n_cores):
        share = weights[i] / total_weight if total_weight > 0 else 0.0
        per_core_ips[i] = cluster.pmu_sensors[i].read(total_ips * share, rng)
    return per_core_ips, float(np.sum(per_core_ips))


def _idle_adjusted_capacity(
    idle_fractions: np.ndarray, active_cores: int
) -> float:
    """Capacity under idle insertion (REPRO-L009 allowlisted slow path)."""
    return float(np.sum(1.0 - idle_fractions[:active_cores]))


def sync_cluster_clocks(clusters, time_s: float) -> None:
    """Propagate the simulator clock to every time-aware sensor/actuator.

    Called once per control interval by the SoC step loops.  Any object
    exposing ``set_time`` (fault-injection sensor wrappers, actuator
    fault layers) is time-aware; plain sensors are skipped.  This is
    native clock propagation — fault injection never wraps ``soc.step``,
    so injecting faults on multiple clusters cannot double-wrap the
    step loop.

    :class:`Cluster` precomputes its time-aware instruments
    (``clock_setters``), so the fault-free fast path makes zero
    ``getattr`` probes; duck-typed cluster objects without the cache
    fall back to the original per-instrument scan.
    """
    for cluster in clusters:
        cached = getattr(cluster, "clock_setters", None)
        if cached is not None:
            for clock_setter in cached():
                clock_setter(time_s)
            continue
        for instrument in (
            cluster.power_sensor,
            *cluster.pmu_sensors,
            cluster.actuator_faults,
        ):
            clock_setter = getattr(instrument, "set_time", None)
            if clock_setter is not None:
                clock_setter(time_s)


def fair_share_capacity(capacity: float, runnable_threads: float) -> float:
    """Per-thread core share when capacity may be fractional."""
    if runnable_threads <= 0:
        return 0.0
    return min(1.0, capacity / runnable_threads)


def fleet_sensor_layout(cluster: Cluster):
    """Validate a cluster for fleet vectorization; return its sensors.

    The fleet kernel (``repro.platform.fleet``) only reproduces the
    scalar *fast* path of :func:`read_cluster_telemetry`: plain noisy
    sensors, no idle insertion, fewer than 8 cores, no attached fault
    layers (faulted devices run on the scalar oracle).  Anything else
    would change how many RNG draws each tick consumes, so it is
    rejected loudly here rather than silently diverging.
    """
    if cluster._idle_cores != 0:
        raise PlatformError(
            f"cluster {cluster.name!r}: idle insertion is active; the fleet "
            "kernel only reproduces the scalar fast path"
        )
    if cluster.n_cores >= 8:
        raise PlatformError(
            f"cluster {cluster.name!r}: >= 8 cores uses the pairwise-sum "
            "telemetry slow path, which the fleet kernel does not vectorize"
        )
    if cluster.actuator_faults is not None:
        raise PlatformError(
            f"cluster {cluster.name!r}: actuator fault layers are attached; "
            "faulted devices must run on the scalar oracle"
        )
    if not batched_noise_eligible(cluster.power_sensor, cluster.pmu_sensors):
        raise PlatformError(
            f"cluster {cluster.name!r}: sensors are not plain NoisySensor "
            "instances with positive noise, so the batched standard_normal "
            "block would not match the scalar draw order"
        )
    return cluster.power_sensor, tuple(cluster.pmu_sensors)


# Re-export for symmetry with the scheduler module.
__all__ = [
    "Cluster",
    "ClusterTelemetry",
    "ExynosSoC",
    "PlatformError",
    "SoCConfig",
    "Telemetry",
    "fair_share",
    "fair_share_capacity",
    "fleet_sensor_layout",
    "read_cluster_telemetry",
    "sync_cluster_clocks",
]
