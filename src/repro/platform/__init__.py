"""Simulated Exynos 5422 big.LITTLE platform (hardware substitution).

Provides the sensor/actuator surface the paper's resource managers use
on the ODROID-XU3: per-cluster DVFS + hotplug actuators, per-cluster
power sensors, per-core PMU counters, a Heartbeats QoS channel, and an
HMP scheduler placing background tasks.
"""

from repro.platform.manycore import (
    ManyCoreSoC,
    ManyCoreTelemetry,
    MultiClusterScheduler,
)
from repro.platform.opp import (
    OPP,
    OPPTable,
    big_cluster_opps,
    little_cluster_opps,
)
from repro.platform.perf import (
    ClusterPerfModel,
    amdahl_speedup,
    big_cluster_perf_model,
    frequency_scale,
    little_cluster_perf_model,
)
from repro.platform.power import (
    PowerModel,
    big_cluster_power_model,
    little_cluster_power_model,
)
from repro.platform.scheduler import (
    ClusterCapacity,
    HMPScheduler,
    Placement,
    fair_share,
)
from repro.platform.sensors import NoisySensor, pmu_counter, power_sensor
from repro.platform.soc import (
    Cluster,
    ClusterTelemetry,
    ExynosSoC,
    PlatformError,
    SoCConfig,
    Telemetry,
)

__all__ = [
    "OPP",
    "OPPTable",
    "Cluster",
    "ClusterCapacity",
    "ClusterPerfModel",
    "ClusterTelemetry",
    "ExynosSoC",
    "HMPScheduler",
    "ManyCoreSoC",
    "ManyCoreTelemetry",
    "MultiClusterScheduler",
    "NoisySensor",
    "Placement",
    "PlatformError",
    "PowerModel",
    "SoCConfig",
    "Telemetry",
    "amdahl_speedup",
    "big_cluster_opps",
    "big_cluster_perf_model",
    "big_cluster_power_model",
    "fair_share",
    "frequency_scale",
    "little_cluster_opps",
    "little_cluster_perf_model",
    "little_cluster_power_model",
    "pmu_counter",
    "power_sensor",
]
