"""Benchmark-suite fixtures.

Each benchmark regenerates one table or figure of the paper and saves
its rendered text under ``benchmarks/results/`` so the reproduction
output can be inspected after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


BENCH_CACHE_DIR = Path(__file__).parent / ".exec-cache"


@pytest.fixture(scope="session")
def bench_cache():
    """The benchmark suite's persistent on-disk result cache."""
    from repro.exec.cache import ResultCache

    return ResultCache(BENCH_CACHE_DIR)


@pytest.fixture(scope="session", autouse=True)
def warm_identification_cache(bench_cache):
    """Warm all shared design artifacts once so individual benchmarks
    time their own computation, not the setup.

    The big/little/full models and the verified supervisor come from
    the persistent exec artifact cache (derived on the very first
    benchmark run, loaded from disk afterwards); the benchmark-only
    per-core model is attached on top.
    """
    from repro.exec.artifacts import prime_process
    from repro.experiments.figures import identified_systems

    prime_process(bench_cache)
    identified_systems(with_percore=True)
