"""Benchmark-suite fixtures.

Each benchmark regenerates one table or figure of the paper and saves
its rendered text under ``benchmarks/results/`` so the reproduction
output can be inspected after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session", autouse=True)
def warm_identification_cache():
    """Identify all controller models once so individual benchmarks
    time their own computation, not the shared setup."""
    from repro.experiments.figures import (
        case_study_supervisor,
        identified_systems,
    )

    identified_systems(with_percore=True)
    case_study_supervisor()
