"""Wall-clock benchmark of the per-tick hot path (the step kernel).

Runs each of the four managers through the paper's three-phase scenario
on the single-run ``run_scenario`` path and compares steps/sec against
the committed pre-optimization baseline.  Writes
``benchmarks/results/step_kernel.json`` with both numbers so perf
regressions are diffable across runs.

The baseline was measured on this repo at commit ``69831b4`` (before
the hot-path rework) with the exact same protocol: 300 steps
(``three_phase_scenario(phase_duration_s=5.0)``), workload ``x264``,
seed 2018, two warm-up runs then best of five, interleaved with the
optimized tree in alternating subprocesses to cancel machine drift
(best of three such rounds).  Re-measure it the same way — a baseline
taken under different load is not comparable.

Quick mode (``STEP_KERNEL_QUICK=1``) is for CI smoke: fewer repeats and
no speedup assertion — timing on a cold, loaded box is noise, but the
benchmark must still complete and emit valid JSON.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR

# steps/sec at commit 69831b4, measured with _timed_run's protocol.
BASELINE_STEPS_PER_S = {
    "FS": 3444.8,
    "MM-Perf": 2373.3,
    "MM-Pow": 2487.9,
    "SPECTR": 2377.0,
}

# The tentpole's acceptance bar, asserted on the slowest-relative
# manager (SPECTR) in full mode only.
REQUIRED_SPEEDUP = 2.0

QUICK = os.environ.get("STEP_KERNEL_QUICK", "") not in ("", "0")
WARMUP_RUNS = 1 if QUICK else 2
TIMED_RUNS = 2 if QUICK else 5


def _timed_run(manager_name: str):
    """Best-of-N steps/sec for one manager on the benchmark scenario."""
    from repro.experiments.figures import (
        identified_systems,
        manager_factory,
    )
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenario import three_phase_scenario
    from repro.workloads import x264

    scenario = three_phase_scenario(phase_duration_s=5.0)
    factory = manager_factory(manager_name, identified_systems())
    workload = x264()

    def one_run():
        start = time.perf_counter()
        trace = run_scenario(factory, workload, scenario, seed=2018)
        elapsed = time.perf_counter() - start
        return len(trace.times) / elapsed, trace

    # Thorough warm-up matters: cold runs measure interpreter/cache
    # warm-up, not the kernel, and land 20-30% below steady state.
    for _ in range(WARMUP_RUNS):
        one_run()
    best = 0.0
    trace = None
    for _ in range(TIMED_RUNS):
        steps_per_s, trace = one_run()
        best = max(best, steps_per_s)
    assert trace is not None and len(trace.times) == 300
    return best


def test_step_kernel_throughput(save_result):
    optimized = {name: _timed_run(name) for name in BASELINE_STEPS_PER_S}
    speedups = {
        name: optimized[name] / BASELINE_STEPS_PER_S[name]
        for name in BASELINE_STEPS_PER_S
    }

    payload = {
        "protocol": {
            "scenario": "three_phase_scenario(phase_duration_s=5.0)",
            "steps": 300,
            "workload": "x264",
            "seed": 2018,
            "warmup_runs": WARMUP_RUNS,
            "timed_runs": TIMED_RUNS,
            "quick_mode": QUICK,
        },
        "baseline_steps_per_s": BASELINE_STEPS_PER_S,
        "optimized_steps_per_s": {
            name: round(value, 1) for name, value in optimized.items()
        },
        "speedup": {
            name: round(value, 2) for name, value in speedups.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "step_kernel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    lines = ["Step-kernel throughput (steps/sec, best of "
             f"{TIMED_RUNS} after {WARMUP_RUNS} warm-up runs)"]
    for name in BASELINE_STEPS_PER_S:
        lines.append(
            f"  {name:<8} baseline {BASELINE_STEPS_PER_S[name]:8.1f}"
            f"  optimized {optimized[name]:8.1f}"
            f"  ({speedups[name]:.2f}x)"
        )
    save_result("step_kernel", "\n".join(lines))

    if not QUICK:
        assert speedups["SPECTR"] >= REQUIRED_SPEEDUP, (
            f"SPECTR hot path only {speedups['SPECTR']:.2f}x faster than "
            f"the committed baseline (need {REQUIRED_SPEEDUP}x)"
        )
