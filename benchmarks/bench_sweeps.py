"""Goal-space sweeps: locating the crossovers (DESIGN.md).

* TDP sweep — above the binding budget SPECTR behaves like MM-Perf
  (meets QoS, saves power); once the budget binds, SPECTR's curve
  merges with MM-Pow's while MM-Perf keeps ignoring the cap.
* QoS sweep — up to the attainable-within-TDP reference SPECTR tracks
  the reference exactly like MM-Perf; beyond it SPECTR holds the TDP
  and sheds QoS while MM-Perf rides through the budget.
"""

from repro.experiments.sweeps import qos_reference_sweep, tdp_sweep


def test_tdp_sweep(benchmark, save_result):
    result = benchmark.pedantic(tdp_sweep, rounds=1, iterations=1)
    # Generous budgets: SPECTR saves power vs MM-Pow.
    assert result.power["SPECTR"][0] < result.power["MM-Pow"][0] - 1.0
    # Tight budgets: the curves merge (crossover exists).
    crossover = result.crossover("SPECTR", "MM-Pow", metric="power")
    assert crossover is not None and crossover <= 4.0
    # MM-Perf never reacts to the budget at all.
    spread = max(result.power["MM-Perf"]) - min(result.power["MM-Perf"])
    assert spread < 0.3
    save_result("sweep_tdp", result.format_text())


def test_qos_reference_sweep(benchmark, save_result):
    result = benchmark.pedantic(
        qos_reference_sweep, rounds=1, iterations=1
    )
    # Attainable region: SPECTR == MM-Perf on both outputs.
    for index in range(3):  # refs 40, 50, 60
        assert result.qos["SPECTR"][index] == (
            result.qos["MM-Perf"][index]
        )
    # Unattainable region: MM-Perf pushes past the TDP, SPECTR does not.
    assert result.power["MM-Perf"][-1] > 5.0 * 1.05
    assert result.power["SPECTR"][-1] < 5.0
    save_result("sweep_qos_reference", result.format_text())
