"""Explicit vs. bitset model checking on scaled closed-loop models.

The scalable platform family (``core/scalable.py``) composed with
per-cluster budget counters gives a closed loop whose state space grows
as ``levels ** n_clusters`` — the stress model for the symbolic
verification kernel.  This bench verifies the flat supervisor against
the counter plant both ways:

* ``explicit_verify_supervisor`` — materialize the synchronous
  composition and walk Python sets (the pre-kernel oracle);
* ``verify_supervisor`` — the bitset reachability kernel
  (``repro/automata/symbolic.py``).

Hard assertions: the two reports must be **byte-identical** (same
``to_dict()`` payload — verdicts, blocking states, violation traces) at
every size, and the kernel must be at least 10x faster at the largest
size.  Each row also times supervisor *synthesis* on both engines
(explicit oracle vs. ``engine="symbolic"``, the default used by the
design flow and the REPRO-M007 stale-bundle re-synthesis), so the
recorded baselines reflect what the analyzer actually pays.  Timings
and speedups land in ``benchmarks/results/model_check.json``.

Set ``MODEL_CHECK_QUICK=1`` to cap the sweep at the mid size (used by
``scripts/check.sh`` so the pre-merge gate stays fast); the 10x
assertion then relaxes to 3x — small models cannot amortize encoding.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR

FULL_SIZES = [(2, 3), (4, 3), (7, 3)]
QUICK_SIZES = [(2, 3), (4, 3)]

# Speedup floors: python-set walking has low constants on tiny models,
# so only the largest size carries the headline requirement.
FULL_MIN_SPEEDUP = 10.0
QUICK_MIN_SPEEDUP = 3.0


def _verify_both(plant, supervisor):
    from repro.automata.verification import (
        explicit_verify_supervisor,
        verify_supervisor,
    )

    # Warm numpy dispatch paths before timing the kernel.
    verify_supervisor(plant, supervisor)
    start = time.perf_counter()
    symbolic = verify_supervisor(plant, supervisor)
    symbolic_s = time.perf_counter() - start

    start = time.perf_counter()
    explicit = explicit_verify_supervisor(plant, supervisor)
    explicit_s = time.perf_counter() - start
    return symbolic, symbolic_s, explicit, explicit_s


def _synthesize_both(plant, spec):
    from repro.automata import (
        explicit_synthesize_supervisor,
        synthesize_supervisor,
    )

    # Warm the encoding memo and numpy dispatch before timing.
    synthesize_supervisor(plant, spec, engine="symbolic")
    start = time.perf_counter()
    symbolic = synthesize_supervisor(plant, spec, engine="symbolic")
    symbolic_s = time.perf_counter() - start
    start = time.perf_counter()
    explicit = explicit_synthesize_supervisor(plant, spec)
    explicit_s = time.perf_counter() - start
    assert len(symbolic.supervisor) == len(explicit.supervisor)
    return symbolic_s, explicit_s


def test_model_check_speedup(save_result):
    from repro.core.scalable import (
        build_scalable_supervisor,
        scalable_alphabet,
        scalable_counter_plant,
        scalable_specification,
    )

    quick = bool(os.environ.get("MODEL_CHECK_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    min_speedup = QUICK_MIN_SPEEDUP if quick else FULL_MIN_SPEEDUP

    rows = []
    for n_clusters, levels in sizes:
        sigma = scalable_alphabet(n_clusters)
        plant = scalable_counter_plant(n_clusters, levels, sigma)
        supervisor = build_scalable_supervisor(n_clusters).supervisor
        symbolic, symbolic_s, explicit, explicit_s = _verify_both(
            plant, supervisor
        )
        synth_symbolic_s, synth_explicit_s = _synthesize_both(
            plant, scalable_specification(n_clusters, sigma)
        )

        # The kernel must agree with the explicit oracle exactly —
        # verdicts, blocking-state names, violation traces, the lot.
        assert symbolic.to_dict() == explicit.to_dict()
        assert symbolic.verified

        rows.append(
            {
                "n_clusters": n_clusters,
                "budget_levels": levels,
                "plant_states": len(plant.states),
                "plant_transitions": plant.n_transitions,
                "supervisor_states": len(supervisor.states),
                "explicit_s": round(explicit_s, 4),
                "symbolic_s": round(symbolic_s, 4),
                "speedup": round(explicit_s / symbolic_s, 2),
                "synthesis_engine": "symbolic",
                "synth_explicit_s": round(synth_explicit_s, 4),
                "synth_symbolic_s": round(synth_symbolic_s, 4),
                "synth_speedup": round(
                    synth_explicit_s / synth_symbolic_s, 2
                ),
            }
        )

    largest = rows[-1]
    assert largest["speedup"] >= min_speedup, (
        f"bitset kernel only {largest['speedup']}x faster than explicit "
        f"at {largest['plant_states']} plant states (need "
        f">= {min_speedup}x)"
    )

    payload = {"quick": quick, "sizes": rows}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "model_check.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        "explicit vs bitset supervisor verification and synthesis "
        "(byte-identical reports/bundles)",
        f"{'plant states':>13} {'verify expl':>12} {'verify symb':>12} "
        f"{'synth expl':>11} {'synth symb':>11} {'synth spd':>10}",
    ]
    lines += [
        f"{row['plant_states']:>13} {row['explicit_s']:>11.3f}s "
        f"{row['symbolic_s']:>11.3f}s {row['synth_explicit_s']:>10.3f}s "
        f"{row['synth_symbolic_s']:>10.3f}s {row['synth_speedup']:>9.1f}x"
        for row in rows
    ]
    save_result("model_check", "\n".join(lines))
