"""Table 1: coverage of resource-management approaches."""

from repro.experiments.tables import format_table1, table1_rows


def test_table1(benchmark, save_result):
    rows = benchmark(table1_rows)
    assert len(rows) == 5
    spectr = rows[-1]
    assert all(c == "Y" for c in spectr.coverage)
    save_result("table1", format_table1())
