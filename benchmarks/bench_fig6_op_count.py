"""Figure 6: multiply-add operations per LQG invocation vs core count.

Reproduced shape: the monolithic controller's cost explodes
super-linearly with core count, the model order becomes insignificant
once cores >> order, and SPECTR's modular alternative stays linear in
the number of clusters.
"""

from repro.experiments.figures import fig6_operation_count


def test_fig6(benchmark, save_result):
    result = benchmark(fig6_operation_count)
    for order in result.orders:
        counts = [result.operations[order][c] for c in result.core_counts]
        assert counts == sorted(counts)
        assert counts[-1] > 100 * counts[0]
    # order insignificant at high core counts
    assert (
        result.operations[8][70] / result.operations[2][70] < 1.2
    )
    # modular SPECTR orders of magnitude cheaper
    assert result.spectr_ops[70] * 1000 < result.operations[2][70]
    save_result("fig6_operation_count", result.format_text())
