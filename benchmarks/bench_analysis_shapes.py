"""Wall-clock benchmark of the shapes analyzer's incremental cache:
cold scan (every module parsed, contract-collected, interpreted and
ABI-checked) vs. warm scan (every module's findings replayed from the
content-hash cache) vs. a one-module edit (exactly one module
rescanned).

Writes ``benchmarks/results/analysis_shapes.json`` with the raw
timings and scan statistics so analyzer perf regressions are diffable
across runs.  The speedup itself is hardware noise on a loaded box, so
the hard assertions are the *rescan counts* — the shapes tier caches
findings, so a warm scan must do no interpretation at all — plus
report equivalence between cached and uncached runs.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

from conftest import RESULTS_DIR

SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"


def _scan(cache_dir, baseline):
    from repro.analysis.flow.baseline import Baseline
    from repro.analysis.shapes import analyze_project, make_cache

    cache = make_cache(cache_dir) if cache_dir is not None else None
    loaded = Baseline.load(baseline) if baseline is not None else None
    start = time.perf_counter()
    result = analyze_project([SRC_REPRO], cache=cache, baseline=loaded)
    return result, time.perf_counter() - start


def test_incremental_shapes_scan(tmp_path, save_result):
    baseline = SRC_REPRO.parents[1] / "shapes-baseline.json"
    cache_dir = tmp_path / "analysis-cache"

    cold, cold_s = _scan(cache_dir, baseline)
    warm, warm_s = _scan(cache_dir, baseline)

    # Edit one module (copy the tree so the repo itself stays pristine).
    edited_root = tmp_path / "edited" / "repro"
    shutil.copytree(SRC_REPRO, edited_root)
    edited_cache = tmp_path / "edited-cache"

    from repro.analysis.shapes import analyze_project, make_cache

    analyze_project([edited_root], cache=make_cache(edited_cache))
    target = edited_root / "platform" / "fleet.py"
    target.write_text(
        target.read_text(encoding="utf-8") + "\n# touched by benchmark\n",
        encoding="utf-8",
    )
    start = time.perf_counter()
    touched = analyze_project([edited_root], cache=make_cache(edited_cache))
    touched_s = time.perf_counter() - start

    uncached, uncached_s = _scan(None, baseline)

    # -- correctness gates (machine-independent) -----------------------
    assert cold.stats.rescanned == cold.stats.modules_total
    assert warm.stats.rescanned == 0, "warm scan re-interpreted modules"
    assert warm.stats.cache_hits == warm.stats.modules_total
    assert touched.stats.rescanned == 1, "edit should rescan exactly 1 module"
    assert touched.stats.cache_hits == touched.stats.modules_total - 1
    assert list(warm.report) == list(uncached.report)
    assert warm.report.ok, warm.report.format_text()

    payload = {
        "modules": cold.stats.modules_total,
        "contracted_modules": cold.stats.contracted_modules,
        "cold_scan_s": round(cold_s, 4),
        "warm_scan_s": round(warm_s, 4),
        "one_edit_scan_s": round(touched_s, 4),
        "uncached_scan_s": round(uncached_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "warm_rescanned": warm.stats.rescanned,
        "one_edit_rescanned": touched.stats.rescanned,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "analysis_shapes.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    save_result(
        "analysis_shapes",
        "\n".join(
            [
                "shapes analyzer incremental scan (src/repro)",
                f"  modules={payload['modules']} "
                f"contracted={payload['contracted_modules']}",
                f"  cold   {payload['cold_scan_s']*1000:8.1f} ms "
                f"(rescanned {cold.stats.rescanned})",
                f"  warm   {payload['warm_scan_s']*1000:8.1f} ms "
                f"(rescanned {payload['warm_rescanned']}, "
                f"speedup {payload['warm_speedup']}x)",
                f"  1-edit {payload['one_edit_scan_s']*1000:8.1f} ms "
                f"(rescanned {payload['one_edit_rescanned']})",
            ]
        ),
    )
