"""Figure 14: steady-state error, all 8 benchmarks x 4 managers x 3 phases.

Reproduced shape (Section 5.1.2): in the Safe phase SPECTR tracks QoS
like MM-Perf while the power trackers overshoot; in the Disturbance
phase MM-Perf exceeds the TDP on every benchmark while SPECTR obeys it;
canneal's serial phase keeps every manager away from the phase-1 QoS
reference.
"""

from repro.experiments.figures import fig14_steady_state


def test_fig14(benchmark, save_result):
    result = benchmark.pedantic(fig14_steady_state, rounds=1, iterations=1)
    qos_p1 = result.errors[0]["qos"]
    power_p3 = result.errors[2]["power"]

    # Phase 1: SPECTR meets QoS within 10% on most benchmarks.
    spectr_ok = sum(
        1 for w in result.workloads if abs(qos_p1[w]["SPECTR"]) < 10.0
    )
    assert spectr_ok >= len(result.workloads) - 2

    # canneal: nobody meets the phase-1 QoS reference (serial phase).
    assert all(
        qos_p1["canneal"][m] > 5.0 for m in result.managers
    )

    # Phase 3: MM-Perf exceeds the TDP (negative error) on every
    # benchmark; SPECTR never does by more than a whisker.
    assert all(power_p3[w]["MM-Perf"] < -5.0 for w in result.workloads)
    assert all(power_p3[w]["SPECTR"] > -5.0 for w in result.workloads)

    save_result("fig14_steady_state_error", result.format_text())
