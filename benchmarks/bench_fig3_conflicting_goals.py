"""Figure 3: fixed-priority 2x2 MIMOs cannot serve changing goals.

Reproduced shape: the FPS-oriented controller pins FPS at its reference
while power floats off-reference; the power-oriented controller pins
power while FPS falls short.  Neither adapts — the motivation for a
supervisor.
"""

import pytest

from repro.experiments.figures import fig3_conflicting_goals


def test_fig3(benchmark, save_result):
    result = benchmark.pedantic(
        fig3_conflicting_goals, rounds=1, iterations=1
    )
    fps_run = result.fps_oriented
    pow_run = result.power_oriented
    assert fps_run["fps"][-40:].mean() == pytest.approx(
        result.fps_reference, rel=0.06
    )
    assert pow_run["power"][-40:].mean() == pytest.approx(
        result.power_reference, rel=0.10
    )
    assert pow_run["fps"][-40:].mean() < result.fps_reference - 5.0
    assert fps_run["power"][-40:].mean() > result.power_reference + 0.5
    save_result("fig3_conflicting_goals", result.format_text())
