"""Figure 12: supervisor synthesis for the Exynos case study.

Reproduced shape: the composed plant/spec synthesize to a verified
(nonblocking + controllable) supervisor, with the risky mild-capping
branch pruned for controllability.
"""

from repro.core.plant_model import case_study_plant
from repro.core.specification import case_study_specification
from repro.core.synthesis_flow import synthesize_and_verify


def test_fig12(benchmark, save_result):
    plant = case_study_plant()
    spec = case_study_specification()
    result = benchmark(synthesize_and_verify, plant, spec)
    assert result.verified
    assert len(result.synthesis.removed_uncontrollable) > 0
    save_result(
        "fig12_synthesis",
        "Figure 12 - supervisor synthesis\n" + result.summary(),
    )
