"""Cost of the supervision layer: journal appends and resume skips.

Quantifies what the fault-tolerant campaign runtime charges a healthy
run: the per-job price of durable (fsync'd) journal appends on a serial
campaign of cheap jobs, the raw append rate of the journal itself, and
the speed of a resumed run that serves every job from the journal +
cache instead of recomputing.  Writes
``benchmarks/results/supervision.json`` so the overhead is diffable
across runs.

Wall-clock bounds are deliberately loose (fsync latency is storage
hardware, not code); the byte-identity of journaled vs bare results is
asserted unconditionally.
"""

from __future__ import annotations

import json
import time

from conftest import RESULTS_DIR

JOB_COUNT = 200
APPEND_COUNT = 200
# An fsync per append on spinning rust is ~10 ms; anything above this
# means the journal started doing per-append work beyond one write+sync.
APPEND_BUDGET_MS = 50.0


def _jobs():
    from repro.exec.job import ScenarioJob

    return [
        ScenarioJob(
            manager="SPECTR",
            runner="repro.exec.engine._echo_runner",
            overrides=(("tag", str(index)),),
            label=f"bench-{index:04d}",
        )
        for index in range(JOB_COUNT)
    ]


def _timed_run(engine, jobs):
    start = time.perf_counter()
    records = engine.run(jobs)
    return records, time.perf_counter() - start


def test_supervision_overhead(tmp_path, save_result):
    from repro.exec.cache import ResultCache
    from repro.exec.engine import ExperimentEngine
    from repro.exec.supervision import RunJournal

    jobs = _jobs()

    bare_engine = ExperimentEngine(max_workers=1, prime_artifacts=False)
    bare, bare_s = _timed_run(bare_engine, jobs)

    cache = ResultCache(tmp_path / "cache")
    journal = RunJournal(tmp_path / "journal.jsonl", salt=cache.salt)
    supervised_engine = ExperimentEngine(
        max_workers=1,
        cache=cache,
        journal=journal,
        prime_artifacts=False,
    )
    supervised, supervised_s = _timed_run(supervised_engine, jobs)

    # Resume on the populated journal + cache: nothing recomputes.
    resumed_engine = ExperimentEngine(
        max_workers=1,
        cache=cache,
        journal=journal,
        prime_artifacts=False,
    )
    resumed, resumed_s = _timed_run(resumed_engine, jobs)
    assert all(r.mode in ("cache", "journal") for r in resumed)

    # Supervision must not change a single result byte.
    assert [r.result for r in bare] == [r.result for r in supervised]
    assert [r.result for r in bare] == [r.result for r in resumed]

    # Raw append rate of the durable journal.
    raw = RunJournal(tmp_path / "raw.jsonl", salt="bench")
    start = time.perf_counter()
    for index in range(APPEND_COUNT):
        raw.record(f"{index:064x}", "done", attempts=1, duration_s=0.0)
    append_ms = (time.perf_counter() - start) / APPEND_COUNT * 1e3
    assert append_ms < APPEND_BUDGET_MS, (
        f"journal append costs {append_ms:.1f} ms; "
        f"budget is {APPEND_BUDGET_MS:.0f} ms"
    )
    assert len(raw.load()) == APPEND_COUNT

    overhead_ms = max(0.0, supervised_s - bare_s) / JOB_COUNT * 1e3
    payload = {
        "jobs": JOB_COUNT,
        "bare_s": round(bare_s, 4),
        "supervised_s": round(supervised_s, 4),
        "resumed_s": round(resumed_s, 4),
        "overhead_ms_per_job": round(overhead_ms, 3),
        "journal_append_ms": round(append_ms, 3),
        "journal_append_budget_ms": APPEND_BUDGET_MS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "supervision.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    save_result(
        "supervision",
        f"Campaign supervision overhead ({JOB_COUNT} cheap jobs)\n"
        f"  bare serial run:        {bare_s:8.3f} s\n"
        f"  journal + cache run:    {supervised_s:8.3f} s  "
        f"({overhead_ms:.2f} ms/job supervision tax)\n"
        f"  resumed (all skipped):  {resumed_s:8.3f} s\n"
        f"  raw journal append:     {append_ms:8.3f} ms "
        f"(budget {APPEND_BUDGET_MS:.0f} ms)\n"
        "  journaled results byte-identical to the bare run",
    )
