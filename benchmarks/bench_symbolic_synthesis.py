"""Explicit vs. symbolic supremal synthesis on scaled plant families.

The Ramadge-Wonham fixpoint (``automata/synthesis.py``) walks Python
sets state-by-state; the symbolic engine
(``automata/symbolic_synthesis.py``) runs the same
trim/uncontrollable-pruning rounds as whole-array operations on the
bitset kernel.  This bench runs both engines over the scalable platform
family and asserts:

* the result bundles are **byte-identical** (same ``automaton_to_dict``
  payload, same ``removed_*`` attribution, same round count) at every
  size;
* the symbolic engine is at least 20x faster at the largest size
  (7 clusters, ~61k product states);
* a 10-cluster scale point — supervisors over millions of product
  states, synthesized from ``encode_composition`` without ever
  materializing the plant as an ``Automaton`` — completes symbolically
  while the explicit engine cannot finish inside the benchmark budget
  (probed in a subprocess with a hard timeout).

Timings, scale points and the explicit-DNF probe land in
``benchmarks/results/symbolic_synthesis.json``.

Set ``SYNTH_QUICK=1`` to cap the sweep at the mid size and skip the
scale points (used by ``scripts/check.sh``); the 20x assertion then
relaxes to 3x — small models cannot amortize encoding.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from conftest import RESULTS_DIR

FULL_SIZES = [(2, 3), (4, 3), (7, 3)]
QUICK_SIZES = [(2, 3), (4, 3)]

# Speedup floors: the explicit engine has low constants on tiny models,
# so only the largest size carries the headline requirement.
FULL_MIN_SPEEDUP = 20.0
QUICK_MIN_SPEEDUP = 3.0

# Wall-clock budget for the explicit engine at the 10-cluster scale
# point.  The symbolic engine finishes the same problem in seconds;
# explicit composition alone (millions of dict entries) blows through
# this budget before synthesis even starts.
EXPLICIT_BUDGET_S = 60.0

SCALE_POINTS = [
    {"model": "scalable", "n_clusters": 10, "levels": 3},
    {"model": "fleet", "n_clusters": 10, "levels": 2},
]

_EXPLICIT_PROBE = """
import sys
from repro.automata import explicit_synthesize_supervisor
from repro.core.scalable import (
    fleet_alphabet,
    fleet_counter_plant,
    fleet_specification,
    scalable_alphabet,
    scalable_counter_plant,
    scalable_specification,
)

model, n_clusters, levels = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
if model == "fleet":
    sigma = fleet_alphabet(n_clusters)
    plant = fleet_counter_plant(n_clusters, levels, sigma)
    spec = fleet_specification(n_clusters, sigma)
else:
    sigma = scalable_alphabet(n_clusters)
    plant = scalable_counter_plant(n_clusters, levels, sigma)
    spec = scalable_specification(n_clusters, sigma)
result = explicit_synthesize_supervisor(plant, spec)
print(len(result.supervisor))
"""


def _assert_identical(symbolic, explicit):
    from repro.automata import automaton_to_dict

    assert automaton_to_dict(symbolic.supervisor) == automaton_to_dict(
        explicit.supervisor
    )
    assert symbolic.removed_uncontrollable == explicit.removed_uncontrollable
    assert symbolic.removed_blocking == explicit.removed_blocking
    assert symbolic.iterations == explicit.iterations
    assert symbolic.state_map == explicit.state_map


def _synthesize_both(plant, spec):
    from repro.automata import (
        explicit_synthesize_supervisor,
        synthesize_supervisor,
    )

    # Warm the encoding memo and numpy dispatch before timing.
    synthesize_supervisor(plant, spec, engine="symbolic")
    start = time.perf_counter()
    symbolic = synthesize_supervisor(plant, spec, engine="symbolic")
    symbolic_s = time.perf_counter() - start

    start = time.perf_counter()
    explicit = explicit_synthesize_supervisor(plant, spec)
    explicit_s = time.perf_counter() - start
    return symbolic, symbolic_s, explicit, explicit_s


def _size_row(n_clusters, levels, plant, symbolic, symbolic_s, explicit_s):
    return {
        "n_clusters": n_clusters,
        "budget_levels": levels,
        "plant_states": len(plant.states),
        "plant_transitions": plant.n_transitions,
        "supervisor_states": len(symbolic.supervisor),
        "removed_uncontrollable": len(symbolic.removed_uncontrollable),
        "removed_blocking": len(symbolic.removed_blocking),
        "iterations": symbolic.iterations,
        "explicit_s": round(explicit_s, 4),
        "symbolic_s": round(symbolic_s, 4),
        "speedup": round(explicit_s / symbolic_s, 2),
    }


def _scale_components(model, n_clusters, levels):
    from repro.core.scalable import (
        fleet_alphabet,
        fleet_plant_components,
        fleet_specification,
        scalable_alphabet,
        scalable_plant_components,
        scalable_specification,
    )

    if model == "fleet":
        sigma = fleet_alphabet(n_clusters)
        return (
            fleet_plant_components(n_clusters, levels, sigma),
            fleet_specification(n_clusters, sigma),
        )
    sigma = scalable_alphabet(n_clusters)
    return (
        scalable_plant_components(n_clusters, levels, sigma),
        scalable_specification(n_clusters, sigma),
    )


def _probe_explicit(model, n_clusters, levels):
    """Run the explicit engine in a subprocess under a hard budget."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    start = time.perf_counter()
    try:
        completed = subprocess.run(
            [
                sys.executable,
                "-c",
                _EXPLICIT_PROBE,
                model,
                str(n_clusters),
                str(levels),
            ],
            capture_output=True,
            timeout=EXPLICIT_BUDGET_S,
            env=env,
            cwd=repo_root,
        )
    except subprocess.TimeoutExpired:
        return {"status": "timeout", "budget_s": EXPLICIT_BUDGET_S}
    elapsed = time.perf_counter() - start
    if completed.returncode != 0:
        # MemoryError or similar — still a DNF for the record.
        return {
            "status": "error",
            "budget_s": EXPLICIT_BUDGET_S,
            "elapsed_s": round(elapsed, 2),
        }
    return {
        "status": "completed",
        "budget_s": EXPLICIT_BUDGET_S,
        "elapsed_s": round(elapsed, 2),
    }


def _run_scale_point(point):
    from repro.automata import (
        encode_automaton,
        encode_composition,
        supremal_fixpoint,
    )

    components, spec = _scale_components(
        point["model"], point["n_clusters"], point["levels"]
    )
    start = time.perf_counter()
    plant_enc = encode_composition(components)
    encode_s = time.perf_counter() - start

    start = time.perf_counter()
    fixpoint = supremal_fixpoint(plant_enc, encode_automaton(spec))
    synthesize_s = time.perf_counter() - start

    assert not fixpoint.is_empty, (
        f"{point['model']}-{point['n_clusters']} scale point synthesized "
        "an empty supervisor"
    )
    return {
        **point,
        "plant_index_space": plant_enc.n_states * len(spec),
        "reachable_pairs": int(fixpoint.reachable.sum()),
        "supervisor_states": fixpoint.n_supervisor_states,
        "removed_uncontrollable": int(fixpoint.removed_uncontrollable.sum()),
        "removed_blocking": int(fixpoint.removed_blocking.sum()),
        "iterations": fixpoint.iterations,
        "encode_s": round(encode_s, 4),
        "symbolic_s": round(synthesize_s, 4),
        "explicit": _probe_explicit(
            point["model"], point["n_clusters"], point["levels"]
        ),
    }


def test_symbolic_synthesis_speedup(save_result):
    from repro.core.scalable import (
        fleet_alphabet,
        fleet_counter_plant,
        fleet_specification,
        scalable_alphabet,
        scalable_counter_plant,
        scalable_specification,
    )

    quick = bool(os.environ.get("SYNTH_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    min_speedup = QUICK_MIN_SPEEDUP if quick else FULL_MIN_SPEEDUP

    rows = []
    for n_clusters, levels in sizes:
        sigma = scalable_alphabet(n_clusters)
        plant = scalable_counter_plant(n_clusters, levels, sigma)
        spec = scalable_specification(n_clusters, sigma)
        symbolic, symbolic_s, explicit, explicit_s = _synthesize_both(
            plant, spec
        )
        _assert_identical(symbolic, explicit)
        rows.append(
            _size_row(n_clusters, levels, plant, symbolic, symbolic_s, explicit_s)
        )

    largest = rows[-1]
    assert largest["speedup"] >= min_speedup, (
        f"symbolic synthesis only {largest['speedup']}x faster than "
        f"explicit at {largest['plant_states']} plant states (need "
        f">= {min_speedup}x)"
    )

    # Fleet family sanity at small scale: engines agree on the
    # four-layer fleet model too, quick and full alike.
    fleet_sigma = fleet_alphabet(2)
    fleet_plant = fleet_counter_plant(2, 2, fleet_sigma)
    fleet_spec = fleet_specification(2, fleet_sigma)
    fsym, fsym_s, fexp, fexp_s = _synthesize_both(fleet_plant, fleet_spec)
    _assert_identical(fsym, fexp)
    fleet_row = _size_row(2, 2, fleet_plant, fsym, fsym_s, fexp_s)
    fleet_row["model"] = "fleet"

    scale = [] if quick else [_run_scale_point(p) for p in SCALE_POINTS]
    for point in scale:
        assert point["explicit"]["status"] != "completed", (
            f"explicit engine unexpectedly finished the "
            f"{point['model']}-{point['n_clusters']} scale point inside "
            f"{EXPLICIT_BUDGET_S}s — raise the scale point"
        )

    payload = {"quick": quick, "sizes": rows, "fleet": fleet_row, "scale": scale}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "symbolic_synthesis.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        "explicit vs symbolic supremal synthesis (byte-identical bundles)",
        f"{'plant states':>13} {'supervisor':>11} {'explicit':>10} "
        f"{'symbolic':>10} {'speedup':>8}",
    ]
    lines += [
        f"{row['plant_states']:>13} {row['supervisor_states']:>11} "
        f"{row['explicit_s']:>9.3f}s {row['symbolic_s']:>9.3f}s "
        f"{row['speedup']:>7.1f}x"
        for row in rows + [fleet_row]
    ]
    if scale:
        lines.append("")
        lines.append(
            "scale points (encode_composition + supremal_fixpoint; "
            f"explicit probed under {EXPLICIT_BUDGET_S:.0f}s budget)"
        )
        lines += [
            f"  {p['model']}-{p['n_clusters']}x{p['levels']}: "
            f"{p['plant_index_space']:,} index space -> "
            f"{p['supervisor_states']:,} supervisor states in "
            f"{p['encode_s'] + p['symbolic_s']:.1f}s "
            f"(explicit: {p['explicit']['status']})"
            for p in scale
        ]
    save_result("symbolic_synthesis", "\n".join(lines))
