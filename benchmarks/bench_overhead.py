"""Section 5.3: runtime overhead of the controllers and supervisor.

Reproduced shape: the supervisor invocation is far cheaper than a MIMO
controller step, and the gain switch is effectively free (a pointer
swap).  Absolute times are host-dependent; the paper measured 2.5 ms
per MIMO step and ~30 us per supervisor invocation on the A7 cluster.
"""

from repro.experiments.figures import identified_systems, overhead_measurements
from repro.managers.base import ManagerGoals
from repro.managers.spectr import SPECTRManager
from repro.platform.soc import ExynosSoC
from repro.workloads import x264


def test_overhead_summary(benchmark, save_result):
    result = benchmark.pedantic(overhead_measurements, rounds=1, iterations=1)
    assert result.gain_switch_us < result.mimo_step_us
    assert result.supervisor_invocation_us < 20 * result.mimo_step_us
    save_result("overhead", result.format_text())


def test_mimo_step_wallclock(benchmark):
    systems = identified_systems()
    soc = ExynosSoC(qos_app=x264())
    manager = SPECTRManager(
        soc,
        ManagerGoals(60.0, 5.0),
        big_system=systems.big,
        little_system=systems.little,
    )
    telemetry = soc.step()
    benchmark(
        manager.big_mimo.step, telemetry.qos_rate, telemetry.big.power_w
    )


def test_supervisor_invocation_wallclock(benchmark):
    systems = identified_systems()
    soc = ExynosSoC(qos_app=x264())
    manager = SPECTRManager(
        soc,
        ManagerGoals(60.0, 5.0),
        big_system=systems.big,
        little_system=systems.little,
    )
    telemetry = soc.step()
    manager._telemetry = telemetry
    benchmark(manager._supervise, telemetry)


def test_full_control_interval_wallclock(benchmark):
    """One complete SPECTR control interval (both MIMOs + supervisor)."""
    systems = identified_systems()
    soc = ExynosSoC(qos_app=x264())
    manager = SPECTRManager(
        soc,
        ManagerGoals(60.0, 5.0),
        big_system=systems.big,
        little_system=systems.little,
    )

    def interval():
        telemetry = soc.step()
        manager.control(telemetry)

    benchmark(interval)
