"""Figure 5: identified-model accuracy, 2x2 vs 10x10.

Reproduced shape: on cross-validation data the small cluster-scoped
model predicts its outputs better than the monolithic per-core model.
"""

from repro.experiments.figures import fig5_model_accuracy


def test_fig5(benchmark, save_result):
    result = benchmark.pedantic(fig5_model_accuracy, rounds=1, iterations=1)
    assert result.small_fit_percent > result.large_fit_percent
    save_result("fig5_model_accuracy", result.format_text())
