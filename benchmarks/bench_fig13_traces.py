"""Figure 13: FPS and power traces, all four managers, x264.

Reproduced shape per phase (Section 5.1.1):
* Safe — SPECTR/MM-Perf meet the FPS reference below the budget,
  FS/MM-Pow overshoot FPS and burn the budget;
* Emergency — the power-aware managers track the lowered envelope;
* Disturbance — MM-Perf violates the TDP for the highest QoS, the
  others obey it.
"""

import pytest

from repro.experiments.figures import fig13_traces


def test_fig13(benchmark, save_result):
    result = benchmark.pedantic(fig13_traces, rounds=1, iterations=1)
    metrics = {
        name: trace.phase_metrics() for name, trace in result.traces.items()
    }
    # Phase 1 shapes.
    for name in ("SPECTR", "MM-Perf"):
        assert metrics[name][0].qos.mean == pytest.approx(60.0, rel=0.05)
        assert metrics[name][0].power.mean < 4.6
    for name in ("FS", "MM-Pow"):
        assert metrics[name][0].qos.mean > 60.0
        assert metrics[name][0].power.mean > 4.5
    # Phase 2: power-aware managers track the 3.3 W envelope.
    for name in ("SPECTR", "MM-Pow", "FS"):
        assert metrics[name][1].power.mean == pytest.approx(3.3, abs=0.45)
    # Phase 3: MM-Perf breaks TDP, the rest obey it.
    assert metrics["MM-Perf"][2].power.mean > 5.5
    for name in ("SPECTR", "MM-Pow", "FS"):
        assert metrics[name][2].power.mean < 5.4
    save_result("fig13_traces", result.format_text())
