"""Ablation benches for SPECTR's design choices (DESIGN.md).

Quantifies what each supervisory mechanism buys on the three-phase
x264 scenario:

* gain scheduling is load-bearing: without it the manager violates the
  TDP through essentially the whole disturbance phase;
* reference regulation trims the residual violations and the emergency
  response;
* the supervisor period trades responsiveness for (already negligible)
  overhead — the paper's 2x choice is on the knee.
"""

from repro.experiments.ablations import (
    ablate_mechanisms,
    ablate_supervisor_period,
    tdp_violation_fraction,
)


def test_mechanism_ablation(benchmark, save_result):
    result = benchmark.pedantic(ablate_mechanisms, rounds=1, iterations=1)
    full = result.traces["SPECTR (full)"]
    no_gs = result.traces["no gain scheduling"]
    no_rr = result.traces["no reference regulation"]

    # Gain scheduling is what enforces the TDP under disturbance.
    assert tdp_violation_fraction(full, 2) < 0.25
    assert tdp_violation_fraction(no_gs, 2) > 0.8
    # Reference regulation alone is not enough either way, but it
    # improves on full-minus-it.
    assert tdp_violation_fraction(no_rr, 2) >= tdp_violation_fraction(
        full, 2
    )
    text = result.format_text() + "\n\nP3 TDP-violation fraction:\n" + "\n".join(
        f"  {name:28s} {tdp_violation_fraction(trace, 2):.2f}"
        for name, trace in result.traces.items()
    )
    save_result("ablation_mechanisms", text)


def test_supervisor_period_ablation(benchmark, save_result):
    result = benchmark.pedantic(
        ablate_supervisor_period, rounds=1, iterations=1
    )
    # All periods keep phase 1 healthy...
    for trace in result.traces.values():
        qos, _ = [
            (pm.qos.mean, pm.power.mean) for pm in trace.phase_metrics()
        ][0]
        assert qos > 55.0
    # ...and the paper's 100 ms choice is as good as 50 ms on P3 power.
    p2 = result.traces["period 2 (100 ms)"]
    p10 = result.traces["period 10 (500 ms)"]
    assert tdp_violation_fraction(p2, 2) <= tdp_violation_fraction(
        p10, 2
    ) + 0.1
    save_result("ablation_supervisor_period", result.format_text())
