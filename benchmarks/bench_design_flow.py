"""Section 6 / Figure 16: the nine-step SPECTR design flow.

Reproduced shape: the flow runs end-to-end — supervisor synthesis and
verification, per-subsystem identification passing the R^2 >= 80% gate,
gain generation, robustness verification under the 50%/30% guardbands,
and a closed-loop functional check.
"""

from repro.experiments.design_flow import run_design_flow


def test_design_flow(benchmark, save_result):
    report = benchmark.pedantic(
        run_design_flow,
        kwargs={"closed_loop_check": False},
        rounds=1,
        iterations=1,
    )
    assert report.succeeded
    full = run_design_flow()  # include the closed-loop check in output
    assert full.succeeded
    save_result("design_flow", full.format_text())
