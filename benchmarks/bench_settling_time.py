"""Section 5.1.1: settling time after the Emergency Phase power step.

Reproduced shape: the 4x2 FS controller settles the chip power slower
than SPECTR's per-cluster 2x2s (paper: 2.07 s vs 1.28 s).
"""

from repro.experiments.figures import settling_time_comparison


def test_settling_time(benchmark, save_result):
    result = benchmark.pedantic(
        settling_time_comparison, rounds=1, iterations=1
    )
    assert result.settling_times_s["FS"] > result.settling_times_s["SPECTR"]
    assert result.settling_times_s["SPECTR"] < 3.0
    save_result("settling_time", result.format_text())
