"""Figure 15: autocorrelation of identification residuals by model size.

Reproduced shape: residual whiteness degrades from the 2x2 cluster
model through the 4x2 full-system model to the 10x10 per-core model.
"""

from repro.control.residuals import whiteness_score
from repro.experiments.figures import (
    fig15_residual_autocorrelation,
    identified_systems,
)


def test_fig15(benchmark, save_result):
    result = benchmark(fig15_residual_autocorrelation)
    systems = identified_systems(with_percore=True)
    small = whiteness_score(systems.big.validation_residuals)
    mid = whiteness_score(systems.full.validation_residuals)
    large = whiteness_score(systems.percore.validation_residuals)
    assert small > large
    assert small >= mid >= large
    # Excursions beyond the confidence interval grow with system size.
    small_exc = max(a.max_excursion for a in result.analyses["big-2x2"])
    large_exc = max(
        a.max_excursion for a in result.analyses["percore-10x10"]
    )
    assert large_exc > small_exc
    save_result("fig15_residual_autocorr", result.format_text())
