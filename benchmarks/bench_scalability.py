"""Scalability bench: SPECTR vs a monolithic MIMO as clusters grow.

The quantitative backbone of the paper's scalability claim (Sections
2.3, 3.1, 5.2): as the platform grows,

* the synthesized supervisor's *state count stays constant* and its
  transition count grows only linearly;
* the per-interval controller work grows linearly (one 2x2 MIMO per
  cluster) versus the monolithic MIMO's polynomial blow-up;
* the closed loop still meets its goals — demonstrated here on an
  8-cluster platform under heavy background load.
"""

import numpy as np

from repro.control.complexity import (
    adaptive_invocation_operations,
    dimensions_for_cores,
    spectr_operations,
)
from repro.core.scalable import build_scalable_supervisor
from repro.managers.base import ManagerGoals
from repro.managers.scalable import ScalableSPECTR
from repro.experiments.figures import identified_systems
from repro.platform.manycore import ManyCoreSoC
from repro.platform.soc import SoCConfig
from repro.workloads import BackgroundTask, x264

CLUSTER_COUNTS = (2, 4, 8, 16)


def test_supervisor_size_scaling(benchmark, save_result):
    results = {
        n: build_scalable_supervisor(n) for n in CLUSTER_COUNTS
    }
    benchmark(build_scalable_supervisor, CLUSTER_COUNTS[-1])

    states = [len(results[n].supervisor) for n in CLUSTER_COUNTS]
    transitions = [
        len(results[n].supervisor.transitions) for n in CLUSTER_COUNTS
    ]
    assert len(set(states)) == 1  # constant state count
    assert all(results[n].verified for n in CLUSTER_COUNTS)

    lines = [
        "Scalability - supervisor size vs cluster count",
        f"{'clusters':>9s}{'sup states':>12s}{'sup transitions':>17s}"
        f"{'monolithic MIMO ops':>21s}{'SPECTR ops':>12s}",
    ]
    for n in CLUSTER_COUNTS:
        cores = n * 4
        mono = adaptive_invocation_operations(
            dimensions_for_cores(cores, 2)
        )
        spectr = spectr_operations(cores, 2)
        lines.append(
            f"{n:9d}{len(results[n].supervisor):12d}"
            f"{len(results[n].supervisor.transitions):17d}"
            f"{mono:21d}{spectr:12d}"
        )
    save_result("scalability_supervisor", "\n".join(lines))


def test_eight_cluster_closed_loop(benchmark, save_result):
    """A 32-core platform: 8 clusters, 12 background tasks, 7 W TDP."""
    systems = identified_systems()

    def run():
        soc = ManyCoreSoC(
            n_little=7,
            qos_app=x264(),
            background=[BackgroundTask(f"bg{i}") for i in range(12)],
            config=SoCConfig(seed=1),
        )
        soc.clusters[0].set_frequency(1.0)
        manager = ScalableSPECTR(
            soc,
            ManagerGoals(60.0, 7.0),
            host_system=systems.big,
            little_system=systems.little,
        )
        qos, power = [], []
        for _ in range(220):
            telemetry = soc.step()
            manager.control(telemetry)
            qos.append(telemetry.qos_rate)
            power.append(telemetry.chip_power_w)
        return np.mean(qos[-60:]), np.mean(power[-60:])

    qos, power = benchmark.pedantic(run, rounds=1, iterations=1)
    assert power < 7.0 * 1.05  # obeys the TDP
    save_result(
        "scalability_closed_loop",
        "Scalability - 8-cluster (32-core) closed loop, 12 background "
        f"tasks, 7 W TDP\nQoS {qos:5.1f} FPS, chip power {power:4.2f} W "
        "(TDP obeyed)",
    )
