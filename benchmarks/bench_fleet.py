"""Wall-clock benchmark of the vectorized fleet kernel.

Measures aggregate device-steps/sec — ``N devices x T ticks / elapsed``
— for a batched ``run_fleet_scenario`` run at several fleet sizes and
compares against the scalar oracle's throughput measured in the same
process (one ``run_scenario`` call, same scenario and protocol).  The
headline number is the aggregate speedup at N=1000: one numpy op
advancing a thousand simulated SoCs amortizes the per-tick Python
overhead that dominates the scalar path.

Writes ``benchmarks/results/fleet.json`` so the speedup is diffable
across runs.  Full mode asserts the tentpole's acceptance bar: >= 100x
aggregate throughput at N=1000 for MM-Perf.  Quick mode
(``FLEET_QUICK=1``) is for CI smoke: a small fleet, no speedup
assertion — timing on a cold, loaded box is noise, but the benchmark
must still complete and emit valid JSON.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR

# The tentpole's acceptance bar, full mode only: aggregate fleet
# throughput at N=1000 vs the scalar oracle, slowest timed manager.
REQUIRED_AGGREGATE_SPEEDUP = 100.0

QUICK = os.environ.get("FLEET_QUICK", "") not in ("", "0")
FLEET_SIZES = (64,) if QUICK else (10, 100, 1000)
HEADLINE_N = FLEET_SIZES[-1]
WARMUP_RUNS = 1
TIMED_RUNS = 2 if QUICK else 3
MANAGER = "MM-Perf"


def _scenario():
    from repro.experiments.scenario import three_phase_scenario

    return three_phase_scenario(phase_duration_s=5.0)


def _scalar_steps_per_s():
    """Scalar-oracle throughput (steps/sec) on the benchmark scenario."""
    from repro.experiments.figures import (
        identified_systems,
        manager_factory,
    )
    from repro.experiments.runner import run_scenario
    from repro.workloads import x264

    scenario = _scenario()
    factory = manager_factory(MANAGER, identified_systems())

    def one_run():
        start = time.perf_counter()
        trace = run_scenario(factory, x264(), scenario, seed=2018)
        elapsed = time.perf_counter() - start
        return len(trace.times) / elapsed

    for _ in range(WARMUP_RUNS):
        one_run()
    return max(one_run() for _ in range(TIMED_RUNS))


def _fleet_steps_per_s(n_devices: int):
    """Aggregate device-steps/sec for one batched fleet run."""
    from repro.exec.job import derive_seed
    from repro.experiments.figures import identified_systems
    from repro.experiments.fleet import (
        fleet_manager_factory,
        run_fleet_scenario,
    )
    from repro.workloads import x264

    scenario = _scenario()
    factory = fleet_manager_factory(MANAGER, identified_systems())
    seeds = [derive_seed(2018, "fleet", i) for i in range(n_devices)]

    def one_run():
        start = time.perf_counter()
        trace = run_fleet_scenario(factory, x264(), scenario, seeds=seeds)
        elapsed = time.perf_counter() - start
        ticks = trace.times.shape[0]
        assert trace.n_devices == n_devices
        return ticks * n_devices / elapsed

    for _ in range(WARMUP_RUNS):
        one_run()
    return max(one_run() for _ in range(TIMED_RUNS))


def test_fleet_throughput(save_result):
    scalar = _scalar_steps_per_s()
    fleet = {n: _fleet_steps_per_s(n) for n in FLEET_SIZES}
    speedups = {n: fleet[n] / scalar for n in FLEET_SIZES}

    payload = {
        "protocol": {
            "scenario": "three_phase_scenario(phase_duration_s=5.0)",
            "steps": 300,
            "workload": "x264",
            "manager": MANAGER,
            "seed_base": 2018,
            "fleet_sizes": list(FLEET_SIZES),
            "warmup_runs": WARMUP_RUNS,
            "timed_runs": TIMED_RUNS,
            "quick_mode": QUICK,
        },
        "scalar_steps_per_s": round(scalar, 1),
        "fleet_aggregate_steps_per_s": {
            str(n): round(value, 1) for n, value in fleet.items()
        },
        "aggregate_speedup": {
            str(n): round(value, 1) for n, value in speedups.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fleet.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    lines = [
        f"Fleet kernel aggregate throughput ({MANAGER}, device-steps/sec, "
        f"best of {TIMED_RUNS} after {WARMUP_RUNS} warm-up runs)",
        f"  scalar oracle {scalar:10.1f} steps/s",
    ]
    for n in FLEET_SIZES:
        lines.append(
            f"  N={n:<6} {fleet[n]:12.1f} agg steps/s"
            f"  ({speedups[n]:.1f}x scalar)"
        )
    save_result("fleet", "\n".join(lines))

    if not QUICK:
        assert speedups[HEADLINE_N] >= REQUIRED_AGGREGATE_SPEEDUP, (
            f"fleet kernel at N={HEADLINE_N} only "
            f"{speedups[HEADLINE_N]:.1f}x the scalar oracle "
            f"(need {REQUIRED_AGGREGATE_SPEEDUP}x)"
        )
