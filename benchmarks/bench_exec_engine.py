"""Wall-clock benchmark of the experiment engine's three execution
paths — serial, parallel pool, and warm cache — on a real campaign
matrix (20 fault-campaign cells, two managers).

Writes ``benchmarks/results/exec_engine.json`` with the raw timings so
perf regressions are diffable across runs.  The parallel-speedup
assertion is hardware-gated: a pool cannot beat serial execution on a
single-core box, where only the (machine-independent) warm-cache and
equivalence guarantees are asserted.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR

PARALLEL_WORKERS = 4


def _campaign_config():
    from repro.resilience.campaign import CampaignConfig

    return CampaignConfig(managers=("SPECTR", "MM-Pow"))


def _seeded_engine(tmp_path, name: str, workers: int):
    """An engine on a cache pre-seeded with design artifacts only, so
    every path pays for scenario execution, not identification."""
    from repro.exec.artifacts import ensure_design_artifacts
    from repro.exec.cache import ResultCache
    from repro.exec.engine import ExperimentEngine

    cache = ResultCache(tmp_path / name)
    ensure_design_artifacts(cache)
    return ExperimentEngine(max_workers=workers, cache=cache)


def _timed_campaign(config, engine):
    from repro.resilience.campaign import run_campaign

    start = time.perf_counter()
    result = run_campaign(config, engine=engine)
    return result, time.perf_counter() - start


def test_engine_execution_paths(tmp_path, save_result):
    config = _campaign_config()

    serial_engine = _seeded_engine(tmp_path, "serial", workers=1)
    serial, serial_s = _timed_campaign(config, serial_engine)

    parallel_engine = _seeded_engine(
        tmp_path, "parallel", workers=PARALLEL_WORKERS
    )
    parallel, parallel_s = _timed_campaign(config, parallel_engine)

    # Warm cache: rerun on the serial engine's now-populated cache.
    warm, warm_s = _timed_campaign(config, serial_engine)
    assert all(r.cache_hit for r in serial_engine.last_records)

    # Equivalence is non-negotiable on any hardware.
    assert serial.to_json() == parallel.to_json() == warm.to_json()

    cpus = os.cpu_count() or 1
    job_count = len(serial_engine.last_records)
    warm_speedup = serial_s / warm_s
    parallel_speedup = serial_s / parallel_s

    assert warm_speedup >= 5.0, (
        f"warm cache only {warm_speedup:.1f}x faster than serial"
    )
    if cpus >= PARALLEL_WORKERS:
        assert parallel_speedup >= 2.0, (
            f"{PARALLEL_WORKERS} workers on {cpus} cores only "
            f"{parallel_speedup:.1f}x faster than serial"
        )

    payload = {
        "cpu_count": cpus,
        "parallel_workers": PARALLEL_WORKERS,
        "jobs": job_count,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "parallel_speedup": round(parallel_speedup, 2),
        "parallel_speedup_asserted": cpus >= PARALLEL_WORKERS,
        "warm_cache_speedup": round(warm_speedup, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "exec_engine.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    save_result(
        "exec_engine",
        "Experiment-engine execution paths "
        f"({job_count} campaign cells)\n"
        f"  serial (1 worker):          {serial_s:8.2f} s\n"
        f"  pool ({PARALLEL_WORKERS} workers, {cpus} cores): "
        f"{parallel_s:8.2f} s  ({parallel_speedup:.1f}x)\n"
        f"  warm cache:                 {warm_s:8.2f} s  "
        f"({warm_speedup:.0f}x)\n"
        "  all three paths produced byte-identical campaign JSON",
    )
