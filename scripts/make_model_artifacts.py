#!/usr/bin/env python
"""Regenerate the committed case-study model artifacts.

Runs the paper's full design flow (compose Exynos plant + specification,
synthesize the supremal controllable nonblocking supervisor, verify it)
and serializes the three automata to ``artifacts/case_study/`` where the
formal model analyzer (``python -m repro.analysis models``) scans them
in CI.  Re-run and commit whenever the plant or specification models
intentionally change — otherwise the analyzer's REPRO-M007 rule flags
the artifacts as stale.

Usage::

    python scripts/make_model_artifacts.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.automata.serialization import (  # noqa: E402
    automaton_to_dict,
    canonical_digest,
)
from repro.core.synthesis_flow import build_case_study_supervisor  # noqa: E402

ARTIFACT_DIR = REPO_ROOT / "artifacts" / "case_study"


def main() -> int:
    verified = build_case_study_supervisor()
    if not verified.verification.verified:
        print("refusing to write artifacts: verification failed")
        print(verified.verification.summary())
        return 1
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    models = {
        "plant": verified.plant,
        "specification": verified.specification,
        "supervisor": verified.supervisor,
    }
    for role, automaton in sorted(models.items()):
        target = ARTIFACT_DIR / f"{role}.json"
        payload = automaton_to_dict(automaton)
        target.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote {target} ({len(automaton.states)} states, "
            f"digest {canonical_digest(automaton)[:12]})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
