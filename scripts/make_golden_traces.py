#!/usr/bin/env python
"""Regenerate the golden-trace regression fixtures.

Runs every manager through the short three-phase golden scenario
(1 s phases, seed 2018) serially and writes the full trace series to
``tests/exec/fixtures/golden_traces.json``.  The regression suite
(``tests/exec/test_golden_traces.py``) asserts that serial, parallel,
and warm-cache engine runs all reproduce these values **exactly** —
JSON stores each float's shortest ``repr``, which round-trips float64
losslessly, so the comparison is bit-for-bit.

Only rerun this script when the simulation or controllers intentionally
change behaviour; commit the regenerated fixture with that change.

Usage::

    python scripts/make_golden_traces.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec.engine import _worker_execute  # noqa: E402
from tests.exec.golden import (  # noqa: E402
    FIXTURE_PATH,
    FLEET_FIXTURE_PATH,
    GOLDEN_MANAGERS,
    fleet_payload,
    golden_fleet_job,
    golden_job,
    trace_payload,
)


def main() -> int:
    payload = {
        "schema": "golden-traces/1",
        "scenario": "three-phase, 1.0 s phases, seed 2018",
        "managers": {},
    }
    for manager in GOLDEN_MANAGERS:
        status, trace, duration_s = _worker_execute(golden_job(manager))
        if status != "ok":
            print(trace, file=sys.stderr)
            return 1
        payload["managers"][manager] = trace_payload(trace)
        print(f"{manager}: {duration_s:.2f} s")
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {FIXTURE_PATH}")

    fleet_job = golden_fleet_job()
    status, fleet_trace, duration_s = _worker_execute(fleet_job)
    if status != "ok":
        print(fleet_trace, file=sys.stderr)
        return 1
    fleet_doc = {
        "schema": "golden-fleet/1",
        "scenario": (
            "three-phase, 1.0 s phases, seed 2018, "
            f"{fleet_job.n_devices} devices, "
            f"row {fleet_job.device_faults[0][0]} faulted"
        ),
        "fleet": fleet_payload(fleet_trace),
    }
    print(f"fleet[{fleet_job.n_devices}]: {duration_s:.2f} s")
    FLEET_FIXTURE_PATH.write_text(
        json.dumps(fleet_doc, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {FLEET_FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
