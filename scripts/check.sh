#!/usr/bin/env bash
# Pre-merge gate: tier-1 test suite + static analysis.
#
# This is the single command CI runs (see .github/workflows/ci.yml) and
# the one to run locally before pushing.  It fails if any of
#   * any tier-1 test fails,
#   * the exec-engine smoke subset (`-m exec_smoke`: job digests,
#     cache integrity, golden traces) fails — kept as a dedicated step
#     so engine regressions are identified before the longer gates run,
#   * the fleet equivalence drill with the compiled fast paths disabled
#     (REPRO_DISABLE_FUSED=1) diverges from the scalar oracle — the
#     pure-numpy fallback must stay bit-identical too,
#   * `python -m repro.analysis all` reports a non-baselined error in
#     any tier: classic (artifact defects, lint errors,
#     architecture-layer violations), flow (whole-program rules: RNG
#     provenance, picklability, hot-path purity, unit flow,
#     frozen-dataclass mutation), models (model-check rules
#     REPRO-M001..M007 on the committed formal artifacts), or shapes
#     (array contracts REPRO-S000..S005: symbolic shape/dtype abstract
#     interpretation, out=/view aliasing, ctypes ABI conformance, RNG
#     draw accounting).  The run also writes the merged
#     analysis-report.sarif plus the per-tier reports CI uploads,
#   * `python -m repro.resilience --smoke` records an invariant
#     violation (the fault-campaign smoke: SPECTR under every sensor
#     and actuator fault kind must stay on the verified envelope),
#   * `python -m repro.exec chaos --smoke` diverges (the campaign
#     runtime's own fault drill: a seeded worker-kill + hang +
#     cache-corruption storm, interrupted and resumed once, must
#     reproduce the unfaulted serial results byte-for-byte with zero
#     lost or duplicated jobs),
#   * the step-kernel benchmark (quick mode) fails to complete or to
#     emit valid JSON.  Quick mode asserts completion only — wall-clock
#     on a loaded CI box is noise; the 2x speedup gate runs in the full
#     benchmark (`python -m pytest benchmarks/bench_step_kernel.py`),
#   * the model-check benchmark (quick mode, MODEL_CHECK_QUICK=1) fails
#     its byte-identical explicit-vs-bitset report comparison or its
#     relaxed 3x speedup floor (the 10x gate runs in the full sweep:
#     `python -m pytest benchmarks/bench_model_check.py`),
#   * the fleet-kernel benchmark (quick mode, FLEET_QUICK=1) fails to
#     complete or to emit valid JSON.  Quick mode runs a small fleet
#     with no speedup assertion; the 100x aggregate-throughput gate at
#     N=1000 runs in the full benchmark
#     (`python -m pytest benchmarks/bench_fleet.py`),
#   * the symbolic-synthesis benchmark (quick mode, SYNTH_QUICK=1)
#     fails its byte-identical explicit-vs-symbolic bundle comparison
#     or its relaxed 3x speedup floor (the 20x gate and the 10-cluster
#     scale points run in the full sweep:
#     `python -m pytest benchmarks/bench_symbolic_synthesis.py`),
#   * the shapes-analyzer benchmark fails its incremental-rescan
#     invariants (warm scan rescans 0 modules, a one-module edit
#     rescans exactly 1) or fails to emit valid JSON.  Wall-clock is
#     recorded but never asserted — the rescan counts are the gate.
#
# Optional third-party linters (ruff/mypy, `pip install -e .[lint]`) run
# only when installed, so the gate works on the bare numpy toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== exec-engine smoke (serial/parallel/cache equivalence) =="
python -m pytest -x -q -m exec_smoke

echo
echo "== fleet equivalence drill without compiled fast paths =="
REPRO_DISABLE_FUSED=1 python -m pytest -x -q tests/platform/test_fleet_equivalence.py

echo
echo "== static analysis, all tiers (repro.analysis all) =="
python -m repro.analysis all --report-dir .

echo
echo "== resilience fault-campaign smoke =="
python -m repro.resilience --smoke

echo
echo "== chaos smoke (campaign-runtime fault drill) =="
python -m repro.exec chaos --smoke

echo
echo "== step-kernel benchmark (quick mode) =="
STEP_KERNEL_QUICK=1 python -m pytest -x -q benchmarks/bench_step_kernel.py
python - <<'EOF'
import json
with open("benchmarks/results/step_kernel.json") as fh:
    payload = json.load(fh)
for key in ("baseline_steps_per_s", "optimized_steps_per_s", "speedup"):
    assert key in payload, f"step_kernel.json missing {key!r}"
print("step_kernel.json is valid")
EOF

echo
echo "== model-check benchmark (quick mode) =="
MODEL_CHECK_QUICK=1 python -m pytest -x -q benchmarks/bench_model_check.py
python - <<'EOF'
import json
with open("benchmarks/results/model_check.json") as fh:
    payload = json.load(fh)
assert payload["sizes"], "model_check.json has no size rows"
for row in payload["sizes"]:
    for key in ("plant_states", "explicit_s", "symbolic_s", "speedup"):
        assert key in row, f"model_check.json row missing {key!r}"
print("model_check.json is valid")
EOF

echo
echo "== symbolic-synthesis benchmark (quick mode) =="
SYNTH_QUICK=1 python -m pytest -x -q benchmarks/bench_symbolic_synthesis.py
python - <<'EOF'
import json
with open("benchmarks/results/symbolic_synthesis.json") as fh:
    payload = json.load(fh)
assert payload["sizes"], "symbolic_synthesis.json has no size rows"
for row in payload["sizes"] + [payload["fleet"]]:
    for key in ("plant_states", "supervisor_states", "explicit_s",
                "symbolic_s", "speedup", "iterations"):
        assert key in row, f"symbolic_synthesis.json row missing {key!r}"
assert "scale" in payload, "symbolic_synthesis.json missing scale section"
print("symbolic_synthesis.json is valid")
EOF

echo
echo "== fleet-kernel benchmark (quick mode) =="
FLEET_QUICK=1 python -m pytest -x -q benchmarks/bench_fleet.py
python - <<'EOF'
import json
with open("benchmarks/results/fleet.json") as fh:
    payload = json.load(fh)
for key in (
    "scalar_steps_per_s",
    "fleet_aggregate_steps_per_s",
    "aggregate_speedup",
):
    assert key in payload, f"fleet.json missing {key!r}"
assert payload["fleet_aggregate_steps_per_s"], "fleet.json has no sizes"
print("fleet.json is valid")
EOF

echo
echo "== shapes-analyzer benchmark (incremental rescan invariants) =="
python -m pytest -x -q benchmarks/bench_analysis_shapes.py
python - <<'EOF'
import json
with open("benchmarks/results/analysis_shapes.json") as fh:
    payload = json.load(fh)
for key in ("modules", "cold_scan_s", "warm_scan_s", "warm_rescanned",
            "one_edit_rescanned"):
    assert key in payload, f"analysis_shapes.json missing {key!r}"
assert payload["warm_rescanned"] == 0, "warm scan rescanned modules"
assert payload["one_edit_rescanned"] == 1, "one edit must rescan exactly 1"
print("analysis_shapes.json is valid")
EOF

if command -v ruff >/dev/null 2>&1; then
    echo
    echo "== ruff =="
    ruff check src tests
fi
if command -v mypy >/dev/null 2>&1; then
    echo
    echo "== mypy =="
    mypy
fi

echo
echo "All checks passed."
