"""Tests for the opt-in step profiler (``repro.perf``)."""

import numpy as np
import pytest

from repro.perf import STAGES, StageStats, StepProfiler
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import x264


def make_soc(seed: int = 11) -> ExynosSoC:
    return ExynosSoC(qos_app=x264(), config=SoCConfig(seed=seed))


class TestAttachDetach:
    def test_detached_profiler_leaves_no_instance_hooks(self):
        """Zero overhead when detached: every hook is an instance
        attribute, so after detach() the objects carry none and the hot
        path runs the original class methods."""
        soc = make_soc()
        original_app = soc.qos_app
        profiler = StepProfiler().attach(soc)
        assert profiler.attached
        soc.step()

        profiler.detach()
        assert not profiler.attached
        for name in ("step", "_cluster_telemetry"):
            assert name not in soc.__dict__
        for name in ("place", "place_idle"):
            assert name not in soc.scheduler.__dict__
        assert soc.qos_app is original_app

    def test_detach_survives_external_rebinding(self):
        soc = make_soc()
        profiler = StepProfiler().attach(soc)
        replacement = lambda: None  # noqa: E731
        soc.step = replacement
        profiler.detach()
        assert soc.__dict__.get("step") is replacement

    def test_attach_manager_hooks_supervisor_when_present(self):
        class FakeManager:
            def control(self, telemetry):
                return self._supervise()

            def _supervise(self):
                return "ok"

        manager = FakeManager()
        profiler = StepProfiler()
        profiler.attach_manager(manager)
        assert manager.control(None) == "ok"
        assert profiler.stats["controller"].calls == 1
        assert profiler.stats["supervisor"].calls == 1
        profiler.detach()
        assert "control" not in manager.__dict__


class TestCounting:
    def test_stage_call_counts_per_step(self):
        soc = make_soc()
        profiler = StepProfiler().attach(soc)
        steps = 8
        for _ in range(steps):
            soc.step()
        profiler.detach()
        assert profiler.stats["step_total"].calls == steps
        assert profiler.stats["sensors"].calls == 2 * steps  # big + little
        assert profiler.stats["scheduler"].calls == steps
        assert profiler.stats["workload"].calls == steps
        assert profiler.stats["step_total"].total_s > 0.0

    def test_mean_us_handles_zero_calls(self):
        assert StageStats().mean_us == 0.0


class TestBitIdentity:
    def test_profiled_run_matches_unprofiled_run(self):
        plain = make_soc(seed=23)
        profiled = make_soc(seed=23)
        profiler = StepProfiler().attach(profiled)
        for _ in range(30):
            a = plain.step()
            b = profiled.step()
            assert a.qos_rate == b.qos_rate
            assert a.big.power_w == b.big.power_w
            assert np.array_equal(a.big.per_core_ips, b.big.per_core_ips)
            assert np.array_equal(
                a.little.per_core_ips, b.little.per_core_ips
            )
        profiler.detach()

    def test_run_after_detach_matches_never_profiled(self):
        plain = make_soc(seed=29)
        cycled = make_soc(seed=29)
        profiler = StepProfiler().attach(cycled)
        profiler.detach()
        for _ in range(10):
            a = plain.step()
            b = cycled.step()
            assert a.qos_rate == b.qos_rate
            assert a.big.power_w == b.big.power_w


class TestReport:
    def test_report_lists_every_stage(self):
        soc = make_soc()
        profiler = StepProfiler().attach(soc)
        for _ in range(3):
            soc.step()
        profiler.detach()
        text = profiler.report(steps_per_s=1234.5)
        for stage in STAGES:
            assert stage in text
        assert "1234" in text
        assert "us/call" in text

    def test_report_with_no_samples_does_not_divide_by_zero(self):
        text = StepProfiler().report()
        assert "step_total" in text


class TestCLI:
    def test_profile_command_prints_hotspot_table(self, capsys):
        from repro.perf.cli import main

        code = main(["profile", "spectr", "--duration", "1.5"])
        out = capsys.readouterr().out
        assert code == 0
        for stage in STAGES:
            assert stage in out
        assert "SPECTR" in out
        assert "steps/s" in out

    def test_unknown_manager_is_rejected(self):
        from repro.perf.cli import main

        with pytest.raises(SystemExit, match="unknown manager"):
            main(["profile", "nope"])

    def test_unknown_workload_is_rejected(self):
        from repro.perf.cli import main

        with pytest.raises(SystemExit, match="unknown workload"):
            main(["profile", "spectr", "--workload", "nope"])
