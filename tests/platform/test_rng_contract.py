"""The RNG draw-order contract for one ``ExynosSoC.step``.

Every hot-path optimization must keep the platform RNG stream consumed
in exactly this order, or the golden traces stop being bit-identical:

1. QoS workload rate noise — one ``normal(1, variability)`` draw, only
   when a QoS app is attached and its variability is positive;
2. Big cluster telemetry — one power-sensor gain and one PMU gain per
   core.  When every instrument is a plain :class:`NoisySensor` these
   come from a single batched ``standard_normal(n_cores + 1)`` call
   (which consumes the stream identically to the scalar draws); any
   wrapped/faulty sensor falls back to per-sensor scalar ``normal``
   draws in the same order;
3. Little cluster telemetry — same as the big cluster.

These tests pin the call sequence itself, not just the resulting
values, so a reordering that happens to produce close numbers still
fails loudly.
"""

import numpy as np

from repro.platform.faults import FaultModel, inject_power_sensor_fault
from repro.platform.fleet import FleetPlatform
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import x264


class RecordingRNG:
    """Delegates to a real Generator while logging every draw call."""

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)
        self.calls: list[tuple] = []

    def normal(self, loc=0.0, scale=1.0, size=None):
        self.calls.append(("normal", float(loc), float(scale), size))
        return self._rng.normal(loc, scale, size)

    def standard_normal(self, size=None):
        self.calls.append(("standard_normal", size))
        return self._rng.standard_normal(size)

    def __getattr__(self, name):
        return getattr(self._rng, name)


def recorded_step(soc: ExynosSoC, seed: int = 2018):
    recorder = RecordingRNG(seed)
    soc.rng = recorder
    telemetry = soc.step()
    return recorder.calls, telemetry


class TestDrawOrder:
    def test_with_qos_app_and_plain_sensors(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=2018))
        calls, _ = recorded_step(soc)
        workload = x264()
        assert calls == [
            ("normal", 1.0, workload.variability, None),
            ("standard_normal", 5),  # big: power + 4 PMU gains
            ("standard_normal", 5),  # little: power + 4 PMU gains
        ]

    def test_without_qos_app(self):
        soc = ExynosSoC(qos_app=None, config=SoCConfig(seed=2018))
        calls, _ = recorded_step(soc)
        assert calls == [
            ("standard_normal", 5),
            ("standard_normal", 5),
        ]

    def test_faulty_power_sensor_uses_scalar_draws_in_order(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=2018))
        inject_power_sensor_fault(
            soc, "big", FaultModel("spike", start_s=1.0, end_s=2.0)
        )
        calls, _ = recorded_step(soc)
        power_noise = soc.big.power_sensor.noise_fraction
        pmu_noise = soc.big.pmu_sensors[0].noise_fraction
        assert calls == [
            ("normal", 1.0, x264().variability, None),
            # big falls back to per-sensor scalar draws, same order:
            ("normal", 1.0, power_noise, None),
            ("normal", 1.0, pmu_noise, None),
            ("normal", 1.0, pmu_noise, None),
            ("normal", 1.0, pmu_noise, None),
            ("normal", 1.0, pmu_noise, None),
            # little keeps the batched path:
            ("standard_normal", 5),
        ]

    def test_idle_insertion_uses_slow_path_in_order(self):
        soc = ExynosSoC(qos_app=None, config=SoCConfig(seed=2018))
        soc.big.set_idle_fraction(0, 0.5)
        calls, _ = recorded_step(soc)
        power_noise = soc.big.power_sensor.noise_fraction
        pmu_noise = soc.big.pmu_sensors[0].noise_fraction
        assert calls == [
            ("normal", 1.0, power_noise, None),
            ("normal", 1.0, pmu_noise, None),
            ("normal", 1.0, pmu_noise, None),
            ("normal", 1.0, pmu_noise, None),
            ("normal", 1.0, pmu_noise, None),
            ("standard_normal", 5),
        ]


class TestBatchedFleetContract:
    """The fleet kernel's pre-drawn noise blocks must consume each
    device's RNG stream exactly as the scalar per-tick draws do."""

    def test_block_draw_equals_interleaved_draws(self):
        # One standard_normal(width * T) block reproduces T per-tick
        # standard_normal(width) draws value-for-value: the ziggurat
        # stream is consumed identically either way.
        width, ticks = 11, 40
        block = np.random.default_rng(2018).standard_normal(width * ticks)
        interleaved_rng = np.random.default_rng(2018)
        for tick in range(ticks):
            draw = interleaved_rng.standard_normal(width)
            assert np.array_equal(
                block[tick * width : (tick + 1) * width], draw
            )

    def test_chunked_draws_preserve_stream_continuity(self):
        # Refilling in chunks (what FleetPlatform does every
        # noise_chunk_ticks) is indistinguishable from one big draw.
        chunked_rng = np.random.default_rng(7)
        chunks = [chunked_rng.standard_normal(77) for _ in range(5)]
        whole = np.random.default_rng(7).standard_normal(77 * 5)
        assert np.array_equal(np.concatenate(chunks), whole)

    def test_normal_equals_affine_standard_normal(self):
        # The scalar sensors draw rng.normal(1, s); the fleet kernel
        # applies 1 + s * z to pre-drawn standard normals.  The two are
        # bit-identical draw-for-draw, not just distributionally.
        scale = 0.015
        direct = np.random.default_rng(42)
        affine = np.random.default_rng(42)
        for _ in range(100):
            a = direct.normal(1.0, scale)
            b = 1.0 + scale * affine.standard_normal()
            assert a == b

    def test_fleet_device_blocks_match_scalar_stream(self):
        # Device row i's noise buffer is drawn from a generator seeded
        # exactly like scalar device i, with the documented per-tick
        # layout: [QoS draw] + [big power + PMUs] + [little power +
        # PMUs] = 1 + 2 * (cores + 1) slots.
        seeds = [2018, 7]
        fleet = FleetPlatform(
            qos_app=x264(), seeds=seeds, noise_chunk_ticks=3
        )
        assert fleet._draws_per_tick == 1 + 2 * (4 + 1)
        fleet.step()  # forces the first refill
        for row, seed in enumerate(seeds):
            expected = np.random.default_rng(seed).standard_normal(
                fleet._draws_per_tick * 3
            )
            assert np.array_equal(fleet._noise_buf[row], expected)

    def test_fleet_without_qos_app_drops_the_workload_slot(self):
        fleet = FleetPlatform(qos_app=None, seeds=[1])
        assert fleet._draws_per_tick == 2 * (4 + 1)

    def test_fleet_telemetry_consumes_stream_like_scalar(self):
        # End to end: after T ticks with no actuation, a fleet row and
        # a scalar device with the same seed have consumed identical
        # stream prefixes — their noisy telemetry matches exactly.
        fleet = FleetPlatform(
            qos_app=x264(), seeds=[2018], noise_chunk_ticks=4
        )
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=2018))
        for _ in range(10):
            batched = fleet.step()
            scalar = soc.step()
            assert float(batched.qos_rate[0]) == scalar.qos_rate
            assert float(batched.big.power_w[0]) == scalar.big.power_w
            assert float(batched.big.ips[0]) == scalar.big.ips
            assert float(batched.little.power_w[0]) == scalar.little.power_w
            assert float(batched.little.ips[0]) == scalar.little.ips


class TestStreamEquivalence:
    def test_recorded_run_matches_plain_run_bit_for_bit(self):
        # The recorder only logs; with the same seed the telemetry must
        # equal an unobserved run exactly (the contract is about order,
        # not about perturbing the stream).
        plain = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=7))
        observed = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=7))
        observed.rng = RecordingRNG(7)
        for _ in range(25):
            a = plain.step()
            b = observed.step()
            assert a.qos_rate == b.qos_rate
            assert a.big.power_w == b.big.power_w
            assert a.little.power_w == b.little.power_w
            assert np.array_equal(a.big.per_core_ips, b.big.per_core_ips)
