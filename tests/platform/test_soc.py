"""Tests for the simulated big.LITTLE SoC."""

import numpy as np
import pytest

from repro.platform.soc import ExynosSoC, PlatformError, SoCConfig
from repro.workloads import BackgroundTask, x264


def make_soc(**kwargs):
    return ExynosSoC(qos_app=x264(), **kwargs)


def settle(soc, steps=40):
    telemetry = None
    for _ in range(steps):
        telemetry = soc.step()
    return telemetry


class TestActuators:
    def test_frequency_snaps_to_opp(self):
        soc = make_soc()
        applied = soc.big.set_frequency(1.234)
        assert applied == pytest.approx(1.2)
        assert soc.big.frequency_ghz == pytest.approx(1.2)

    def test_frequency_clamps(self):
        soc = make_soc()
        assert soc.big.set_frequency(99.0) == pytest.approx(2.0)
        assert soc.little.set_frequency(99.0) == pytest.approx(1.4)

    def test_active_cores_rounds_and_clamps(self):
        soc = make_soc()
        assert soc.big.set_active_cores(2.6) == 3
        assert soc.big.set_active_cores(0.0) == 1
        assert soc.big.set_active_cores(9.0) == 4

    def test_idle_fraction_bounds(self):
        soc = make_soc()
        soc.big.set_idle_fraction(0, 0.5)
        assert soc.big.idle_fractions[0] == 0.5
        soc.big.set_idle_fraction(0, 2.0)
        assert soc.big.idle_fractions[0] == 0.95
        with pytest.raises(PlatformError):
            soc.big.set_idle_fraction(7, 0.1)

    def test_voltage_follows_frequency(self):
        soc = make_soc()
        soc.big.set_frequency(0.2)
        low = soc.big.voltage_v
        soc.big.set_frequency(2.0)
        assert soc.big.voltage_v > low


class TestTelemetry:
    def test_chip_power_is_sum(self):
        soc = make_soc()
        telemetry = settle(soc)
        assert telemetry.chip_power_w == pytest.approx(
            telemetry.big.power_w + telemetry.little.power_w
        )

    def test_time_advances_by_dt(self):
        soc = make_soc()
        t0 = soc.step().time_s
        t1 = soc.step().time_s
        assert t1 - t0 == pytest.approx(soc.config.dt_s)

    def test_deterministic_given_seed(self):
        a = settle(make_soc(config=SoCConfig(seed=5)))
        b = settle(make_soc(config=SoCConfig(seed=5)))
        assert a.qos_rate == b.qos_rate
        assert a.big.power_w == b.big.power_w

    def test_per_core_ips_sums_to_cluster(self):
        soc = make_soc()
        telemetry = settle(soc)
        assert telemetry.big.ips == pytest.approx(
            float(np.sum(telemetry.big.per_core_ips))
        )

    def test_inactive_cores_report_zero_ips(self):
        soc = make_soc()
        soc.big.set_active_cores(2)
        telemetry = settle(soc)
        assert np.all(telemetry.big.per_core_ips[2:] == 0.0)


class TestQoSBehaviour:
    def test_qos_increases_with_frequency(self):
        soc = make_soc()
        soc.big.set_frequency(0.8)
        slow = settle(soc).qos_rate
        soc.big.set_frequency(2.0)
        fast = settle(soc).qos_rate
        assert fast > slow * 1.5

    def test_qos_increases_with_cores(self):
        soc = make_soc()
        soc.big.set_active_cores(1)
        few = settle(soc).qos_rate
        soc.big.set_active_cores(4)
        many = settle(soc).qos_rate
        assert many > few * 1.5

    def test_max_allocation_hits_peak_rate(self):
        soc = make_soc(config=SoCConfig(seed=1))
        soc.big.set_frequency(2.0)
        soc.big.set_active_cores(4)
        telemetry = settle(soc, steps=60)
        assert telemetry.qos_rate == pytest.approx(80.0, rel=0.06)

    def test_background_tasks_reduce_qos(self):
        clean = make_soc(config=SoCConfig(seed=3))
        clean.big.set_frequency(2.0)
        qos_clean = settle(clean).qos_rate
        noisy = ExynosSoC(
            qos_app=x264(),
            background=[BackgroundTask(f"bg{i}") for i in range(4)],
            config=SoCConfig(seed=3),
        )
        noisy.big.set_frequency(2.0)
        noisy.little.set_frequency(1.4)
        qos_noisy = settle(noisy).qos_rate
        assert qos_noisy < 0.9 * qos_clean

    def test_background_tasks_arrive_on_schedule(self):
        soc = ExynosSoC(
            qos_app=x264(),
            background=[BackgroundTask("late", arrival_s=1.0)],
            config=SoCConfig(seed=2),
        )
        soc.little.set_frequency(1.0)
        early = settle(soc, steps=10)  # t < 1.0
        assert early.little.busy_core_equivalents == 0.0
        late = settle(soc, steps=30)  # t > 1.0
        assert late.little.busy_core_equivalents > 0.0

    def test_idle_insertion_reduces_capacity(self):
        soc = make_soc()
        full = soc.big.effective_capacity()
        soc.big.set_idle_fraction(0, 0.5)
        assert soc.big.effective_capacity() == pytest.approx(full - 0.5)

    def test_no_qos_app_reports_zero(self):
        soc = ExynosSoC(qos_app=None)
        telemetry = settle(soc, steps=5)
        assert telemetry.qos_rate == 0.0
        assert telemetry.qos_raw == 0.0


class TestHotplugRounding:
    """``set_active_cores`` uses Python's round-half-to-even (banker's)
    rounding.  This is pinned as *intended* semantics: controllers emit
    fractional core counts and the golden traces bake in exactly these
    integers, so changing to round-half-up would silently shift every
    hotplug decision at ``x.5``.  ``ActuatorProxy`` mirrors the same
    rule when quantizing manager requests.
    """

    def test_half_rounds_to_even(self):
        soc = make_soc()
        assert soc.big.set_active_cores(2.5) == 2  # not 3
        assert soc.big.set_active_cores(3.5) == 4
        assert soc.big.set_active_cores(1.5) == 2

    def test_off_half_values_round_to_nearest(self):
        soc = make_soc()
        assert soc.big.set_active_cores(2.49) == 2
        assert soc.big.set_active_cores(2.51) == 3

    def test_matches_python_round_across_grid(self):
        soc = make_soc()
        for request in np.arange(1.0, 4.01, 0.05):
            applied = soc.big.set_active_cores(float(request))
            expected = min(4, max(1, round(float(request))))
            assert applied == expected, request


class TestOPPSnapCache:
    def test_repeated_snap_returns_same_object(self):
        soc = make_soc()
        first = soc.big.opps.snap(1.234)
        second = soc.big.opps.snap(1.234)
        assert first is second

    def test_cache_is_bounded(self):
        soc = make_soc()
        table = soc.big.opps
        for i in range(table.SNAP_CACHE_LIMIT + 50):
            table.snap(1.0 + i * 1e-9)
        assert len(table._snap_cache) <= table.SNAP_CACHE_LIMIT

    def test_cached_and_uncached_agree(self):
        soc = make_soc()
        table = soc.big.opps
        for request in (0.0, 0.1, 0.95, 1.05, 2.0, 99.0):
            assert table.snap(request) is table.snap(request)
            assert table.snap(request).frequency_ghz == table.snap(
                request
            ).frequency_ghz


class TestConfig:
    def test_invalid_dt_rejected(self):
        with pytest.raises(PlatformError):
            ExynosSoC(qos_app=x264(), config=SoCConfig(dt_s=0.0))

    def test_power_within_mobile_envelope(self):
        soc = make_soc()
        soc.big.set_frequency(2.0)
        soc.little.set_frequency(1.4)
        telemetry = settle(soc)
        assert 3.0 < telemetry.chip_power_w < 8.0
