"""Tests for fault injection and manager robustness under faults."""

import numpy as np
import pytest

from repro.platform.faults import (
    ActuatorFaultModel,
    ActuatorProxy,
    ClusterActuatorFaults,
    FaultModel,
    FaultySensor,
    inject_actuator_fault,
    inject_power_sensor_fault,
)
from repro.platform.manycore import ManyCoreSoC
from repro.platform.sensors import NoisySensor
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import x264


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel("weird", 0.0, 1.0)
        with pytest.raises(ValueError):
            FaultModel("stuck", 1.0, 1.0)

    def test_window(self):
        fault = FaultModel("stuck", 1.0, 2.0)
        assert fault.active_at(1.0)
        assert not fault.active_at(2.0)


class TestFaultySensor:
    def make(self, kind, magnitude=2.0):
        base = NoisySensor("s", noise_fraction=0.0)
        return FaultySensor(
            base, [FaultModel(kind, 1.0, 2.0, magnitude=magnitude)]
        )

    def test_healthy_outside_window(self):
        sensor = self.make("dropout")
        rng = np.random.default_rng(0)
        sensor.set_time(0.5)
        assert sensor.read(3.0, rng) == 3.0
        sensor.set_time(2.5)
        assert sensor.read(3.0, rng) == 3.0

    def test_dropout_reads_floor(self):
        sensor = self.make("dropout")
        sensor.set_time(1.5)
        assert sensor.read(3.0, np.random.default_rng(0)) == 0.0

    def test_stuck_repeats_last_healthy(self):
        sensor = self.make("stuck")
        rng = np.random.default_rng(0)
        sensor.set_time(0.9)
        sensor.read(3.0, rng)
        sensor.set_time(1.5)
        assert sensor.read(99.0, rng) == 3.0

    def test_stuck_without_history_passes_through(self):
        sensor = self.make("stuck")
        sensor.set_time(1.5)
        assert sensor.read(4.0, np.random.default_rng(0)) == 4.0

    def test_spike_multiplies(self):
        sensor = self.make("spike", magnitude=3.0)
        sensor.set_time(1.5)
        assert sensor.read(2.0, np.random.default_rng(0)) == 6.0

    def test_bias_offsets(self):
        sensor = self.make("bias", magnitude=1.5)
        sensor.set_time(1.5)
        assert sensor.read(2.0, np.random.default_rng(0)) == 3.5

    def test_add_fault(self):
        sensor = self.make("dropout")
        sensor.add_fault(FaultModel("spike", 3.0, 4.0))
        sensor.set_time(3.5)
        assert sensor.read(2.0, np.random.default_rng(0)) == 4.0


class TestInjection:
    def test_injects_into_exynos(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=1))
        wrapper = inject_power_sensor_fault(
            soc, "big", FaultModel("spike", 0.5, 1.0, magnitude=2.0)
        )
        assert isinstance(soc.big.power_sensor, FaultySensor)
        # During the window, big power readings double.
        readings = []
        for _ in range(30):
            telemetry = soc.step()
            readings.append((telemetry.time_s, telemetry.big.power_w))
        before = np.mean([p for t, p in readings if t < 0.45])
        during = np.mean([p for t, p in readings if 0.55 <= t < 0.95])
        assert during > 1.6 * before

    def test_second_injection_reuses_wrapper(self):
        soc = ExynosSoC(qos_app=x264())
        first = inject_power_sensor_fault(
            soc, "big", FaultModel("spike", 0.5, 1.0)
        )
        second = inject_power_sensor_fault(
            soc, "big", FaultModel("dropout", 2.0, 3.0)
        )
        assert first is second
        assert len(second.faults) == 2

    def test_unknown_cluster_rejected(self):
        soc = ExynosSoC(qos_app=x264())
        with pytest.raises(ValueError):
            inject_power_sensor_fault(
                soc, "nope", FaultModel("spike", 0.0, 1.0)
            )

    def test_unknown_cluster_error_lists_available_names(self):
        soc = ExynosSoC(qos_app=x264())
        with pytest.raises(ValueError, match="big"):
            inject_power_sensor_fault(
                soc, "medium", FaultModel("spike", 0.0, 1.0)
            )

    def test_injects_into_manycore(self):
        soc = ManyCoreSoC(n_little=1, qos_app=x264(), config=SoCConfig(seed=1))
        inject_power_sensor_fault(
            soc, "little0", FaultModel("dropout", 0.0, 1.0)
        )
        assert isinstance(soc.clusters[1].power_sensor, FaultySensor)
        telemetry = soc.step()
        assert telemetry.clusters[1].power_w == 0.0

    def test_manycore_unknown_cluster_rejected(self):
        soc = ManyCoreSoC(n_little=1, qos_app=x264())
        with pytest.raises(ValueError, match="little0"):
            inject_power_sensor_fault(
                soc, "little7", FaultModel("dropout", 0.0, 1.0)
            )

    def test_unsupported_object_raises_type_error(self):
        with pytest.raises(TypeError, match="cannot\n?\\s*inject|inject"):
            inject_power_sensor_fault(
                object(), "big", FaultModel("dropout", 0.0, 1.0)
            )

    def test_step_is_never_monkey_patched(self):
        # Clock propagation is native: injection on both clusters must
        # not wrap or replace the SoC's step method.
        soc = ExynosSoC(qos_app=x264())
        inject_power_sensor_fault(soc, "big", FaultModel("spike", 0.0, 1.0))
        inject_power_sensor_fault(soc, "little", FaultModel("dropout", 0.0, 1.0))
        inject_actuator_fault(
            soc, "big", ActuatorFaultModel("reject", 0.0, 1.0)
        )
        assert "step" not in soc.__dict__
        assert type(soc).step is ExynosSoC.step


class TestOverlapPrecedence:
    def make(self):
        sensor = FaultySensor(NoisySensor("s", noise_fraction=0.0))
        # The spike is injected first but starts later: the stuck
        # window's earlier start_s must win wherever they overlap.
        sensor.add_fault(FaultModel("spike", 2.0, 4.0, magnitude=3.0))
        sensor.add_fault(FaultModel("stuck", 1.0, 3.0))
        return sensor

    def test_earliest_start_wins_in_overlap(self):
        sensor = self.make()
        rng = np.random.default_rng(0)
        sensor.set_time(0.5)
        assert sensor.read(5.0, rng) == 5.0  # healthy history
        sensor.set_time(2.5)  # both windows active
        assert sensor.active_fault().kind == "stuck"
        assert sensor.read(9.0, rng) == 5.0

    def test_later_fault_applies_after_earlier_window_closes(self):
        sensor = self.make()
        rng = np.random.default_rng(0)
        sensor.set_time(0.5)
        sensor.read(5.0, rng)
        sensor.set_time(3.5)  # stuck window over, spike alone
        assert sensor.read(2.0, rng) == 6.0

    def test_same_start_tie_broken_by_injection_order(self):
        sensor = FaultySensor(NoisySensor("s", noise_fraction=0.0))
        sensor.add_fault(FaultModel("bias", 1.0, 2.0, magnitude=1.0))
        sensor.add_fault(FaultModel("spike", 1.0, 2.0, magnitude=10.0))
        sensor.set_time(1.5)
        assert sensor.active_fault().kind == "bias"
        assert sensor.read(2.0, np.random.default_rng(0)) == 3.0


class TestActuatorFaultModel:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            ActuatorFaultModel("weird", 0.0, 1.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            ActuatorFaultModel("reject", 0.0, 1.0, probability=1.5)

    def test_partial_magnitude_must_be_fraction(self):
        with pytest.raises(ValueError):
            ActuatorFaultModel("partial", 0.0, 1.0, magnitude=2.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ActuatorFaultModel("delay", 0.0, 1.0, delay_s=-0.1)


class TestClusterActuatorFaults:
    def make_soc(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=1))
        soc.big.set_frequency(1.0)
        return soc

    def test_reject_keeps_previous_operating_point(self):
        soc = self.make_soc()
        layer = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("reject", 0.0, 1.0, probability=1.0)
        )
        layer.set_time(0.5)
        assert soc.big.set_frequency(1.8) == 1.0
        assert layer.rejected_dvfs_count == 1

    def test_clamp_caps_the_applied_frequency(self):
        soc = self.make_soc()
        layer = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("clamp", 0.0, 1.0, magnitude=0.9)
        )
        layer.set_time(0.5)
        assert soc.big.set_frequency(1.8) == pytest.approx(0.9)

    def test_partial_moves_a_fraction_of_the_way(self):
        soc = self.make_soc()
        layer = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("partial", 0.0, 1.0, magnitude=0.5)
        )
        layer.set_time(0.5)
        # 1.0 -> request 1.8: halfway is 1.4 (an exact OPP).
        assert soc.big.set_frequency(1.8) == pytest.approx(1.4)

    def test_hotplug_fail_drops_the_request(self):
        soc = self.make_soc()
        before = soc.big.active_cores
        layer = inject_actuator_fault(
            soc,
            "big",
            ActuatorFaultModel("hotplug_fail", 0.0, 1.0, probability=1.0),
        )
        layer.set_time(0.5)
        assert soc.big.set_active_cores(before - 1) == before
        assert layer.rejected_hotplug_count == 1

    def test_delay_applies_after_maturation(self):
        soc = self.make_soc()
        layer = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("delay", 0.0, 1.0, delay_s=0.2)
        )
        layer.set_time(0.5)
        assert soc.big.set_frequency(1.8) == 1.0  # queued, not applied
        layer.set_time(0.6)
        assert soc.big.frequency_ghz == 1.0  # not matured yet
        layer.set_time(0.75)
        assert soc.big.frequency_ghz == pytest.approx(1.8)

    def test_outside_window_requests_pass(self):
        soc = self.make_soc()
        layer = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("reject", 1.0, 2.0, probability=1.0)
        )
        layer.set_time(0.5)
        assert soc.big.set_frequency(1.8) == pytest.approx(1.8)

    def test_second_injection_reuses_layer(self):
        soc = self.make_soc()
        first = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("reject", 0.0, 1.0)
        )
        second = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("clamp", 2.0, 3.0)
        )
        assert first is second
        assert len(second.faults) == 2


class FlakyCluster:
    """Minimal cluster stub whose actuator fails a set number of times."""

    class _Opps:
        min_frequency = 0.2

        def snap(self, frequency_ghz):
            class OPP:
                pass

            opp = OPP()
            opp.frequency_ghz = round(frequency_ghz, 1)
            return opp

    def __init__(self, fail_first_n=0):
        self.name = "big"
        self.opps = self._Opps()
        self.frequency_ghz = 1.0
        self.active_cores = 4
        self.n_cores = 4
        self._failures_left = fail_first_n
        self.call_count = 0

    def set_frequency(self, frequency_ghz):
        self.call_count += 1
        if self._failures_left > 0:
            self._failures_left -= 1
            return self.frequency_ghz
        self.frequency_ghz = round(frequency_ghz, 1)
        return self.frequency_ghz

    def set_active_cores(self, count):
        self.active_cores = int(round(count))
        return self.active_cores


class TestActuatorProxy:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ActuatorProxy(FlakyCluster(), max_retries=-1)

    def test_clean_request_records_nothing(self):
        proxy = ActuatorProxy(FlakyCluster())
        assert proxy.set_frequency(1.8) == pytest.approx(1.8)
        assert proxy.events == []
        assert proxy.last_good_frequency_ghz == pytest.approx(1.8)

    def test_transient_rejection_is_retried(self):
        proxy = ActuatorProxy(FlakyCluster(fail_first_n=1), max_retries=2)
        assert proxy.set_frequency(1.8) == pytest.approx(1.8)
        assert proxy.retry_count == 1
        assert [e.outcome for e in proxy.events] == ["retried"]

    def test_persistent_rejection_holds_last_good(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=1))
        soc.big.set_frequency(1.0)
        layer = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("reject", 0.0, 1.0, probability=1.0)
        )
        layer.set_time(0.5)
        proxy = ActuatorProxy(soc.big, max_retries=2)
        assert proxy.set_frequency(1.8) == pytest.approx(1.0)
        assert proxy.hold_count == 1
        assert proxy.retry_count == 2
        assert proxy.events[-1].outcome == "held"
        assert proxy.last_good_frequency_ghz == pytest.approx(1.0)

    def test_partial_application_is_accepted_as_safe_point(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=1))
        soc.big.set_frequency(1.0)
        layer = inject_actuator_fault(
            soc, "big", ActuatorFaultModel("partial", 0.0, 1.0, magnitude=0.5)
        )
        layer.set_time(0.5)
        proxy = ActuatorProxy(soc.big, max_retries=1)
        applied = proxy.set_frequency(1.8)
        assert applied == pytest.approx(1.4)
        assert proxy.partial_count >= 1
        assert proxy.last_good_frequency_ghz == pytest.approx(1.4)

    def test_hotplug_rejection_is_held(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=1))
        layer = inject_actuator_fault(
            soc,
            "big",
            ActuatorFaultModel("hotplug_fail", 0.0, 1.0, probability=1.0),
        )
        layer.set_time(0.5)
        proxy = ActuatorProxy(soc.big, max_retries=1)
        before = soc.big.active_cores
        assert proxy.set_active_cores(before - 1) == before
        assert proxy.hold_count == 1
        assert proxy.events[-1].actuator == "hotplug"

    def test_attribute_access_forwards_to_cluster(self):
        soc = ExynosSoC(qos_app=x264())
        proxy = ActuatorProxy(soc.big)
        assert proxy.name == "big"
        assert proxy.n_cores == soc.big.n_cores
        assert proxy.wrapped is soc.big

    def test_event_timestamps_follow_set_time(self):
        proxy = ActuatorProxy(FlakyCluster(fail_first_n=1), max_retries=1)
        proxy.set_time(0.35)
        proxy.set_frequency(1.8)
        assert proxy.events[-1].time_s == pytest.approx(0.35)


class TestClusterActuatorFaultsDirect:
    def test_standalone_layer_validates_kind_filtering(self):
        cluster = FlakyCluster()
        layer = ClusterActuatorFaults(
            cluster,
            [
                ActuatorFaultModel("hotplug_fail", 0.0, 1.0),
                ActuatorFaultModel("clamp", 0.0, 1.0, magnitude=0.5),
            ],
        )
        layer.set_time(0.5)
        assert layer.active_fault("clamp").kind == "clamp"
        assert layer.active_fault("hotplug_fail").kind == "hotplug_fail"
        assert layer.active_fault("reject") is None
