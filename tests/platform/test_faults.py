"""Tests for fault injection and manager robustness under faults."""

import numpy as np
import pytest

from repro.platform.faults import (
    FaultModel,
    FaultySensor,
    inject_power_sensor_fault,
)
from repro.platform.sensors import NoisySensor
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import x264


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel("weird", 0.0, 1.0)
        with pytest.raises(ValueError):
            FaultModel("stuck", 1.0, 1.0)

    def test_window(self):
        fault = FaultModel("stuck", 1.0, 2.0)
        assert fault.active_at(1.0)
        assert not fault.active_at(2.0)


class TestFaultySensor:
    def make(self, kind, magnitude=2.0):
        base = NoisySensor("s", noise_fraction=0.0)
        return FaultySensor(
            base, [FaultModel(kind, 1.0, 2.0, magnitude=magnitude)]
        )

    def test_healthy_outside_window(self):
        sensor = self.make("dropout")
        rng = np.random.default_rng(0)
        sensor.set_time(0.5)
        assert sensor.read(3.0, rng) == 3.0
        sensor.set_time(2.5)
        assert sensor.read(3.0, rng) == 3.0

    def test_dropout_reads_floor(self):
        sensor = self.make("dropout")
        sensor.set_time(1.5)
        assert sensor.read(3.0, np.random.default_rng(0)) == 0.0

    def test_stuck_repeats_last_healthy(self):
        sensor = self.make("stuck")
        rng = np.random.default_rng(0)
        sensor.set_time(0.9)
        sensor.read(3.0, rng)
        sensor.set_time(1.5)
        assert sensor.read(99.0, rng) == 3.0

    def test_stuck_without_history_passes_through(self):
        sensor = self.make("stuck")
        sensor.set_time(1.5)
        assert sensor.read(4.0, np.random.default_rng(0)) == 4.0

    def test_spike_multiplies(self):
        sensor = self.make("spike", magnitude=3.0)
        sensor.set_time(1.5)
        assert sensor.read(2.0, np.random.default_rng(0)) == 6.0

    def test_bias_offsets(self):
        sensor = self.make("bias", magnitude=1.5)
        sensor.set_time(1.5)
        assert sensor.read(2.0, np.random.default_rng(0)) == 3.5

    def test_add_fault(self):
        sensor = self.make("dropout")
        sensor.add_fault(FaultModel("spike", 3.0, 4.0))
        sensor.set_time(3.5)
        assert sensor.read(2.0, np.random.default_rng(0)) == 4.0


class TestInjection:
    def test_injects_into_exynos(self):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=1))
        wrapper = inject_power_sensor_fault(
            soc, "big", FaultModel("spike", 0.5, 1.0, magnitude=2.0)
        )
        assert isinstance(soc.big.power_sensor, FaultySensor)
        # During the window, big power readings double.
        readings = []
        for _ in range(30):
            telemetry = soc.step()
            readings.append((telemetry.time_s, telemetry.big.power_w))
        before = np.mean([p for t, p in readings if t < 0.45])
        during = np.mean([p for t, p in readings if 0.55 <= t < 0.95])
        assert during > 1.6 * before

    def test_second_injection_reuses_wrapper(self):
        soc = ExynosSoC(qos_app=x264())
        first = inject_power_sensor_fault(
            soc, "big", FaultModel("spike", 0.5, 1.0)
        )
        second = inject_power_sensor_fault(
            soc, "big", FaultModel("dropout", 2.0, 3.0)
        )
        assert first is second
        assert len(second.faults) == 2

    def test_unknown_cluster_rejected(self):
        soc = ExynosSoC(qos_app=x264())
        with pytest.raises(ValueError):
            inject_power_sensor_fault(
                soc, "nope", FaultModel("spike", 0.0, 1.0)
            )
