"""Differential harness: the batched fleet kernel vs the scalar oracle.

The fleet kernel (:mod:`repro.platform.fleet`) advances N devices per
array op; its contract is that row ``i`` of a fleet run is
**bit-identical** to an independent scalar :class:`ExynosSoC` run
seeded with ``derive_seed(base, "fleet", i)``.  These tests enforce
that contract at every layer:

* platform: hypothesis-driven random actuation (DVFS + hotplug + idle
  ticks) across fleet sizes, workloads, background mixes and seeds,
  with mid-run noise-chunk refills;
* managers: every paper manager's closed-loop fleet run equals the
  scalar runner row for row, gain switches included;
* exec: faulted rows spliced by :func:`execute_fleet` equal scalar
  fault-injected jobs;
* guards: configurations the kernel does not reproduce (idle
  insertion, >= 8 cores, fault layers, ineligible sensors) are
  rejected loudly instead of silently diverging.

Plus pinned regressions for latent scalar/batched divergences found
while building the kernel: NaN frequency snapping and banker's-rounding
hotplug.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.batch import (
    BatchedGainSet,
    BatchedLQGServo,
    _matvec_columns,
)
from repro.control.lqg import LQGServoController
from repro.exec.fleet_jobs import FleetScenarioJob, execute_fleet
from repro.exec.job import FaultSpec, ScenarioJob, derive_seed
from repro.exec.scenario_jobs import execute
from repro.experiments.figures import (
    MANAGER_NAMES,
    identified_systems,
    manager_factory,
)
from repro.experiments.fleet import fleet_manager_factory, run_fleet_scenario
from repro.experiments.runner import run_scenario
from repro.managers.mimo import (
    POWER_GAINS,
    QOS_GAINS,
    build_gain_library,
    cluster_actuator_limits,
)
from repro.experiments.scenario import three_phase_scenario
from repro.platform.faults import ActuatorFaultModel, inject_actuator_fault
from repro.platform.fleet import FleetPlatform
from repro.platform.opp import OPP, OPPTable, big_cluster_opps
from repro.platform.sensors import NoisySensor
from repro.platform.soc import (
    ExynosSoC,
    PlatformError,
    SoCConfig,
    fleet_sensor_layout,
)
from repro.workloads import canneal, x264

TRACE_FIELDS = (
    "times",
    "qos",
    "qos_reference",
    "chip_power",
    "power_reference",
    "big_power",
    "little_power",
    "big_frequency",
    "big_cores",
    "little_frequency",
    "little_cores",
)
CLUSTER_FIELDS = (
    "frequency_ghz",
    "voltage_v",
    "active_cores",
    "busy_core_equivalents",
    "power_w",
    "ips",
)

_WORKLOADS = (lambda: None, x264, canneal)


def _row_seeds(base_seed: int, n: int) -> list[int]:
    return [derive_seed(base_seed, "fleet", i) for i in range(n)]


def _assert_cluster_equal(fleet_cluster, scalar_cluster, row, tick, name):
    for field in CLUSTER_FIELDS:
        batched = getattr(fleet_cluster, field)[row]
        scalar = getattr(scalar_cluster, field)
        assert float(batched) == float(scalar), (
            f"tick {tick} row {row} {name}.{field}: "
            f"batched {batched!r} != scalar {scalar!r}"
        )


class TestPlatformDifferential:
    """Random-actuation property: every tick, every row, every field."""

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 5),
        base_seed=st.integers(0, 2**31 - 1),
        workload_id=st.integers(0, len(_WORKLOADS) - 1),
        background_count=st.integers(0, 4),
        drive_seed=st.integers(0, 2**31 - 1),
        ticks=st.integers(5, 30),
    )
    def test_fleet_rows_match_scalar_devices(
        self, n, base_seed, workload_id, background_count, drive_seed, ticks
    ):
        make_workload = _WORKLOADS[workload_id]
        scenario = three_phase_scenario(background_tasks=background_count)
        seeds = _row_seeds(base_seed, n)
        fleet = FleetPlatform(
            qos_app=make_workload(),
            background=scenario.background_tasks(),
            seeds=seeds,
            # A small chunk forces mid-run standard_normal refills, so
            # ziggurat stream continuity across chunks is exercised.
            noise_chunk_ticks=7,
        )
        socs = [
            ExynosSoC(
                qos_app=make_workload(),
                background=scenario.background_tasks(),
                config=SoCConfig(seed=seed),
            )
            for seed in seeds
        ]
        drive = np.random.default_rng(drive_seed)
        for tick in range(ticks):
            fleet_telemetry = fleet.step()
            for row, soc in enumerate(socs):
                telemetry = soc.step()
                if np.ndim(fleet_telemetry.qos_rate):
                    batched_qos = float(fleet_telemetry.qos_rate[row])
                else:
                    # No QoS app: both sides report a plain 0.0.
                    batched_qos = float(fleet_telemetry.qos_rate)
                assert batched_qos == float(telemetry.qos_rate), (
                    f"tick {tick} row {row} qos_rate"
                )
                assert float(fleet_telemetry.chip_power_w[row]) == float(
                    telemetry.chip_power_w
                ), f"tick {tick} row {row} chip_power_w"
                _assert_cluster_equal(
                    fleet_telemetry.big, telemetry.big, row, tick, "big"
                )
                _assert_cluster_equal(
                    fleet_telemetry.little,
                    telemetry.little,
                    row,
                    tick,
                    "little",
                )
            # Random actuation, identical requests on both sides; some
            # ticks are idle (no actuation at all).
            if drive.random() < 0.7:
                big_freq = drive.uniform(0.1, 2.3, n)
                little_freq = drive.uniform(0.1, 1.7, n)
                big_cores = drive.uniform(0.5, 4.5, n)
                little_cores = drive.uniform(0.5, 4.5, n)
                big_mask = drive.random(n) < 0.5
                little_mask = drive.random(n) < 0.5
                fleet.big.set_frequency(big_freq)
                fleet.little.set_frequency(little_freq)
                fleet.big.apply_core_requests(big_cores, big_mask)
                fleet.little.apply_core_requests(little_cores, little_mask)
                for row, soc in enumerate(socs):
                    soc.big.set_frequency(float(big_freq[row]))
                    soc.little.set_frequency(float(little_freq[row]))
                    if big_mask[row]:
                        soc.big.set_active_cores(float(big_cores[row]))
                    if little_mask[row]:
                        soc.little.set_active_cores(float(little_cores[row]))
                for row, soc in enumerate(socs):
                    assert float(fleet.big.frequency[row]) == float(
                        soc.big.frequency_ghz
                    ), f"tick {tick} row {row} big frequency actuation"
                    assert float(fleet.big.active[row]) == float(
                        soc.big.active_cores
                    ), f"tick {tick} row {row} big hotplug actuation"
                    assert float(fleet.little.frequency[row]) == float(
                        soc.little.frequency_ghz
                    ), f"tick {tick} row {row} little frequency actuation"
                    assert float(fleet.little.active[row]) == float(
                        soc.little.active_cores
                    ), f"tick {tick} row {row} little hotplug actuation"


@pytest.fixture(scope="module")
def systems():
    return identified_systems()


class TestManagerDifferential:
    """Closed-loop equivalence for every paper manager."""

    @pytest.mark.parametrize("manager", MANAGER_NAMES)
    def test_fleet_run_matches_scalar_rows(self, manager, systems):
        scenario = three_phase_scenario(phase_duration_s=1.0)
        workload = x264()
        seeds = _row_seeds(2018, 3)
        fleet_trace = run_fleet_scenario(
            fleet_manager_factory(manager, systems),
            workload,
            scenario,
            seeds=seeds,
        )
        for index, seed in enumerate(seeds):
            scalar = run_scenario(
                manager_factory(manager, systems),
                x264(),
                scenario,
                seed=seed,
            )
            row = fleet_trace.row(index)
            assert row.gain_sets == scalar.gain_sets, (manager, index)
            for field in TRACE_FIELDS:
                assert np.array_equal(
                    getattr(row, field), getattr(scalar, field)
                ), f"{manager} row {index} {field}"


class TestFaultedRowSplice:
    """Faulted devices run the scalar oracle and splice bit-identically."""

    @pytest.mark.parametrize(
        "fault",
        [
            FaultSpec(kind="stuck", target="little", start_s=0.4,
                      duration_s=1.2),
            FaultSpec(kind="reject", target="big", start_s=0.5,
                      duration_s=1.0, probability=0.7),
        ],
        ids=["sensor-stuck", "actuator-reject"],
    )
    def test_execute_fleet_matches_scalar_jobs(self, fault, systems):
        scenario = three_phase_scenario(phase_duration_s=1.0)
        job = FleetScenarioJob(
            manager="MM-Pow",
            scenario=scenario,
            seed=2018,
            n_devices=3,
            device_faults=((1, fault),),
        )
        fleet_trace = execute_fleet(job)
        for index, seed in enumerate(job.seeds()):
            scalar = execute(
                ScenarioJob(
                    manager="MM-Pow",
                    scenario=scenario,
                    seed=seed,
                    fault=fault if index == 1 else None,
                )
            )
            row = fleet_trace.row(index)
            assert row.gain_sets == scalar.gain_sets, index
            for field in TRACE_FIELDS:
                assert np.array_equal(
                    getattr(row, field), getattr(scalar, field)
                ), f"row {index} {field}"


class TestKernelGuards:
    """Everything the kernel does not reproduce is rejected loudly."""

    def test_idle_insertion_rejected(self):
        soc = ExynosSoC(config=SoCConfig(seed=1))
        soc.big.set_idle_fraction(0, 0.5)
        with pytest.raises(PlatformError, match="idle insertion"):
            fleet_sensor_layout(soc.big)

    def test_eight_core_cluster_rejected(self):
        soc = ExynosSoC(config=SoCConfig(seed=1, cores_per_cluster=8))
        with pytest.raises(PlatformError, match="8 cores"):
            fleet_sensor_layout(soc.big)

    def test_actuator_fault_layer_rejected(self):
        soc = ExynosSoC(config=SoCConfig(seed=1))
        inject_actuator_fault(
            soc,
            "big",
            ActuatorFaultModel(kind="reject", start_s=0.0, end_s=1.0),
            seed=1,
        )
        with pytest.raises(PlatformError, match="fault layers"):
            fleet_sensor_layout(soc.big)

    def test_zero_noise_sensor_rejected(self):
        soc = ExynosSoC(config=SoCConfig(seed=1))
        soc.big.power_sensor = NoisySensor(
            "big-power", noise_fraction=0.0
        )
        with pytest.raises(PlatformError, match="NoisySensor"):
            fleet_sensor_layout(soc.big)

    def test_subclassed_sensor_rejected(self):
        class WrappedSensor(NoisySensor):
            pass

        soc = ExynosSoC(config=SoCConfig(seed=1))
        soc.big.power_sensor = WrappedSensor(
            "big-power", noise_fraction=0.015
        )
        with pytest.raises(PlatformError, match="NoisySensor"):
            fleet_sensor_layout(soc.big)

    def test_fleet_platform_rejects_ineligible_config(self):
        with pytest.raises(PlatformError, match="8 cores"):
            FleetPlatform(
                seeds=[1, 2],
                config=SoCConfig(seed=1, cores_per_cluster=8),
            )


class TestSnapRegressions:
    """Pinned scalar/batched divergences found while building the kernel."""

    def test_scalar_snap_rejects_nan(self):
        # bisect (scalar) and searchsorted (batched) place NaN at
        # opposite ends of the table; both paths now raise instead.
        table = big_cluster_opps()
        with pytest.raises(ValueError, match="NaN"):
            table.snap(float("nan"))

    def test_snap_indices_rejects_nan(self):
        table = big_cluster_opps()
        with pytest.raises(ValueError, match="NaN"):
            table.snap_indices(np.array([1.0, float("nan")]))

    def test_single_point_table_snap_indices(self):
        table = OPPTable([OPP(1.0, 1.0)], name="single")
        idx = table.snap_indices(np.array([0.2, 1.0, 5.0]))
        assert np.array_equal(idx, np.zeros(3, dtype=int))

    @settings(max_examples=200, deadline=None)
    @given(
        requested=st.one_of(
            st.floats(-1.0, 4.0, allow_nan=False),
            # Exact table points and midpoints, where tie-breaking and
            # clamp branches live.
            st.sampled_from(
                [0.2, 0.25, 1.0, 1.05, 1.1, 1.95, 2.0, 2.05, 1e-12, 0.0]
            ),
        )
    )
    def test_snap_indices_matches_scalar_snap(self, requested):
        table = big_cluster_opps()
        scalar = table.snap(requested)
        index = int(table.snap_indices(np.array([requested]))[0])
        assert table.points[index] is scalar


class TestHotplugRoundingRegression:
    """Batched hotplug must reproduce banker's rounding exactly."""

    @settings(max_examples=200, deadline=None)
    @given(
        requested=st.one_of(
            st.floats(-2.0, 8.0, allow_nan=False),
            # Half-integers: where round-half-to-even differs from
            # round-half-up.
            st.sampled_from([0.5, 1.5, 2.5, 3.5, 4.5, 5.5]),
        )
    )
    def test_apply_core_requests_matches_set_active_cores(self, requested):
        soc = ExynosSoC(config=SoCConfig(seed=1))
        fleet = FleetPlatform(seeds=[1])
        scalar = soc.big.set_active_cores(float(requested))
        fleet.big.apply_core_requests(
            np.array([requested]), np.array([True])
        )
        assert float(fleet.big.active[0]) == float(scalar)

    def test_half_core_requests_round_to_even(self):
        soc = ExynosSoC(config=SoCConfig(seed=1))
        assert soc.big.set_active_cores(2.5) == 2
        assert soc.big.set_active_cores(3.5) == 4
        fleet = FleetPlatform(seeds=[1, 2])
        fleet.big.apply_core_requests(
            np.array([2.5, 3.5]), np.array([True, True])
        )
        assert fleet.big.active.tolist() == [2.0, 4.0]


def _servo_pair(system, n_rows):
    """A batched servo and n_rows scalar servos over the same palette."""
    library = build_gain_library(system, integral_weight=0.08)
    palette = [library.get(QOS_GAINS), library.get(POWER_GAINS)]
    soc = ExynosSoC(config=SoCConfig(seed=1))
    limits = cluster_actuator_limits(soc.big)
    op = system.operating_point
    batched = BatchedLQGServo(palette, op, limits, n_rows)
    scalars = [
        LQGServoController(palette[0], op, limits) for _ in range(n_rows)
    ]
    return batched, scalars, palette


def _assert_state_equal(batched, scalar, row, tick):
    for name, got, want in (
        ("xhat", batched.X[row], scalar._xhat),
        ("z", batched.Z[row], scalar._z),
        ("du_prev", batched.DU[row], scalar._du_prev),
        ("u_prev", batched.U_prev[row], scalar._u_prev),
    ):
        assert np.array_equal(got, want), (name, row, tick)


class TestServoStateDifferential:
    """Internal estimator/integrator state must match bit-for-bit.

    Trace-level equivalence is too forgiving: a sub-ulp drift in the
    estimator state survives OPP snapping and core rounding for most
    seeds, so closed-loop runs can pass while the batched algebra is
    subtly wrong (a row-stacked [C; A] matvec did exactly that — the
    stacked dgemv blocks row reductions differently from the separate
    products).  These tests drive both servos with identical *random*
    measurements and compare every piece of internal state after each
    step, which fails loudly on any such drift.
    """

    @pytest.mark.parametrize("n_rows", [1, 5])
    @pytest.mark.parametrize("which", ["big", "little"])
    def test_uniform_rows_match_scalar_state_bitwise(
        self, which, n_rows, systems
    ):
        system = getattr(systems, which)
        batched, scalars, _ = _servo_pair(system, n_rows)
        op = system.operating_point
        reference = [float(op.y[0] * 1.1), float(op.y[1] * 0.9)]
        batched.set_reference(reference)
        for scalar in scalars:
            scalar.set_reference(reference)
        rng = np.random.default_rng(2018)
        for tick in range(120):
            measured = op.y + op.y_scale * rng.standard_normal((n_rows, 2))
            u_batch = batched.step(measured)
            for row, scalar in enumerate(scalars):
                u_scalar = scalar.step(measured[row])
                assert np.array_equal(u_batch[row], u_scalar), (row, tick)
                _assert_state_equal(batched, scalar, row, tick)

    def test_mixed_gain_rows_match_scalar_state_bitwise(self, systems):
        batched, scalars, palette = _servo_pair(systems.big, 4)
        op = systems.big.operating_point
        rng = np.random.default_rng(7)
        for tick in range(90):
            if tick == 30:  # rows 1 and 3 onto the power gain set
                batched.switch_rows(np.array([1, 3]), 1)
                scalars[1].switch_gains(palette[1])
                scalars[3].switch_gains(palette[1])
            if tick == 60:  # row 3 back; batch stays mixed
                batched.switch_rows(np.array([3]), 0)
                scalars[3].switch_gains(palette[0])
            measured = op.y + op.y_scale * rng.standard_normal((4, 2))
            u_batch = batched.step(measured)
            for row, scalar in enumerate(scalars):
                u_scalar = scalar.step(measured[row])
                assert np.array_equal(u_batch[row], u_scalar), (row, tick)
                _assert_state_equal(batched, scalar, row, tick)

    def test_fast_primitives_match_plain_matvec(self, systems):
        # Whichever fast paths the construction probe enabled, their
        # results must equal plain matvec on batch shapes (N >= 2).
        library = build_gain_library(systems.big, integral_weight=0.08)
        g = BatchedGainSet(library.get(QOS_GAINS))
        rng = np.random.default_rng(11)
        for matrix, enabled in (
            (g.DB, g.db_columns_exact),
            (g.L, g.l_columns_exact),
            (g.K_integral, g.ki_columns_exact),
            (g.K_integral_pinv, g.ki_pinv_columns_exact),
        ):
            if not enabled:
                continue
            X = rng.standard_normal((137, matrix.shape[1]))
            out = np.empty((137, matrix.shape[0]), order="F")
            got = _matvec_columns(matrix, X, out)
            assert np.array_equal(got, np.matvec(matrix, X))
