"""Tests for the cluster power model."""

import pytest

from repro.platform.power import (
    PowerModel,
    big_cluster_power_model,
    little_cluster_power_model,
)


class TestValidation:
    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(-0.1, 0.0, 0.0)
        with pytest.raises(ValueError):
            PowerModel(0.1, 0.0, 0.0, idle_core_fraction=1.5)

    def test_negative_active_cores_rejected(self):
        model = big_cluster_power_model()
        with pytest.raises(ValueError):
            model.cluster_power(1.0, 1.0, -1, 0.0)


class TestMonotonicity:
    def test_increases_with_frequency(self):
        model = big_cluster_power_model()
        low = model.cluster_power(1.0, 1.0, 4, 4.0)
        high = model.cluster_power(2.0, 1.0, 4, 4.0)
        assert high > low

    def test_increases_with_voltage(self):
        model = big_cluster_power_model()
        low = model.cluster_power(1.0, 1.0, 4, 4.0)
        high = model.cluster_power(1.0, 1.3, 4, 4.0)
        assert high > low

    def test_increases_with_busy_cores(self):
        model = big_cluster_power_model()
        idle = model.cluster_power(1.0, 1.0, 4, 0.0)
        busy = model.cluster_power(1.0, 1.0, 4, 4.0)
        assert busy > idle

    def test_active_but_idle_cores_cost_leakage(self):
        model = big_cluster_power_model()
        one_active = model.cluster_power(1.0, 1.0, 1, 0.0)
        four_active = model.cluster_power(1.0, 1.0, 4, 0.0)
        assert four_active > one_active

    def test_busy_clamped_to_active(self):
        model = big_cluster_power_model()
        capped = model.cluster_power(1.0, 1.0, 2, 10.0)
        exact = model.cluster_power(1.0, 1.0, 2, 2.0)
        assert capped == pytest.approx(exact)


class TestCalibration:
    """Anchors that keep the simulated envelope on the paper's scale."""

    def test_big_max_power_near_6_4_w(self):
        model = big_cluster_power_model()
        power = model.cluster_power(2.0, 1.3625, 4, 4.0)
        assert 6.0 < power < 6.8

    def test_big_efficient_point_near_3_7_w(self):
        model = big_cluster_power_model()
        power = model.cluster_power(1.4, 1.208, 4, 4.0)
        assert 3.2 < power < 4.1

    def test_little_max_power_near_1_w(self):
        model = little_cluster_power_model()
        power = model.cluster_power(1.4, 1.25, 4, 4.0)
        assert 0.7 < power < 1.3

    def test_big_hungrier_than_little(self):
        big = big_cluster_power_model()
        little = little_cluster_power_model()
        assert big.cluster_power(1.4, 1.2, 4, 4.0) > 3 * little.cluster_power(
            1.4, 1.2, 4, 4.0
        )
