"""Property-based tests for the platform substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.opp import big_cluster_opps, little_cluster_opps
from repro.platform.perf import amdahl_speedup, frequency_scale
from repro.platform.power import big_cluster_power_model
from repro.platform.scheduler import fair_share
from repro.workloads.heartbeats import HeartbeatMonitor

frequencies = st.floats(0.05, 3.0, allow_nan=False)
fractions = st.floats(0.0, 1.0, allow_nan=False)


class TestOPPProperties:
    @given(frequencies)
    @settings(max_examples=80, deadline=None)
    def test_snap_returns_table_entry(self, f):
        for table in (big_cluster_opps(), little_cluster_opps()):
            opp = table.snap(f)
            assert opp in table.points

    @given(frequencies)
    @settings(max_examples=80, deadline=None)
    def test_snap_is_nearest(self, f):
        table = big_cluster_opps()
        chosen = table.snap(f)
        best = min(abs(p.frequency_ghz - f) for p in table.points)
        assert abs(chosen.frequency_ghz - f) == pytest.approx(best)

    @given(frequencies)
    @settings(max_examples=80, deadline=None)
    def test_snap_idempotent(self, f):
        table = big_cluster_opps()
        once = table.snap(f)
        assert table.snap(once.frequency_ghz) == once


class TestPowerProperties:
    @given(
        st.floats(0.2, 2.0),
        st.floats(0.9, 1.4),
        st.integers(1, 4),
        st.floats(0.0, 4.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_power_positive_and_monotone_in_busy(self, f, v, cores, busy):
        model = big_cluster_power_model()
        power = model.cluster_power(f, v, cores, busy)
        assert power > 0
        more = model.cluster_power(f, v, cores, min(busy + 0.5, cores))
        assert more >= power - 1e-12

    @given(st.floats(0.2, 1.9), st.floats(0.9, 1.4), st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_power_monotone_in_frequency(self, f, v, cores):
        model = big_cluster_power_model()
        low = model.cluster_power(f, v, cores, cores)
        high = model.cluster_power(f + 0.1, v, cores, cores)
        assert high > low


class TestPerfProperties:
    @given(fractions, st.floats(0.1, 32.0))
    @settings(max_examples=80, deadline=None)
    def test_amdahl_bounded_by_threads_and_limit(self, p, n):
        speedup = amdahl_speedup(p, n)
        assert 0 <= speedup <= max(n, 1.0) + 1e-9
        if p < 1.0 and n >= 1.0:
            assert speedup <= 1.0 / (1.0 - p) + 1e-9

    @given(fractions, st.floats(1.0, 16.0), st.floats(0.1, 8.0))
    @settings(max_examples=80, deadline=None)
    def test_amdahl_monotone_in_threads(self, p, n, extra):
        assert amdahl_speedup(p, n + extra) >= amdahl_speedup(p, n) - 1e-12

    @given(st.floats(0.01, 2.0), st.floats(0.2, 1.2))
    @settings(max_examples=80, deadline=None)
    def test_frequency_scale_in_unit_interval(self, f, alpha):
        value = frequency_scale(f, 2.0, alpha)
        assert 0.0 <= value <= 1.0


class TestSchedulerProperties:
    @given(st.integers(0, 8), st.floats(0.0, 32.0))
    @settings(max_examples=80, deadline=None)
    def test_fair_share_bounds(self, cores, threads):
        share = fair_share(cores, threads)
        assert 0.0 <= share <= 1.0
        if threads > 0 and cores >= threads:
            assert share == 1.0


class TestHeartbeatProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 0.2, allow_nan=False),
                st.floats(0.0, 10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_windowed_rate_matches_manual_count(self, deltas_counts):
        monitor = HeartbeatMonitor(window_s=0.3)
        now = 0.0
        issued: list[tuple[float, float]] = []
        for delta, count in deltas_counts:
            now += delta
            monitor.issue(now, count)
            issued.append((now, count))
        expected = sum(
            c
            for t, c in issued
            if t > now - 0.3 + 0.3 * 1e-6
        ) / 0.3
        assert monitor.rate(now) == pytest.approx(expected, rel=1e-6)

    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_total_heartbeats_is_sum(self, counts):
        monitor = HeartbeatMonitor()
        for index, count in enumerate(counts):
            monitor.issue(index * 0.05, count)
        assert monitor.total_heartbeats == pytest.approx(sum(counts))
