"""Tests for sensor models."""

import numpy as np
import pytest

from repro.platform.sensors import NoisySensor, pmu_counter, power_sensor


class TestNoisySensor:
    def test_deterministic_with_seed(self):
        sensor = NoisySensor("s", noise_fraction=0.05)
        a = sensor.read(10.0, np.random.default_rng(42))
        b = sensor.read(10.0, np.random.default_rng(42))
        assert a == b

    def test_noise_is_multiplicative(self):
        sensor = NoisySensor("s", noise_fraction=0.02)
        rng = np.random.default_rng(0)
        readings = np.array([sensor.read(100.0, rng) for _ in range(500)])
        assert readings.std() == pytest.approx(2.0, rel=0.3)
        assert readings.mean() == pytest.approx(100.0, rel=0.01)

    def test_zero_noise_exact(self):
        sensor = NoisySensor("s", noise_fraction=0.0)
        assert sensor.read(3.14, np.random.default_rng(0)) == 3.14

    def test_quantization(self):
        sensor = NoisySensor("s", noise_fraction=0.0, resolution=0.005)
        value = sensor.read(1.2345, np.random.default_rng(0))
        assert value == pytest.approx(round(1.2345 / 0.005) * 0.005)

    def test_floor(self):
        sensor = NoisySensor("s", noise_fraction=0.0, floor=0.5)
        assert sensor.read(0.1, np.random.default_rng(0)) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisySensor("s", noise_fraction=-0.1)
        with pytest.raises(ValueError):
            NoisySensor("s", resolution=-1.0)


class TestFactories:
    def test_power_sensor_properties(self):
        sensor = power_sensor("big")
        assert "big" in sensor.name
        assert sensor.resolution == 0.005

    def test_pmu_counter_noisier_than_power_sensor(self):
        # Per-core rates at 50 ms granularity fluctuate more than the
        # integrating cluster power sensor reads.
        assert pmu_counter("big-core0").noise_fraction > power_sensor(
            "big"
        ).noise_fraction
