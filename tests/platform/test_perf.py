"""Tests for the cluster performance model."""

import pytest

from repro.platform.perf import (
    ClusterPerfModel,
    amdahl_speedup,
    big_cluster_perf_model,
    frequency_scale,
    little_cluster_perf_model,
)


class TestAmdahl:
    def test_single_thread_is_baseline(self):
        assert amdahl_speedup(0.9, 1.0) == pytest.approx(1.0)

    def test_fully_serial_never_speeds_up(self):
        assert amdahl_speedup(0.0, 8.0) == pytest.approx(1.0)

    def test_fully_parallel_is_linear(self):
        assert amdahl_speedup(1.0, 4.0) == pytest.approx(4.0)

    def test_classic_value(self):
        # p=0.9, n=4 -> 1/(0.1 + 0.225) ~ 3.077
        assert amdahl_speedup(0.9, 4.0) == pytest.approx(3.0769, rel=1e-3)

    def test_monotone_in_threads(self):
        values = [amdahl_speedup(0.9, n) for n in (1, 2, 3, 4, 8)]
        assert values == sorted(values)

    def test_fractional_threads_below_one_scale_linearly(self):
        assert amdahl_speedup(0.9, 0.5) == pytest.approx(0.5)

    def test_zero_threads(self):
        assert amdahl_speedup(0.9, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2.0)


class TestFrequencyScale:
    def test_at_max_is_one(self):
        assert frequency_scale(2.0, 2.0, 0.85) == pytest.approx(1.0)

    def test_compute_bound_is_linear(self):
        assert frequency_scale(1.0, 2.0, 1.0) == pytest.approx(0.5)

    def test_memory_bound_is_flatter(self):
        compute = frequency_scale(1.0, 2.0, 1.0)
        memory = frequency_scale(1.0, 2.0, 0.5)
        assert memory > compute  # less penalty at low frequency

    def test_zero_frequency(self):
        assert frequency_scale(0.0, 2.0, 0.8) == 0.0

    def test_clamped_above_max(self):
        assert frequency_scale(3.0, 2.0, 0.8) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            frequency_scale(1.0, 0.0, 0.8)


class TestClusterPerfModel:
    def test_big_core_stronger_than_little(self):
        big = big_cluster_perf_model()
        little = little_cluster_perf_model()
        assert big.core_rate(1.4, 0.85) > little.core_rate(1.4, 0.85)

    def test_workload_rate_at_reference_allocation(self):
        """peak_rate is attained at f_max with the reference threads."""
        model = big_cluster_perf_model()
        rate = model.workload_rate(
            80.0, 2.0, 4.0, parallel_fraction=0.93, freq_alpha=0.85
        )
        assert rate == pytest.approx(80.0)

    def test_workload_rate_decreases_with_interference(self):
        model = big_cluster_perf_model()
        clean = model.workload_rate(
            80.0, 2.0, 4.0, parallel_fraction=0.93, freq_alpha=0.85
        )
        contended = model.workload_rate(
            80.0, 2.0, 2.5, parallel_fraction=0.93, freq_alpha=0.85
        )
        assert contended < clean

    def test_workload_rate_zero_threads(self):
        model = big_cluster_perf_model()
        assert model.workload_rate(
            80.0, 2.0, 0.0, parallel_fraction=0.9, freq_alpha=0.85
        ) == 0.0

    def test_negative_peak_rejected(self):
        model = big_cluster_perf_model()
        with pytest.raises(ValueError):
            model.workload_rate(
                -1.0, 2.0, 4.0, parallel_fraction=0.9, freq_alpha=0.85
            )

    def test_model_validation(self):
        with pytest.raises(ValueError):
            ClusterPerfModel(ipc_factor=0.0, f_max_ghz=2.0)
