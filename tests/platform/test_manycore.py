"""Tests for the many-cluster platform."""

import numpy as np
import pytest

from repro.platform.manycore import ManyCoreSoC, MultiClusterScheduler
from repro.platform.soc import PlatformError, SoCConfig
from repro.workloads import BackgroundTask, x264


def make_soc(n_little=3, bg=0, seed=1):
    return ManyCoreSoC(
        n_little=n_little,
        qos_app=x264(),
        background=[BackgroundTask(f"bg{i}") for i in range(bg)],
        config=SoCConfig(seed=seed),
    )


def settle(soc, steps=40):
    telemetry = None
    for _ in range(steps):
        telemetry = soc.step()
    return telemetry


class TestConstruction:
    def test_cluster_count(self):
        soc = make_soc(n_little=5)
        assert soc.n_clusters == 6
        assert soc.host.name == "big0"
        assert soc.clusters[1].name == "little0"

    def test_negative_little_rejected(self):
        with pytest.raises(PlatformError):
            ManyCoreSoC(n_little=-1)

    def test_zero_little_allowed(self):
        soc = ManyCoreSoC(n_little=0, qos_app=x264())
        assert soc.n_clusters == 1
        telemetry = settle(soc, steps=5)
        assert len(telemetry.clusters) == 1


class TestTelemetry:
    def test_chip_power_is_sum(self):
        soc = make_soc()
        telemetry = settle(soc)
        assert telemetry.chip_power_w == pytest.approx(
            sum(c.power_w for c in telemetry.clusters)
        )

    def test_qos_app_runs_on_host(self):
        soc = make_soc()
        soc.host.set_frequency(2.0)
        telemetry = settle(soc, steps=60)
        assert telemetry.qos_rate == pytest.approx(80.0, rel=0.06)
        assert telemetry.clusters[0].busy_core_equivalents > 3.5

    def test_background_spreads_over_littles(self):
        soc = make_soc(bg=6)
        for cluster in soc.clusters:
            cluster.set_frequency(cluster.opps.max_frequency)
        telemetry = settle(soc)
        little_busy = [
            c.busy_core_equivalents for c in telemetry.clusters[1:]
        ]
        assert sum(little_busy) > 2.0  # littles absorb background work

    def test_deterministic_with_seed(self):
        a = settle(make_soc(seed=9))
        b = settle(make_soc(seed=9))
        assert a.qos_rate == b.qos_rate
        assert a.chip_power_w == b.chip_power_w


class TestMultiClusterScheduler:
    def test_sticky_assignment(self):
        soc = make_soc(bg=4)
        scheduler = soc.scheduler
        tasks = [t for t in soc.background]
        first = scheduler.place(tasks, soc.clusters, [4.0, 0, 0, 0])
        second = scheduler.place(tasks, soc.clusters, [4.0, 0, 0, 0])
        names_first = [sorted(t.name for t in group) for group in first]
        names_second = [sorted(t.name for t in group) for group in second]
        assert names_first == names_second

    def test_departed_tasks_forgotten(self):
        scheduler = MultiClusterScheduler()
        soc = make_soc()
        scheduler.place(
            [BackgroundTask("t0")], soc.clusters, [0, 0, 0, 0]
        )
        scheduler.place([], soc.clusters, [0, 0, 0, 0])
        assert scheduler._previous == {}

    def test_all_tasks_placed(self):
        scheduler = MultiClusterScheduler()
        soc = make_soc()
        tasks = [BackgroundTask(f"t{i}") for i in range(7)]
        groups = scheduler.place(tasks, soc.clusters, [4.0, 0, 0, 0])
        assert sum(len(g) for g in groups) == 7
