"""Tests for OPP (DVFS) tables."""

import pytest

from repro.platform.opp import OPP, OPPTable, big_cluster_opps, little_cluster_opps


class TestOPP:
    def test_positive_values_required(self):
        with pytest.raises(ValueError):
            OPP(0.0, 1.0)
        with pytest.raises(ValueError):
            OPP(1.0, -0.1)


class TestOPPTable:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OPPTable([])

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ValueError):
            OPPTable([OPP(1.0, 1.0), OPP(1.0, 1.1)])

    def test_voltage_must_be_monotone(self):
        with pytest.raises(ValueError):
            OPPTable([OPP(1.0, 1.2), OPP(2.0, 1.0)])

    def test_points_sorted(self):
        table = OPPTable([OPP(2.0, 1.2), OPP(1.0, 1.0)])
        assert table.min_frequency == 1.0
        assert table.max_frequency == 2.0

    def test_snap_to_nearest(self):
        table = OPPTable([OPP(1.0, 1.0), OPP(1.1, 1.05), OPP(1.2, 1.1)])
        assert table.snap(1.04).frequency_ghz == 1.0
        assert table.snap(1.06).frequency_ghz == 1.1
        assert table.snap(1.15).frequency_ghz == 1.1  # ties go down

    def test_snap_clamps(self):
        table = OPPTable([OPP(1.0, 1.0), OPP(2.0, 1.2)])
        assert table.snap(0.1).frequency_ghz == 1.0
        assert table.snap(9.9).frequency_ghz == 2.0

    def test_voltage_for(self):
        table = OPPTable([OPP(1.0, 1.0), OPP(2.0, 1.2)])
        assert table.voltage_for(2.3) == 1.2


class TestExynosTables:
    def test_big_range(self):
        table = big_cluster_opps()
        assert table.min_frequency == pytest.approx(0.2)
        assert table.max_frequency == pytest.approx(2.0)
        assert len(table) == 19  # 100 MHz steps

    def test_little_range(self):
        table = little_cluster_opps()
        assert table.min_frequency == pytest.approx(0.2)
        assert table.max_frequency == pytest.approx(1.4)
        assert len(table) == 13

    def test_big_voltage_endpoints(self):
        table = big_cluster_opps()
        assert table.voltage_for(0.2) == pytest.approx(0.90)
        assert table.voltage_for(2.0) == pytest.approx(1.3625)

    def test_voltage_monotone(self):
        for table in (big_cluster_opps(), little_cluster_opps()):
            volts = [p.voltage_v for p in table.points]
            assert volts == sorted(volts)
