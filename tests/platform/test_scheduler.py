"""Tests for the HMP background-task scheduler."""

import pytest

from repro.platform.scheduler import ClusterCapacity, HMPScheduler, fair_share
from repro.workloads.base import BackgroundTask


def big_cap(cores=4, strength=2.0):
    return ClusterCapacity(active_cores=cores, core_strength=strength)


def little_cap(cores=4, strength=0.35):
    return ClusterCapacity(active_cores=cores, core_strength=strength)


class TestFairShare:
    def test_undersubscribed_full_share(self):
        assert fair_share(4, 2.0) == 1.0

    def test_oversubscribed_divides(self):
        assert fair_share(4, 8.0) == pytest.approx(0.5)

    def test_no_threads(self):
        assert fair_share(4, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fair_share(-1, 2.0)


class TestClusterCapacity:
    def test_capacity(self):
        assert big_cap().capacity == pytest.approx(8.0)

    def test_scheduling_capacity_interpolates(self):
        cap = big_cap()
        assert cap.scheduling_capacity(0.0) == pytest.approx(4.0)
        assert cap.scheduling_capacity(1.0) == pytest.approx(8.0)
        assert 4.0 < cap.scheduling_capacity(0.5) < 8.0


class TestPlacement:
    def test_first_tasks_prefer_idle_little(self):
        scheduler = HMPScheduler()
        tasks = [BackgroundTask("t0")]
        placement = scheduler.place(
            tasks, big=big_cap(), little=little_cap(),
            big_resident_threads=4.0,
        )
        assert len(placement.little_tasks) == 1

    def test_many_tasks_split_between_clusters(self):
        scheduler = HMPScheduler()
        tasks = [BackgroundTask(f"t{i}") for i in range(4)]
        placement = scheduler.place(
            tasks, big=big_cap(), little=little_cap(),
            big_resident_threads=4.0,
        )
        assert len(placement.big_tasks) >= 1
        assert len(placement.little_tasks) >= 1
        assert len(placement.big_tasks) + len(placement.little_tasks) == 4

    def test_demand_accounting(self):
        scheduler = HMPScheduler()
        tasks = [BackgroundTask(f"t{i}", demand=0.5) for i in range(2)]
        placement = scheduler.place(
            tasks, big=big_cap(), little=little_cap()
        )
        assert placement.big_demand + placement.little_demand == (
            pytest.approx(1.0)
        )

    def test_zero_capacity_cluster_avoided(self):
        scheduler = HMPScheduler()
        tasks = [BackgroundTask("t0")]
        placement = scheduler.place(
            tasks,
            big=big_cap(),
            little=ClusterCapacity(active_cores=0, core_strength=0.35),
        )
        assert len(placement.big_tasks) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HMPScheduler(strength_exponent=2.0)
        with pytest.raises(ValueError):
            HMPScheduler(migration_hysteresis=-0.1)


class TestHysteresis:
    def test_assignment_is_sticky_under_small_capacity_changes(self):
        """A modest frequency change must not re-shuffle tasks (the
        task-sloshing limit cycle the hysteresis exists to prevent)."""
        scheduler = HMPScheduler(migration_hysteresis=0.35)
        tasks = [BackgroundTask(f"t{i}") for i in range(4)]
        first = scheduler.place(
            tasks, big=big_cap(strength=2.0), little=little_cap(strength=0.35),
            big_resident_threads=4.0,
        )
        assignment_1 = ({t.name for t in first.big_tasks},
                        {t.name for t in first.little_tasks})
        # Big slows down a little (1.7 GHz instead of 2.0)
        second = scheduler.place(
            tasks, big=big_cap(strength=1.7), little=little_cap(strength=0.35),
            big_resident_threads=4.0,
        )
        assignment_2 = ({t.name for t in second.big_tasks},
                        {t.name for t in second.little_tasks})
        assert assignment_1 == assignment_2

    def test_large_imbalance_still_migrates(self):
        scheduler = HMPScheduler(migration_hysteresis=0.35)
        tasks = [BackgroundTask("t0")]
        first = scheduler.place(
            tasks, big=big_cap(), little=little_cap(),
            big_resident_threads=4.0,
        )
        assert len(first.little_tasks) == 1
        # Little cluster collapses to one slow core while Big empties.
        second = scheduler.place(
            tasks,
            big=big_cap(cores=4, strength=2.0),
            little=ClusterCapacity(active_cores=1, core_strength=0.05),
            big_resident_threads=0.0,
        )
        assert len(second.big_tasks) == 1

    def test_departed_tasks_forgotten(self):
        scheduler = HMPScheduler()
        tasks = [BackgroundTask("t0")]
        scheduler.place(tasks, big=big_cap(), little=little_cap())
        scheduler.place([], big=big_cap(), little=little_cap())
        assert scheduler._previous == {}

    def test_reset(self):
        scheduler = HMPScheduler()
        scheduler.place(
            [BackgroundTask("t0")], big=big_cap(), little=little_cap()
        )
        scheduler.reset()
        assert scheduler._previous == {}
