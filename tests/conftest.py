"""Shared fixtures.

Identification experiments and supervisor synthesis take ~1 s each, so
they are session-scoped and shared across the whole suite.
"""

from __future__ import annotations

import pytest

from repro.core.synthesis_flow import build_case_study_supervisor
from repro.managers.identification import (
    identify_big_cluster,
    identify_full_system,
    identify_little_cluster,
    identify_percore_system,
)


@pytest.fixture(scope="session")
def big_system():
    return identify_big_cluster()


@pytest.fixture(scope="session")
def little_system():
    return identify_little_cluster()


@pytest.fixture(scope="session")
def full_system():
    return identify_full_system()


@pytest.fixture(scope="session")
def percore_system():
    return identify_percore_system()


@pytest.fixture(scope="session")
def verified_supervisor():
    return build_case_study_supervisor()
