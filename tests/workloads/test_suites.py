"""Tests for the PARSEC / ML workload suites and the microbenchmark."""

import pytest

from repro.workloads import (
    all_qos_workloads,
    bodytrack,
    canneal,
    k_means,
    knn,
    least_squares,
    linear_regression,
    ml_suite,
    parsec_suite,
    streamcluster,
    sysid_microbenchmark,
    x264,
)


class TestSuites:
    def test_parsec_suite_contents(self):
        names = {w.name for w in parsec_suite()}
        assert names == {"x264", "bodytrack", "canneal", "streamcluster"}

    def test_ml_suite_contents(self):
        names = {w.name for w in ml_suite()}
        assert names == {"k-means", "KNN", "least-squares", "linear-regression"}

    def test_all_eight_workloads(self):
        assert len(all_qos_workloads()) == 8

    def test_all_use_four_threads(self):
        # "For all experiments, each QoS application uses four threads."
        assert all(w.threads == 4 for w in all_qos_workloads())


class TestBenchmarkCharacter:
    def test_x264_uses_fps(self):
        assert x264().qos_unit == "FPS"

    def test_x264_is_compute_leaning(self):
        assert x264().freq_alpha > streamcluster().freq_alpha

    def test_streamcluster_most_memory_bound_in_parsec(self):
        alphas = {w.name: w.freq_alpha for w in parsec_suite()}
        assert min(alphas, key=alphas.get) == "streamcluster"

    def test_canneal_has_serial_phase(self):
        w = canneal()
        assert w.serial_phases
        phase = w.serial_phases[0]
        assert phase.parallel_fraction < w.parallel_fraction

    def test_canneal_serial_window_configurable(self):
        w = canneal(serial_start_s=2.0, serial_end_s=4.0)
        assert w.parallel_fraction_at(3.0) < w.parallel_fraction_at(5.0)

    def test_bodytrack_scales_well(self):
        assert bodytrack().parallel_fraction >= 0.9

    def test_kmeans_has_reduction_phase(self):
        assert k_means().serial_phases

    def test_ml_workloads_data_intensive(self):
        for w in (k_means(), knn(), least_squares(), linear_regression()):
            assert w.freq_alpha < 0.85  # all memory-sensitive


class TestMicrobenchmark:
    def test_mlp_fraction_controls_memory_boundness(self):
        compute = sysid_microbenchmark(mlp_fraction=0.0)
        memory = sysid_microbenchmark(mlp_fraction=1.0)
        assert compute.freq_alpha > memory.freq_alpha
        assert compute.parallel_fraction > memory.parallel_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            sysid_microbenchmark(mlp_fraction=1.5)

    def test_low_variability_for_identification(self):
        assert sysid_microbenchmark().variability <= 0.02
