"""Tests for the Heartbeats API monitor."""

import pytest

from repro.workloads.heartbeats import HeartbeatError, HeartbeatMonitor


class TestIssueAndRate:
    def test_constant_rate_measured_exactly(self):
        monitor = HeartbeatMonitor(window_s=0.25)
        for k in range(20):
            monitor.issue(k * 0.05, count=3.0)  # 60 hb/s
        assert monitor.rate() == pytest.approx(60.0)

    def test_rate_uses_window_only(self):
        monitor = HeartbeatMonitor(window_s=0.2)
        # fast early, slow late
        for k in range(10):
            monitor.issue(k * 0.05, count=5.0)
        for k in range(10, 20):
            monitor.issue(k * 0.05, count=1.0)
        assert monitor.rate() == pytest.approx(1.0 / 0.05, rel=0.01)

    def test_empty_monitor_rate_zero(self):
        assert HeartbeatMonitor().rate() == 0.0

    def test_rate_at_explicit_time_evicts(self):
        monitor = HeartbeatMonitor(window_s=0.1)
        monitor.issue(0.0, count=2.0)
        assert monitor.rate(now_s=10.0) == 0.0

    def test_total_heartbeats_accumulates(self):
        monitor = HeartbeatMonitor()
        monitor.issue(0.0, count=2.0)
        monitor.issue(0.05, count=3.0)
        assert monitor.total_heartbeats == 5.0

    def test_float_drift_does_not_inflate_rate(self):
        """Accumulated 0.05s timestamps drift in floating point; the
        window must still hold exactly window/dt records."""
        monitor = HeartbeatMonitor(window_s=0.25)
        t = 0.0
        for _ in range(400):
            monitor.issue(t, count=4.0)  # exactly 80/s
            t += 0.05
        assert monitor.rate() == pytest.approx(80.0, rel=1e-6)


class TestValidation:
    def test_negative_count_rejected(self):
        monitor = HeartbeatMonitor()
        with pytest.raises(HeartbeatError):
            monitor.issue(0.0, count=-1.0)

    def test_time_must_not_go_backwards(self):
        monitor = HeartbeatMonitor()
        monitor.issue(1.0)
        with pytest.raises(HeartbeatError):
            monitor.issue(0.5)

    def test_same_time_allowed(self):
        monitor = HeartbeatMonitor()
        monitor.issue(1.0)
        monitor.issue(1.0)
        assert monitor.total_heartbeats == 2.0

    def test_window_must_be_positive(self):
        with pytest.raises(HeartbeatError):
            HeartbeatMonitor(window_s=0.0)

    def test_reset(self):
        monitor = HeartbeatMonitor()
        monitor.issue(0.0, count=5.0)
        monitor.reset()
        assert monitor.rate() == 0.0
        assert monitor.total_heartbeats == 0.0
        monitor.issue(0.0)  # time ordering restarts cleanly
