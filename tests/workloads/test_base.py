"""Tests for workload models."""

import numpy as np
import pytest

from repro.platform.perf import big_cluster_perf_model
from repro.workloads.base import BackgroundTask, QoSWorkload, WorkloadPhase


def workload(**overrides):
    defaults = dict(
        name="wl",
        peak_rate=80.0,
        parallel_fraction=0.9,
        freq_alpha=0.85,
    )
    defaults.update(overrides)
    return QoSWorkload(**defaults)


class TestValidation:
    def test_positive_peak_required(self):
        with pytest.raises(ValueError):
            workload(peak_rate=0.0)

    def test_parallel_fraction_bounds(self):
        with pytest.raises(ValueError):
            workload(parallel_fraction=1.5)

    def test_freq_alpha_bounds(self):
        with pytest.raises(ValueError):
            workload(freq_alpha=0.0)

    def test_thread_count(self):
        with pytest.raises(ValueError):
            workload(threads=0)

    def test_variability_non_negative(self):
        with pytest.raises(ValueError):
            workload(variability=-0.1)


class TestRate:
    def test_peak_at_reference_allocation(self):
        w = workload()
        perf = big_cluster_perf_model()
        assert w.rate(perf, 2.0, 4.0) == pytest.approx(80.0)

    def test_monotone_in_frequency(self):
        w = workload()
        perf = big_cluster_perf_model()
        rates = [w.rate(perf, f, 4.0) for f in (0.5, 1.0, 1.5, 2.0)]
        assert rates == sorted(rates)

    def test_monotone_in_threads(self):
        w = workload()
        perf = big_cluster_perf_model()
        rates = [w.rate(perf, 2.0, n) for n in (1.0, 2.0, 3.0, 4.0)]
        assert rates == sorted(rates)

    def test_noise_bounded(self):
        w = workload(variability=0.05)
        perf = big_cluster_perf_model()
        rng = np.random.default_rng(0)
        rates = [w.rate(perf, 2.0, 4.0, rng=rng) for _ in range(300)]
        assert np.std(rates) / np.mean(rates) == pytest.approx(0.05, rel=0.3)
        assert min(rates) > 0.5 * 80.0

    def test_allocation_speedup_substantial(self):
        w = workload()
        perf = big_cluster_perf_model()
        speedup = w.allocation_speedup(
            perf, min_frequency_ghz=0.6, max_frequency_ghz=2.0
        )
        assert speedup > 3.0


class TestPhases:
    def test_phase_overrides_parallel_fraction(self):
        w = workload(
            serial_phases=(WorkloadPhase(1.0, 2.0, parallel_fraction=0.2),)
        )
        assert w.parallel_fraction_at(0.5) == 0.9
        assert w.parallel_fraction_at(1.5) == 0.2
        assert w.parallel_fraction_at(2.5) == 0.9

    def test_phase_boundaries_half_open(self):
        phase = WorkloadPhase(1.0, 2.0, parallel_fraction=0.2)
        assert phase.contains(1.0)
        assert not phase.contains(2.0)

    def test_serial_phase_reduces_core_benefit(self):
        w = workload(
            serial_phases=(WorkloadPhase(0.0, 10.0, parallel_fraction=0.3),)
        )
        perf = big_cluster_perf_model()
        gain_serial = w.rate(perf, 2.0, 4.0, time_s=5.0) / w.rate(
            perf, 2.0, 1.0, time_s=5.0
        )
        gain_parallel = w.rate(perf, 2.0, 4.0, time_s=15.0) / w.rate(
            perf, 2.0, 1.0, time_s=15.0
        )
        assert gain_serial < gain_parallel

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            WorkloadPhase(2.0, 1.0, parallel_fraction=0.5)
        with pytest.raises(ValueError):
            WorkloadPhase(0.0, 1.0, parallel_fraction=1.5)


class TestBackgroundTask:
    def test_activity_window(self):
        task = BackgroundTask("t", arrival_s=1.0, departure_s=3.0)
        assert not task.active_at(0.5)
        assert task.active_at(1.0)
        assert task.active_at(2.9)
        assert not task.active_at(3.0)

    def test_default_runs_forever(self):
        task = BackgroundTask("t")
        assert task.active_at(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackgroundTask("t", demand=0.0)
        with pytest.raises(ValueError):
            BackgroundTask("t", demand=1.5)
        with pytest.raises(ValueError):
            BackgroundTask("t", arrival_s=5.0, departure_s=5.0)
