"""Tests for the runtime supervisor engine and action policy."""

import pytest

from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.core.supervisor import (
    PriorityPolicy,
    SupervisorEngine,
    SupervisorRuntimeError,
)

SIGMA = Alphabet.of(
    [
        uncontrollable("alarm"),
        uncontrollable("clear"),
        controllable("act"),
        controllable("trim"),
    ]
)


def small_supervisor():
    """Normal: trim allowed.  After alarm: must act, then wait for clear."""
    return automaton_from_table(
        "sup",
        SIGMA,
        transitions=[
            ("Normal", "trim", "Normal"),
            ("Normal", "alarm", "Alarmed"),
            ("Alarmed", "act", "Acting"),
            ("Acting", "clear", "Normal"),
        ],
        initial="Normal",
        marked=["Normal"],
    )


class TestEngineBasics:
    def test_initial_state(self):
        engine = SupervisorEngine(small_supervisor())
        assert engine.state.name == "Normal"

    def test_observe_advances(self):
        engine = SupervisorEngine(small_supervisor())
        assert engine.observe("alarm")
        assert engine.state.name == "Alarmed"

    def test_observe_disabled_is_ignored(self):
        engine = SupervisorEngine(small_supervisor())
        assert not engine.observe("clear")
        assert engine.state.name == "Normal"

    def test_enabled_actions_only_controllable(self):
        engine = SupervisorEngine(small_supervisor())
        assert engine.enabled_actions() == ("trim",)
        assert set(engine.enabled_events()) == {"alarm", "trim"}

    def test_execute_disabled_action_raises(self):
        engine = SupervisorEngine(small_supervisor())
        with pytest.raises(SupervisorRuntimeError):
            engine.execute("act")

    def test_execute_advances(self):
        engine = SupervisorEngine(small_supervisor())
        engine.observe("alarm")
        engine.execute("act")
        assert engine.state.name == "Acting"

    def test_reset(self):
        engine = SupervisorEngine(small_supervisor())
        engine.observe("alarm")
        engine.reset()
        assert engine.state.name == "Normal"
        assert engine.invocations == 0


class TestPriorityPolicy:
    def test_highest_priority_first(self):
        policy = PriorityPolicy(priorities=("act", "trim"))
        assert policy.select(("trim", "act")) == ("act", "trim")

    def test_guard_blocks_action(self):
        policy = PriorityPolicy(
            priorities=("act", "trim"), guards={"act": lambda: False}
        )
        assert policy.select(("trim", "act")) == ("trim",)

    def test_max_actions(self):
        policy = PriorityPolicy(
            priorities=("act", "trim"), max_actions_per_invocation=1
        )
        assert policy.select(("trim", "act")) == ("act",)

    def test_unknown_enabled_actions_ignored(self):
        policy = PriorityPolicy(priorities=("act",))
        assert policy.select(("other",)) == ()


class TestInvoke:
    def test_full_invocation_cycle(self):
        engine = SupervisorEngine(small_supervisor(), record_trace=True)
        policy = PriorityPolicy(priorities=("act", "trim"))
        fired = []
        effects = {"act": lambda: fired.append("act")}
        executed = engine.invoke(
            ["alarm"], policy, time_s=1.0, effects=effects
        )
        assert executed == ("act",)
        assert fired == ["act"]
        assert engine.state.name == "Acting"
        trace = engine.trace[-1]
        assert trace.observed == ("alarm",)
        assert trace.executed == ("act",)
        assert trace.time_s == 1.0

    def test_ignored_observations_recorded(self):
        engine = SupervisorEngine(small_supervisor(), record_trace=True)
        policy = PriorityPolicy(priorities=())
        engine.invoke(["clear", "alarm"], policy)
        trace = engine.trace[-1]
        assert trace.ignored == ("clear",)
        assert trace.observed == ("alarm",)

    def test_actions_limited_per_invocation(self):
        sigma = Alphabet.of([controllable("a")])
        looping = automaton_from_table(
            "loop",
            sigma,
            transitions=[("S", "a", "S")],
            initial="S",
            marked=["S"],
        )
        engine = SupervisorEngine(looping)
        policy = PriorityPolicy(
            priorities=("a",), max_actions_per_invocation=3
        )
        executed = engine.invoke([], policy)
        assert executed == ("a", "a", "a")

    def test_invocation_counter(self):
        engine = SupervisorEngine(small_supervisor())
        policy = PriorityPolicy(priorities=())
        engine.invoke([], policy)
        engine.invoke([], policy)
        assert engine.invocations == 2

    def test_guard_reevaluated_between_actions(self):
        sigma = Alphabet.of([controllable("a")])
        looping = automaton_from_table(
            "loop",
            sigma,
            transitions=[("S", "a", "S")],
            initial="S",
            marked=["S"],
        )
        engine = SupervisorEngine(looping)
        allowed = {"count": 0}

        def guard():
            return allowed["count"] < 1

        def effect():
            allowed["count"] += 1

        policy = PriorityPolicy(
            priorities=("a",),
            guards={"a": guard},
            max_actions_per_invocation=5,
        )
        executed = engine.invoke([], policy, effects={"a": effect})
        assert executed == ("a",)  # guard turned false after one firing
