"""Tests for the case-study plant models and specifications."""

import pytest

from repro.automata.operations import accessible_states, is_nonblocking
from repro.core.alphabet import (
    CONTROL_POWER,
    CRITICAL,
    DECREASE_CRITICAL_POWER,
    QOS_MET,
    QOS_NOT_MET,
    SAFE_POWER,
    SWITCH_GAINS,
    SWITCH_QOS,
    case_study_alphabet,
)
from repro.core.plant_model import (
    case_study_plant,
    gain_mode_plant,
    power_capping_plant,
    qos_tracking_plant,
)
from repro.core.specification import (
    budget_lock_spec,
    case_study_specification,
    three_band_spec,
)


class TestAlphabet:
    def test_observation_events_uncontrollable(self):
        sigma = case_study_alphabet()
        for name in (CRITICAL, SAFE_POWER, QOS_MET, QOS_NOT_MET):
            assert not sigma[name].controllable

    def test_decision_events_controllable(self):
        sigma = case_study_alphabet()
        for name in (SWITCH_GAINS, SWITCH_QOS, CONTROL_POWER):
            assert sigma[name].controllable

    def test_twelve_events(self):
        assert len(case_study_alphabet()) == 12


class TestPowerCappingPlant:
    def test_mild_action_may_fail_hard_action_resolves(self):
        plant = power_capping_plant()
        # mild path: Capping1 -> Mild1, escalation to Capping2 possible
        mild = plant.step("Capping1", CONTROL_POWER)
        assert mild is not None
        assert plant.step(mild, CRITICAL).name == "Capping2"
        # hard path: resolves the current violation; a later critical
        # (e.g. the budget moved again) starts a FRESH capping cycle
        hard = plant.step("Capping1", DECREASE_CRITICAL_POWER)
        assert hard is not None
        assert plant.step(hard, SAFE_POWER) is not None
        assert plant.step(hard, CRITICAL).name == "Capping1"

    def test_mild_only_path_ends_after_three_criticals(self):
        """Without a hard intervention, at most three escalating
        criticals are possible before the plant forces the hard drop."""
        plant = power_capping_plant()
        state = plant.initial
        count = 0
        while True:
            nxt = plant.step(state, CRITICAL)
            if nxt is None:
                break
            count += 1
            mild = plant.step(nxt, CONTROL_POWER)
            if mild is None:
                break
            state = mild
        assert count == 3

    def test_safe_is_only_marked_state(self):
        plant = power_capping_plant()
        assert plant.marked == {next(iter(plant.marked))}
        assert plant.is_marked("Safe")

    def test_nonblocking(self):
        assert is_nonblocking(power_capping_plant())


class TestGainModePlant:
    def test_switch_sequence(self):
        plant = gain_mode_plant()
        s = plant.run([CRITICAL, SWITCH_GAINS, SAFE_POWER, SWITCH_QOS])
        assert s[-1].name == "QoSMode"

    def test_new_critical_cancels_restore(self):
        plant = gain_mode_plant()
        s = plant.run([CRITICAL, SWITCH_GAINS, SAFE_POWER, CRITICAL])
        assert s[-1].name == "PowerMode"

    def test_qos_mode_does_not_enable_safe_power(self):
        plant = gain_mode_plant()
        assert plant.step("QoSMode", SAFE_POWER) is None


class TestQoSTrackingPlant:
    def test_budget_actions_gated_by_qos_state(self):
        plant = qos_tracking_plant()
        met_events = {e.name for e in plant.enabled_events("Met")}
        not_met_events = {e.name for e in plant.enabled_events("NotMet")}
        assert "decreaseBigPower" in met_events
        assert "increaseBigPower" not in met_events
        assert "increaseBigPower" in not_met_events
        assert "decreaseBigPower" not in not_met_events

    def test_observations_self_loop(self):
        plant = qos_tracking_plant()
        assert plant.step("Met", QOS_MET).name == "Met"
        assert plant.step("NotMet", QOS_NOT_MET).name == "NotMet"


class TestComposedPlant:
    def test_reachable_size(self):
        plant = case_study_plant()
        assert len(plant) == 28
        assert len(accessible_states(plant)) == 28

    def test_critical_synchronizes_subplants(self):
        plant = case_study_plant()
        nxt = plant.step(plant.initial, CRITICAL)
        assert nxt is not None
        # both the capping process and the gain mode moved
        assert "Capping1" in nxt.name
        assert "NeedSwitch" in nxt.name

    def test_nonblocking(self):
        assert is_nonblocking(case_study_plant())


class TestSpecifications:
    def test_three_band_forbidden_after_three_criticals(self):
        spec = three_band_spec()
        state = spec.initial
        for _ in range(3):
            state = spec.step(state, CRITICAL)
            assert state is not None
        assert spec.is_forbidden(state)

    def test_safe_power_resets_the_count(self):
        spec = three_band_spec()
        trajectory = spec.run(
            [CRITICAL, CRITICAL, SAFE_POWER, CRITICAL, CRITICAL]
        )
        assert not spec.is_forbidden(trajectory[-1])

    def test_configurable_interval_count(self):
        spec = three_band_spec(max_capping_intervals=1)
        state = spec.step(spec.initial, CRITICAL)
        state = spec.step(state, CRITICAL)
        assert spec.is_forbidden(state)
        with pytest.raises(ValueError):
            three_band_spec(max_capping_intervals=0)

    def test_budget_lock_blocks_increases_while_capping(self):
        spec = budget_lock_spec()
        locked = spec.step(spec.initial, CRITICAL)
        enabled = {e.name for e in spec.enabled_events(locked)}
        assert "increaseBigPower" not in enabled
        free_again = spec.step(locked, SAFE_POWER)
        enabled = {e.name for e in spec.enabled_events(free_again)}
        assert "increaseBigPower" in enabled

    def test_composed_specification(self):
        spec = case_study_specification()
        assert len(spec) >= 4
        assert any(spec.is_forbidden(s) for s in spec.states)


class TestInterventionResetSemantics:
    def test_hard_intervention_resets_the_count(self):
        from repro.core.alphabet import DECREASE_CRITICAL_POWER

        spec = three_band_spec()
        trajectory = spec.run(
            [CRITICAL, CRITICAL, DECREASE_CRITICAL_POWER, CRITICAL, CRITICAL]
        )
        assert not spec.is_forbidden(trajectory[-1])

    def test_mild_action_does_not_reset(self):
        """controlPower is not in the spec's alphabet: the count keeps
        climbing through mild interventions (that is the point)."""
        spec = three_band_spec()
        assert CONTROL_POWER not in spec.alphabet

    def test_closed_loop_budget_change_recoverable(self):
        """With the cyclic plant, the composed closed loop can handle
        an unbounded sequence of budget emergencies: critical -> hard
        drop -> critical -> hard drop -> ... never blocks and never
        reaches a forbidden state."""
        from repro.core.alphabet import DECREASE_CRITICAL_POWER, SWITCH_GAINS
        from repro.core.synthesis_flow import build_case_study_supervisor

        supervisor = build_case_study_supervisor().supervisor
        state = supervisor.initial
        for _ in range(5):  # five successive emergencies
            state = supervisor.step(state, CRITICAL)
            assert state is not None, "critical must stay enabled"
            for action in (SWITCH_GAINS, DECREASE_CRITICAL_POWER):
                nxt = supervisor.step(state, action)
                if nxt is not None:
                    state = nxt
