"""Tests for the five-step synthesis flow on the case study."""

import pytest

from repro.automata.automaton import Automaton
from repro.core.alphabet import (
    CONTROL_POWER,
    DECREASE_CRITICAL_POWER,
    INCREASE_BIG_POWER,
    case_study_alphabet,
)
from repro.core.plant_model import case_study_plant
from repro.core.specification import case_study_specification
from repro.core.synthesis_flow import (
    SynthesisFlowError,
    build_case_study_supervisor,
    synthesize_and_verify,
)


class TestCaseStudySupervisor:
    def test_is_verified(self, verified_supervisor):
        assert verified_supervisor.verified
        assert verified_supervisor.verification.nonblocking
        assert verified_supervisor.verification.controllable

    def test_supervisor_smaller_than_plant(self, verified_supervisor):
        assert len(verified_supervisor.supervisor) < len(
            verified_supervisor.plant
        )

    def test_synthesis_pruned_the_risky_mild_path(self, verified_supervisor):
        """The key formal result: after a second consecutive critical the
        supervisor must *not* offer the mild controlPower action (a third
        critical would hit the forbidden Threshold state) — only the hard
        decreaseCriticalPower survives."""
        supervisor = verified_supervisor.supervisor
        capping2 = [
            s
            for s in supervisor.states
            if s.name.split(".")[0] == "Capping2"
        ]
        assert capping2
        for state in capping2:
            enabled = {e.name for e in supervisor.enabled_events(state)}
            assert CONTROL_POWER not in enabled
            assert DECREASE_CRITICAL_POWER in enabled

    def test_mild_path_allowed_on_first_critical(self, verified_supervisor):
        supervisor = verified_supervisor.supervisor
        capping1 = [
            s for s in supervisor.states if s.name.startswith("Capping1.")
        ]
        assert capping1
        for state in capping1:
            enabled = {e.name for e in supervisor.enabled_events(state)}
            assert CONTROL_POWER in enabled

    def test_budget_increases_disabled_while_locked(self, verified_supervisor):
        supervisor = verified_supervisor.supervisor
        for state in supervisor.states:
            if state.name.endswith(".Locked"):
                enabled = {e.name for e in supervisor.enabled_events(state)}
                assert INCREASE_BIG_POWER not in enabled

    def test_some_states_pruned_for_controllability(self, verified_supervisor):
        assert len(verified_supervisor.synthesis.removed_uncontrollable) > 0

    def test_summary_mentions_checks(self, verified_supervisor):
        summary = verified_supervisor.summary()
        assert "nonblocking" in summary
        assert "PASS" in summary

    def test_ideal_state_reachable_from_everywhere(self, verified_supervisor):
        """Nonblocking in the paper's words: the marked 'ideal' state is
        reachable from every supervisor state."""
        from repro.automata.operations import coaccessible_states

        supervisor = verified_supervisor.supervisor
        assert supervisor.states <= coaccessible_states(supervisor)


class TestSynthesizeAndVerify:
    def test_unachievable_spec_raises(self):
        sigma = case_study_alphabet()
        plant = case_study_plant(sigma)
        # A spec whose initial state is forbidden is unachievable.
        impossible = Automaton("impossible", sigma)
        impossible.add_state("Bad", forbidden=True, initial=True)
        with pytest.raises(SynthesisFlowError):
            synthesize_and_verify(plant, impossible)

    def test_build_twice_is_consistent(self, verified_supervisor):
        again = build_case_study_supervisor()
        assert len(again.supervisor) == len(verified_supervisor.supervisor)
        assert (
            again.supervisor.transitions
            == verified_supervisor.supervisor.transitions
        )

    def test_case_study_spec_composes(self):
        spec = case_study_specification()
        plant = case_study_plant()
        result = synthesize_and_verify(plant, spec)
        assert result.verified
