"""Tests for scalable (N-cluster) supervisor synthesis."""

import pytest

from repro.core.scalable import (
    build_scalable_supervisor,
    decrease_power_event,
    increase_power_event,
    scalable_alphabet,
    scalable_plant,
    scalable_qos_tracking_plant,
    scalable_specification,
)


class TestAlphabet:
    def test_per_cluster_events(self):
        sigma = scalable_alphabet(3)
        for cluster in range(3):
            assert increase_power_event(cluster) in sigma
            assert decrease_power_event(cluster) in sigma
        assert "increasePower3" not in sigma

    def test_event_count_linear(self):
        assert len(scalable_alphabet(2)) == 8 + 4
        assert len(scalable_alphabet(8)) == 8 + 16

    def test_validation(self):
        with pytest.raises(ValueError):
            scalable_alphabet(0)


class TestScalablePlant:
    def test_qos_tracking_stays_two_states(self):
        for n in (1, 4, 16):
            assert len(scalable_qos_tracking_plant(n)) == 2

    def test_plant_state_count_constant(self):
        sizes = {n: len(scalable_plant(n)) for n in (2, 4, 8)}
        assert len(set(sizes.values())) == 1

    def test_plant_transitions_grow_linearly(self):
        t2 = len(scalable_plant(2).transitions)
        t4 = len(scalable_plant(4).transitions)
        t8 = len(scalable_plant(8).transitions)
        # constant slope per added cluster: (t8-t4) spans twice the
        # clusters of (t4-t2)
        assert t8 - t4 == 2 * (t4 - t2)


class TestScalableSupervisor:
    @pytest.mark.parametrize("n_clusters", [1, 2, 4, 8])
    def test_verified_for_any_cluster_count(self, n_clusters):
        result = build_scalable_supervisor(n_clusters)
        assert result.verified

    def test_supervisor_states_constant(self):
        sizes = {
            n: len(build_scalable_supervisor(n).supervisor)
            for n in (2, 4, 8)
        }
        assert len(set(sizes.values())) == 1

    def test_supervisor_transitions_linear(self):
        t = {
            n: len(build_scalable_supervisor(n).supervisor.transitions)
            for n in (2, 4, 8)
        }
        assert t[8] - t[4] == 2 * (t[4] - t[2])

    def test_budget_lock_enforced_at_scale(self):
        result = build_scalable_supervisor(4)
        supervisor = result.supervisor
        for state in supervisor.states:
            if state.name.endswith(".Locked"):
                enabled = {
                    e.name for e in supervisor.enabled_events(state)
                }
                for cluster in range(4):
                    assert increase_power_event(cluster) not in enabled

    def test_two_cluster_case_matches_structure_of_case_study(
        self, verified_supervisor
    ):
        scalable = build_scalable_supervisor(2)
        # Same state count as the hand-built case study (event names for
        # budget regulation differ, structure matches).
        assert len(scalable.supervisor) == len(
            verified_supervisor.supervisor
        )

    def test_specification_composes(self):
        spec = scalable_specification(4)
        assert any(spec.is_forbidden(s) for s in spec.states)
