"""Tests for the telemetry -> DES event abstraction."""

import numpy as np
import pytest

from repro.core.alphabet import CRITICAL, QOS_MET, QOS_NOT_MET, SAFE_POWER
from repro.core.events import EventAbstractor, ThreeBandThresholds
from repro.platform.soc import ClusterTelemetry, Telemetry


def telemetry(qos=60.0, big_power=3.0, little_power=0.2, time_s=0.0):
    def cluster(power):
        return ClusterTelemetry(
            frequency_ghz=1.0,
            voltage_v=1.0,
            active_cores=4,
            busy_core_equivalents=4.0,
            power_w=power,
            ips=1.0,
            per_core_ips=np.full(4, 0.25),
        )

    return Telemetry(
        time_s=time_s,
        qos_rate=qos,
        qos_raw=qos,
        big=cluster(big_power),
        little=cluster(little_power),
    )


def classify(abstractor, *, qos=60.0, chip=3.2, budget=5.0):
    return abstractor.classify(
        telemetry(qos=qos, big_power=chip - 0.2, little_power=0.2),
        qos_reference=60.0 if qos is None else 60.0,
        power_budget_w=budget,
    )


class TestThresholdValidation:
    def test_band_ordering(self):
        with pytest.raises(ValueError):
            ThreeBandThresholds(uncapping_fraction=1.1, capping_fraction=1.0)

    def test_qos_tolerance(self):
        with pytest.raises(ValueError):
            ThreeBandThresholds(qos_tolerance=0.0)

    def test_grace_and_dwell(self):
        with pytest.raises(ValueError):
            ThreeBandThresholds(escalation_grace=0)
        with pytest.raises(ValueError):
            ThreeBandThresholds(uncapping_dwell=0)


class TestQoSEvents:
    def test_qos_met_within_tolerance(self):
        abstractor = EventAbstractor()
        events = classify(abstractor, qos=58.5)  # 97% of 60 = 58.2
        assert QOS_MET in events

    def test_qos_not_met(self):
        abstractor = EventAbstractor()
        events = classify(abstractor, qos=50.0)
        assert QOS_NOT_MET in events

    def test_exactly_one_qos_event(self):
        abstractor = EventAbstractor()
        events = classify(abstractor)
        assert (QOS_MET in events) != (QOS_NOT_MET in events)


class TestPowerEvents:
    def test_critical_on_budget_violation(self):
        abstractor = EventAbstractor()
        events = classify(abstractor, chip=5.5, budget=5.0)
        assert events[0] == CRITICAL
        assert abstractor.capping_active

    def test_no_critical_inside_band(self):
        abstractor = EventAbstractor()
        events = classify(abstractor, chip=4.9, budget=5.0)
        assert CRITICAL not in events

    def test_no_spurious_safe_power_without_episode(self):
        abstractor = EventAbstractor()
        events = classify(abstractor, chip=1.0, budget=5.0)
        assert SAFE_POWER not in events

    def test_safe_power_after_dwell(self):
        th = ThreeBandThresholds(uncapping_dwell=3)
        abstractor = EventAbstractor(th)
        classify(abstractor, chip=5.5, budget=5.0)  # critical
        seen = []
        for _ in range(4):
            seen.append(classify(abstractor, chip=3.0, budget=5.0))
        flat = [e for events in seen for e in events]
        assert SAFE_POWER in flat
        # but not before the dwell expires
        assert SAFE_POWER not in seen[0]
        assert SAFE_POWER not in seen[1]
        assert not abstractor.capping_active

    def test_dwell_reset_by_band_reentry(self):
        th = ThreeBandThresholds(uncapping_dwell=3)
        abstractor = EventAbstractor(th)
        classify(abstractor, chip=5.5, budget=5.0)
        classify(abstractor, chip=3.0, budget=5.0)
        classify(abstractor, chip=3.0, budget=5.0)
        classify(abstractor, chip=4.8, budget=5.0)  # back inside band
        events = classify(abstractor, chip=3.0, budget=5.0)
        assert SAFE_POWER not in events  # counter restarted


class TestEscalation:
    def test_no_escalation_during_grace(self):
        th = ThreeBandThresholds(escalation_grace=3)
        abstractor = EventAbstractor(th)
        assert CRITICAL in classify(abstractor, chip=5.5, budget=5.0)
        # grace period: still above cap but no new critical
        assert CRITICAL not in classify(abstractor, chip=5.4, budget=5.0)
        assert CRITICAL not in classify(abstractor, chip=5.4, budget=5.0)

    def test_escalation_after_grace_with_persistent_overcap(self):
        th = ThreeBandThresholds(escalation_grace=3)
        abstractor = EventAbstractor(th)
        classify(abstractor, chip=5.5, budget=5.0)
        seen = []
        for _ in range(4):
            seen.append(CRITICAL in classify(abstractor, chip=5.4, budget=5.0))
        assert any(seen)

    def test_single_overcap_blip_does_not_escalate(self):
        th = ThreeBandThresholds(escalation_grace=2)
        abstractor = EventAbstractor(th)
        classify(abstractor, chip=5.5, budget=5.0)
        classify(abstractor, chip=4.5, budget=5.0)
        classify(abstractor, chip=4.5, budget=5.0)
        # one isolated reading above cap after the grace: streak < 2
        events = classify(abstractor, chip=5.3, budget=5.0)
        assert CRITICAL not in events

    def test_reset(self):
        abstractor = EventAbstractor()
        classify(abstractor, chip=5.5, budget=5.0)
        abstractor.reset()
        assert not abstractor.capping_active
        assert abstractor.events_emitted == 0
