"""Tests for policy-bundle persistence (the firmware-upgrade path)."""

import json

import numpy as np
import pytest

from repro.core.persistence import (
    BUNDLE_MANIFEST,
    BundleError,
    PolicyBundle,
    load_bundle,
    save_bundle,
)
from repro.managers.bundle import bundle_from_design


@pytest.fixture(scope="module")
def design_bundle(verified_supervisor, big_system, little_system):
    return bundle_from_design(
        verified_supervisor,
        {"big": big_system, "little": little_system},
    )


class TestSaveLoad:
    def test_round_trip_structure(self, design_bundle, tmp_path):
        save_bundle(design_bundle, tmp_path / "bundle")
        loaded = load_bundle(tmp_path / "bundle")
        assert len(loaded.supervisor) == len(design_bundle.supervisor)
        assert set(loaded.gain_libraries) == {"big", "little"}
        assert loaded.gain_libraries["big"].names() == ("power", "qos")

    def test_round_trip_gain_matrices(self, design_bundle, tmp_path):
        save_bundle(design_bundle, tmp_path / "bundle")
        loaded = load_bundle(tmp_path / "bundle")
        original = design_bundle.gain_libraries["big"].get("qos")
        restored = loaded.gain_libraries["big"].get("qos")
        assert np.allclose(original.K_state, restored.K_state)
        assert np.allclose(original.K_integral, restored.K_integral)
        assert np.allclose(original.L, restored.L)
        assert np.allclose(original.model.A, restored.model.A)
        assert restored.model.dt == original.model.dt
        assert np.allclose(
            original.integral_mask, restored.integral_mask
        )

    def test_round_trip_operating_points(self, design_bundle, tmp_path):
        save_bundle(design_bundle, tmp_path / "bundle")
        loaded = load_bundle(tmp_path / "bundle")
        original = design_bundle.operating_points["big"]
        restored = loaded.operating_points["big"]
        assert np.allclose(original.u, restored.u)
        assert np.allclose(original.y_scale, restored.y_scale)

    def test_loaded_bundle_verifies(self, design_bundle, tmp_path):
        save_bundle(design_bundle, tmp_path / "bundle")
        loaded = load_bundle(tmp_path / "bundle")
        assert loaded.verify()

    def test_bundle_without_plant_verifies_nonblocking(
        self, design_bundle, tmp_path
    ):
        stripped = PolicyBundle(
            supervisor=design_bundle.supervisor,
            plant=None,
            gain_libraries=design_bundle.gain_libraries,
            operating_points=design_bundle.operating_points,
        )
        save_bundle(stripped, tmp_path / "noplant")
        loaded = load_bundle(tmp_path / "noplant")
        assert loaded.plant is None
        assert loaded.verify()


class TestErrorHandling:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(BundleError, match=BUNDLE_MANIFEST):
            load_bundle(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / BUNDLE_MANIFEST).write_text("{not json")
        with pytest.raises(BundleError, match="corrupt"):
            load_bundle(tmp_path)

    def test_wrong_format_version(self, design_bundle, tmp_path):
        save_bundle(design_bundle, tmp_path)
        manifest = json.loads((tmp_path / BUNDLE_MANIFEST).read_text())
        manifest["format"] = "other/9"
        (tmp_path / BUNDLE_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="unsupported"):
            load_bundle(tmp_path)

    def test_missing_arrays_detected(self, design_bundle, tmp_path):
        save_bundle(design_bundle, tmp_path)
        manifest = json.loads((tmp_path / BUNDLE_MANIFEST).read_text())
        manifest["subsystems"]["big"]["gain_sets"].append("ghost")
        (tmp_path / BUNDLE_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="missing array"):
            load_bundle(tmp_path)


class TestDeployedBundleRuns:
    def test_loaded_gains_drive_a_controller(
        self, design_bundle, tmp_path
    ):
        """The firmware-upgrade story end to end: a freshly-loaded
        bundle instantiates a working closed-loop controller."""
        from repro.control.lqg import LQGServoController
        from repro.managers.mimo import cluster_actuator_limits
        from repro.platform.soc import ExynosSoC
        from repro.workloads import x264

        save_bundle(design_bundle, tmp_path / "deploy")
        loaded = load_bundle(tmp_path / "deploy")
        soc = ExynosSoC(qos_app=x264())
        soc.big.set_frequency(1.0)
        controller = LQGServoController(
            loaded.gain_libraries["big"].get("qos"),
            loaded.operating_points["big"],
            cluster_actuator_limits(soc.big),
        )
        controller.set_reference([60.0, 4.0])
        tail = []
        for k in range(150):
            telemetry = soc.step()
            u = controller.step(
                [telemetry.qos_rate, telemetry.big.power_w]
            )
            soc.big.set_frequency(float(u[0]))
            if k > 110:
                tail.append(telemetry.qos_rate)
        assert np.mean(tail) == pytest.approx(60.0, rel=0.06)
