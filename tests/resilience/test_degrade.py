"""Unit tests for the graceful-degradation policy."""

import pytest

from repro.resilience.degrade import DegradationPolicy, DegradeConfig
from repro.resilience.guard import SensorHealth


class FakeOpps:
    min_frequency = 0.2


class FakeCluster:
    def __init__(self, name):
        self.name = name
        self.opps = FakeOpps()
        self.frequency_requests = []

    def set_frequency(self, frequency_ghz):
        self.frequency_requests.append(frequency_ghz)
        return frequency_ghz


class FakeSoC:
    def __init__(self):
        self.big = FakeCluster("big")
        self.little = FakeCluster("little")


class FakeManager:
    def __init__(self):
        self.soc = FakeSoC()
        self.big_power_ref_w = 4.0
        self.little_power_ref_w = 0.3

    def actuation_surface(self, cluster):
        return cluster


class FakeGuard:
    def __init__(self):
        self.states = {
            "qos": SensorHealth.HEALTHY,
            "big_power": SensorHealth.HEALTHY,
            "little_power": SensorHealth.HEALTHY,
        }

    def state(self, channel):
        return self.states[channel]


class FakeMonitor:
    def __init__(self):
        self.violations = []


class FakeTelemetry:
    def __init__(self, time_s):
        self.time_s = time_s


def epochs(policy, manager, n, *, guard=None, monitor=None, start=0):
    for k in range(n):
        policy.apply(
            manager,
            FakeTelemetry(0.05 * (start + k + 1)),
            guard=guard,
            monitor=monitor,
        )
    return start + n


class TestConfig:
    def test_zero_release_epochs_rejected(self):
        with pytest.raises(ValueError):
            DegradeConfig(release_clean_epochs=0)


class TestTriggers:
    def test_idle_without_triggers(self):
        policy = DegradationPolicy()
        manager = FakeManager()
        epochs(policy, manager, 5, guard=FakeGuard(), monitor=FakeMonitor())
        assert not policy.engaged
        assert policy.events == []
        assert manager.soc.big.frequency_requests == []

    def test_quarantined_power_channel_engages(self):
        policy = DegradationPolicy()
        manager = FakeManager()
        guard = FakeGuard()
        guard.states["big_power"] = SensorHealth.QUARANTINED
        epochs(policy, manager, 1, guard=guard)
        assert policy.engaged
        assert policy.events[0].action == "engage"
        assert "big_power" in policy.events[0].reason

    def test_quarantined_qos_channel_does_not_engage(self):
        # QoS loss is a performance problem, not a safety problem.
        policy = DegradationPolicy()
        guard = FakeGuard()
        guard.states["qos"] = SensorHealth.QUARANTINED
        epochs(policy, FakeManager(), 1, guard=guard)
        assert not policy.engaged

    def test_fresh_violation_engages(self):
        policy = DegradationPolicy()
        monitor = FakeMonitor()
        monitor.violations.append(object())
        epochs(policy, FakeManager(), 1, monitor=monitor)
        assert policy.engaged

    def test_old_violations_do_not_retrigger_after_release(self):
        cfg = DegradeConfig(release_clean_epochs=2)
        policy = DegradationPolicy(cfg)
        manager = FakeManager()
        monitor = FakeMonitor()
        monitor.violations.append(object())
        k = epochs(policy, manager, 1, monitor=monitor)
        assert policy.engaged
        k = epochs(policy, manager, 2, monitor=monitor, start=k)
        assert not policy.engaged
        epochs(policy, manager, 3, monitor=monitor, start=k)
        assert not policy.engaged
        assert policy.engage_count == 1


class TestSafeState:
    def test_safe_state_enforced_every_engaged_epoch(self):
        policy = DegradationPolicy()
        manager = FakeManager()
        guard = FakeGuard()
        guard.states["little_power"] = SensorHealth.QUARANTINED
        epochs(policy, manager, 3, guard=guard)
        assert manager.soc.big.frequency_requests == [FakeOpps.min_frequency] * 3
        assert manager.soc.little.frequency_requests == [FakeOpps.min_frequency] * 3
        assert manager.big_power_ref_w == DegradeConfig().safe_big_power_ref_w
        assert manager.little_power_ref_w == DegradeConfig().safe_little_power_ref_w

    def test_manager_without_reference_attributes_is_fine(self):
        policy = DegradationPolicy()
        manager = FakeManager()
        del manager.big_power_ref_w
        del manager.little_power_ref_w
        guard = FakeGuard()
        guard.states["big_power"] = SensorHealth.QUARANTINED
        epochs(policy, manager, 1, guard=guard)
        assert policy.engaged


class TestRelease:
    def test_releases_after_clean_epochs(self):
        cfg = DegradeConfig(release_clean_epochs=4)
        policy = DegradationPolicy(cfg)
        manager = FakeManager()
        guard = FakeGuard()
        guard.states["big_power"] = SensorHealth.QUARANTINED
        k = epochs(policy, manager, 2, guard=guard)
        guard.states["big_power"] = SensorHealth.RECOVERING
        k = epochs(policy, manager, 3, guard=guard, start=k)
        assert policy.engaged  # not yet clean for long enough
        epochs(policy, manager, 1, guard=guard, start=k)
        assert not policy.engaged
        assert [e.action for e in policy.events] == ["engage", "release"]

    def test_retrigger_during_countdown_restarts_it(self):
        cfg = DegradeConfig(release_clean_epochs=3)
        policy = DegradationPolicy(cfg)
        manager = FakeManager()
        guard = FakeGuard()
        guard.states["big_power"] = SensorHealth.QUARANTINED
        k = epochs(policy, manager, 1, guard=guard)
        guard.states["big_power"] = SensorHealth.HEALTHY
        k = epochs(policy, manager, 2, guard=guard, start=k)
        guard.states["big_power"] = SensorHealth.QUARANTINED
        k = epochs(policy, manager, 1, guard=guard, start=k)
        guard.states["big_power"] = SensorHealth.HEALTHY
        k = epochs(policy, manager, 2, guard=guard, start=k)
        assert policy.engaged
        assert policy.engage_count == 1  # one continuous engagement
