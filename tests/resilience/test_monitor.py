"""Unit tests for the runtime invariant monitor.

The replay tests use the real case-study supervisor (session fixture)
with a *fake* engine whose trace records are hand-crafted: valid
records must replay cleanly, tampered records must trip the matching
rule.
"""

import pytest

from repro.core.alphabet import (
    CONTROL_POWER,
    CRITICAL,
    INCREASE_BIG_POWER,
)
from repro.core.supervisor import SupervisorTrace
from repro.resilience.monitor import (
    InvariantMonitor,
    MonitorConfig,
)


class FakeGoals:
    def __init__(self, power_budget_w=5.0):
        self.power_budget_w = power_budget_w


class FakeEngine:
    def __init__(self):
        self.trace = []


class FakeVerified:
    def __init__(self, supervisor):
        self.supervisor = supervisor


class FakeManager:
    """Attribute surface the monitor duck-types against."""

    name = "fake"

    def __init__(self, *, supervisor=None, big_ref_w=None, little_ref_w=None):
        self.goals = FakeGoals()
        if supervisor is not None:
            self.engine = FakeEngine()
            self.verified = FakeVerified(supervisor)
        if big_ref_w is not None:
            self.big_power_ref_w = big_ref_w
        if little_ref_w is not None:
            self.little_power_ref_w = little_ref_w


class FakeTelemetry:
    def __init__(self, time_s):
        self.time_s = time_s


def record(time_s, observed=(), executed=(), state=""):
    return SupervisorTrace(
        time_s=time_s,
        observed=tuple(observed),
        ignored=(),
        executed=tuple(executed),
        state=state,
    )


@pytest.fixture()
def supervisor(verified_supervisor):
    return verified_supervisor.supervisor


@pytest.fixture()
def states(supervisor):
    """The critical -> controlPower -> critical escalation path."""
    s0 = supervisor.initial.name
    s1 = supervisor.step(s0, CRITICAL).name
    s2 = supervisor.step(s1, CONTROL_POWER).name
    s3 = supervisor.step(s2, CRITICAL).name
    return s0, s1, s2, s3


def rules(monitor):
    return [v.rule for v in monitor.violations]


class TestConfig:
    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError):
            MonitorConfig(grace_epochs=-1)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            MonitorConfig(sum_slack_w=-0.1)


class TestReplay:
    def check(self, manager):
        monitor = InvariantMonitor()
        monitor.check(manager, FakeTelemetry(0.1))
        return monitor

    def test_valid_invocation_replays_cleanly(self, supervisor, states):
        _, _, s2, _ = states
        manager = FakeManager(supervisor=supervisor)
        manager.engine.trace.append(
            record(0.1, observed=(CRITICAL,), executed=(CONTROL_POWER,), state=s2)
        )
        monitor = self.check(manager)
        assert monitor.violations == []
        assert monitor.capping_episode

    def test_disabled_action_trips_i1(self, supervisor, states):
        # increase* actions are only enabled in Safe states; executing
        # one right after a critical is the core safety violation.
        _, s1, _, _ = states
        manager = FakeManager(supervisor=supervisor)
        manager.engine.trace.append(
            record(0.1, observed=(CRITICAL,), executed=(INCREASE_BIG_POWER,), state=s1)
        )
        monitor = self.check(manager)
        assert "RES-I1" in rules(monitor)

    def test_budget_raise_during_episode_trips_i2(self, supervisor, states):
        _, s1, _, _ = states
        manager = FakeManager(supervisor=supervisor)
        manager.engine.trace.append(
            record(0.1, observed=(CRITICAL,), executed=(INCREASE_BIG_POWER,), state=s1)
        )
        monitor = self.check(manager)
        assert "RES-I2" in rules(monitor)

    def test_unanswered_escalation_trips_i3(self, supervisor, states):
        _, _, s2, s3 = states
        manager = FakeManager(supervisor=supervisor)
        manager.engine.trace.append(
            record(0.1, observed=(CRITICAL,), executed=(CONTROL_POWER,), state=s2)
        )
        manager.engine.trace.append(
            record(0.2, observed=(CRITICAL,), executed=(), state=s3)
        )
        monitor = self.check(manager)
        assert rules(monitor) == ["RES-I3"]

    def test_end_state_mismatch_trips_i0_and_resyncs(self, supervisor, states):
        _, s1, _, _ = states
        manager = FakeManager(supervisor=supervisor)
        manager.engine.trace.append(
            record(0.1, observed=(CRITICAL,), executed=(), state="Bogus.State")
        )
        monitor = self.check(manager)
        assert rules(monitor) == ["RES-I0"]
        # A follow-up valid record starting from the *recorded* state
        # must not cascade into more divergence reports.
        manager.engine.trace.append(
            record(0.2, observed=(), executed=(), state="Bogus.State")
        )
        monitor.check(manager, FakeTelemetry(0.2))
        assert rules(monitor) == ["RES-I0"]

    def test_records_are_consumed_once(self, supervisor, states):
        _, _, s2, _ = states
        manager = FakeManager(supervisor=supervisor)
        manager.engine.trace.append(
            record(0.1, observed=(CRITICAL,), executed=(CONTROL_POWER,), state=s2)
        )
        monitor = self.check(manager)
        monitor.check(manager, FakeTelemetry(0.2))
        monitor.check(manager, FakeTelemetry(0.3))
        assert monitor.violations == []


class TestNumericInvariants:
    def test_manager_without_references_is_skipped(self):
        monitor = InvariantMonitor()
        monitor.check(FakeManager(), FakeTelemetry(0.1))
        assert monitor.violations == []

    def test_reference_below_floor_trips_i4(self):
        monitor = InvariantMonitor()
        manager = FakeManager(big_ref_w=0.1, little_ref_w=0.3)
        monitor.check(manager, FakeTelemetry(0.1))
        assert rules(monitor) == ["RES-I4"]

    def test_floor_reference_is_fine(self):
        cfg = MonitorConfig()
        monitor = InvariantMonitor(cfg)
        manager = FakeManager(
            big_ref_w=cfg.big_power_floor_w,
            little_ref_w=cfg.little_power_floor_w,
        )
        monitor.check(manager, FakeTelemetry(0.1))
        assert monitor.violations == []

    def test_reference_sum_over_ceiling_trips_i5_after_grace(self):
        cfg = MonitorConfig(grace_epochs=3)
        monitor = InvariantMonitor(cfg)
        monitor.capping_episode = True
        # Budget 5 W -> ceiling 0.96 * 5 + 0.15 = 4.95 W; refs sum 5.5 W.
        manager = FakeManager(big_ref_w=5.0, little_ref_w=0.5)
        for k in range(6):
            monitor.check(manager, FakeTelemetry(0.05 * (k + 1)))
        assert "RES-I5" in rules(monitor)
        # Suppressed during the grace window (first check resets it on
        # the initial budget observation).
        assert monitor.violations[0].time_s > 0.05 * cfg.grace_epochs

    def test_no_i5_outside_capping_episode(self):
        monitor = InvariantMonitor(MonitorConfig(grace_epochs=0))
        manager = FakeManager(big_ref_w=5.0, little_ref_w=0.5)
        for k in range(4):
            monitor.check(manager, FakeTelemetry(0.05 * (k + 1)))
        assert monitor.violations == []

    def test_budget_change_resets_grace(self):
        cfg = MonitorConfig(grace_epochs=2)
        monitor = InvariantMonitor(cfg)
        monitor.capping_episode = True
        manager = FakeManager(big_ref_w=5.0, little_ref_w=0.5)
        monitor.check(manager, FakeTelemetry(0.05))
        monitor.check(manager, FakeTelemetry(0.10))
        manager.goals.power_budget_w = 3.3  # emergency drop: new grace
        monitor.check(manager, FakeTelemetry(0.15))
        monitor.check(manager, FakeTelemetry(0.20))
        assert monitor.violations == []
        monitor.check(manager, FakeTelemetry(0.25))
        assert "RES-I5" in rules(monitor)

    def test_violation_count_by_rule(self):
        monitor = InvariantMonitor()
        manager = FakeManager(big_ref_w=0.1, little_ref_w=0.01)
        monitor.check(manager, FakeTelemetry(0.1))
        assert monitor.violation_count() == 2
        assert monitor.violation_count("RES-I4") == 2
        assert monitor.violation_count("RES-I1") == 0
