"""Tests for the runtime resilience subsystem."""
