"""Tests for the fault-campaign harness and its CLI."""

import json

import pytest

from repro.resilience.campaign import (
    CampaignConfig,
    run_campaign,
)
from repro.resilience.cli import main

TINY = CampaignConfig(
    managers=("SPECTR",),
    sensor_kinds=("dropout",),
    actuator_kinds=("reject",),
    phase_duration_s=1.0,
    fault_start_s=0.3,
    fault_duration_s=0.5,
)


class TestConfig:
    def test_unknown_manager_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(managers=("SPECTR", "nope"))

    def test_bad_fault_window_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(fault_duration_s=0.0)

    def test_smoke_is_spectr_only(self):
        smoke = CampaignConfig.smoke()
        assert smoke.managers == ("SPECTR",)
        assert smoke.fault_end_s <= 3 * smoke.phase_duration_s


class TestCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(TINY)

    def test_one_run_per_fault_kind_plus_baseline(self, result):
        assert len(result.runs) == 2
        assert set(result.baselines) == {"SPECTR"}
        assert {r.fault_kind for r in result.runs} == {"dropout", "reject"}
        assert result.baselines["SPECTR"].fault_class == "none"

    def test_zero_violations(self, result):
        assert result.total_violations == 0

    def test_dropout_run_exercised_the_guard(self, result):
        dropout = next(r for r in result.runs if r.fault_kind == "dropout")
        assert dropout.guard_substitutions > 0
        assert dropout.guard_quarantines >= 1

    def test_json_is_deterministic_across_runs(self):
        first = run_campaign(TINY).to_json()
        second = run_campaign(TINY).to_json()
        assert first == second

    def test_json_payload_is_well_formed(self, result):
        payload = json.loads(result.to_json())
        assert payload["total_violations"] == 0
        assert payload["config"]["seed"] == TINY.seed
        assert len(payload["runs"]) == 2
        for run in payload["runs"]:
            assert set(run) >= {
                "manager",
                "fault_kind",
                "qos_mae",
                "violations_by_rule",
            }

    def test_markdown_report_structure(self, result):
        report = result.format_markdown()
        assert "# Fault campaign" in report
        assert "| manager |" in report
        assert "total invariant violations: 0" in report


class TestCLI:
    def test_smoke_exits_zero(self, capsys, tmp_path):
        json_path = tmp_path / "campaign.json"
        code = main(["--smoke", "--json", str(json_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "total invariant violations: 0" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["total_violations"] == 0
        # SPECTR x (4 sensor + 5 actuator kinds)
        assert len(payload["runs"]) == 9

    def test_smoke_is_seed_deterministic(self, capsys, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["--smoke", "--json", str(first)]) == 0
        assert main(["--smoke", "--json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_text(encoding="utf-8") == second.read_text(
            encoding="utf-8"
        )

    def test_no_degrade_flag(self, capsys):
        code = main(["--smoke", "--no-degrade"])
        capsys.readouterr()
        assert code == 0
