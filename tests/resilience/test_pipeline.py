"""Integration tests: the resilience pipeline around real managers.

The headline guarantees from the issue:

* SPECTR records **zero invariant violations under every fault kind**
  (sensor and actuator), and so do the other three managers;
* a deliberately broken manager that raises its budget references
  during a capping episode IS flagged;
* under a 2 s big-cluster power-sensor dropout, SPECTR with the
  telemetry guard keeps QoS near the reference and recovers after the
  fault clears — while the monitor asserts no disabled action was ever
  executed.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    MANAGER_NAMES,
    identified_systems,
    manager_factory,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import three_phase_scenario
from repro.managers.spectr import SPECTRManager
from repro.platform.faults import (
    ActuatorFaultModel,
    FaultModel,
    inject_power_sensor_fault,
)
from repro.resilience.campaign import CampaignConfig, _run_one
from repro.resilience.guard import TelemetryGuard
from repro.resilience.monitor import InvariantMonitor
from repro.resilience.pipeline import ResiliencePipeline
from repro.workloads import x264

ALL_FAULT_KINDS = FaultModel.VALID_KINDS + ActuatorFaultModel.VALID_KINDS

SHORT = CampaignConfig(
    managers=MANAGER_NAMES,
    phase_duration_s=2.0,
    fault_start_s=0.6,
    fault_duration_s=1.0,
)


class TestZeroViolations:
    @pytest.mark.parametrize("kind", ALL_FAULT_KINDS)
    def test_spectr_under_every_fault_kind(self, kind):
        run = _run_one("SPECTR", SHORT, kind)
        assert run.violation_count == 0, run.violations_by_rule

    @pytest.mark.parametrize("name", MANAGER_NAMES)
    @pytest.mark.parametrize("kind", ["dropout", "reject"])
    def test_every_manager_stays_clean(self, name, kind):
        run = _run_one(name, SHORT, kind)
        assert run.violation_count == 0, run.violations_by_rule


class TestBrokenManagerIsFlagged:
    def test_budget_raising_spectr_trips_the_monitor(self, verified_supervisor):
        # A manager that bypasses the supervisor and inflates its own
        # power reference every epoch: the references keep climbing
        # through the emergency capping episode, which the numeric
        # RES-I5 shadow invariant must flag.
        class BudgetRaisingSPECTR(SPECTRManager):
            def _control(self, telemetry):
                super()._control(telemetry)
                self.big_power_ref_w += 0.5

        systems = identified_systems()
        monitor = InvariantMonitor()

        def factory(soc, goals):
            return BudgetRaisingSPECTR(
                soc,
                goals,
                big_system=systems.big,
                little_system=systems.little,
                verified_supervisor=verified_supervisor,
            )

        def manager_setup(manager):
            manager.attach_resilience(ResiliencePipeline(monitor=monitor))

        trace = run_scenario(
            factory,
            x264(),
            three_phase_scenario(phase_duration_s=2.0),
            seed=2018,
            manager_setup=manager_setup,
        )
        rules = {v.rule for v in trace.invariant_violations}
        assert "RES-I5" in rules


class TestDropoutRecovery:
    @pytest.fixture(scope="class")
    def traces(self):
        """Baseline and 2 s big power dropout runs (guard + monitor)."""
        systems = identified_systems()
        scenario = three_phase_scenario()  # 5 s phases

        def run(with_fault):
            def soc_setup(soc):
                if with_fault:
                    inject_power_sensor_fault(
                        soc, "big", FaultModel("dropout", 1.0, 3.0)
                    )

            pipeline = ResiliencePipeline(
                guard=TelemetryGuard(), monitor=InvariantMonitor()
            )

            def manager_setup(manager):
                manager.attach_resilience(pipeline)

            return run_scenario(
                manager_factory("SPECTR", systems),
                x264(),
                scenario,
                seed=2018,
                soc_setup=soc_setup,
                manager_setup=manager_setup,
            )

        return run(False), run(True)

    def window_mae(self, trace, lo_s, hi_s):
        sel = (trace.times >= lo_s) & (trace.times < hi_s)
        return float(np.abs(trace.qos - trace.qos_reference)[sel].mean())

    def test_no_disabled_action_ever_executes(self, traces):
        _, faulty = traces
        assert faulty.invariant_violations == []

    def test_guard_quarantines_and_recovers_the_sensor(self, traces):
        _, faulty = traces
        transitions = [
            e.detail for e in faulty.guard_events if e.kind == "transition"
        ]
        assert any(t.startswith("suspect->quarantined") for t in transitions)
        assert any(t.startswith("recovering->healthy") for t in transitions)
        substitutions = [
            e for e in faulty.guard_events if e.kind == "substituted"
        ]
        assert len(substitutions) >= 20
        assert all(e.sensor == "big_power" for e in substitutions)

    def test_qos_stays_closed_loop_through_the_dropout(self, traces):
        base, faulty = traces
        # During the fault window the observer substitute keeps the
        # loop closed: no worse than 1 QoS unit off the clean run.
        assert self.window_mae(faulty, 1.0, 3.0) <= (
            self.window_mae(base, 1.0, 3.0) + 1.0
        )

    def test_qos_recovers_after_the_fault_clears(self, traces):
        base, faulty = traces
        recovered = self.window_mae(faulty, 4.0, 5.0)
        assert recovered <= self.window_mae(base, 4.0, 5.0) + 1.0
        assert recovered <= 6.0  # within 10 % of the 60 FPS reference


class TestTraceSurfacing:
    def test_plain_run_has_empty_resilience_fields(self, big_system, little_system):
        from repro.managers.mm import mm_perf

        trace = run_scenario(
            lambda soc, goals: mm_perf(
                soc, goals, big_system=big_system, little_system=little_system
            ),
            x264(),
            three_phase_scenario(phase_duration_s=1.0),
            seed=3,
        )
        assert trace.guard_events == []
        assert trace.invariant_violations == []
        assert trace.degrade_events == []
