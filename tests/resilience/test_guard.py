"""Unit tests for the telemetry guard."""

import math

import numpy as np
import pytest

from repro.platform.soc import ClusterTelemetry, Telemetry
from repro.resilience.guard import (
    CHANNELS,
    GuardConfig,
    SensorHealth,
    TelemetryGuard,
)


class FakeManager:
    """Just enough manager surface for the guard: observer estimates."""

    def __init__(self, estimates=None):
        self._estimates = dict(estimates or {})
        self.estimate_calls = 0

    def observer_estimates(self):
        self.estimate_calls += 1
        return dict(self._estimates)


def cluster_reading(power_w):
    return ClusterTelemetry(
        frequency_ghz=1.0,
        voltage_v=1.0,
        active_cores=4,
        busy_core_equivalents=2.0,
        power_w=power_w,
        ips=1.0e9,
        per_core_ips=np.zeros(4, dtype=float),
    )


def sample(time_s, qos=60.0, big_w=2.0, little_w=0.3):
    return Telemetry(
        time_s=time_s,
        qos_rate=qos,
        qos_raw=qos,
        big=cluster_reading(big_w),
        little=cluster_reading(little_w),
    )


class TestConfig:
    def test_bad_epoch_counts_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(stuck_epochs=0)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(qos_range=(5.0, 5.0))

    def test_negative_stuck_floor_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(stuck_detection_floor=-0.1)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig().range_for("thermal")


class TestCleanPassThrough:
    def test_clean_sample_is_returned_unchanged(self):
        guard = TelemetryGuard()
        manager = FakeManager()
        telemetry = sample(0.05)
        assert guard.filter(manager, telemetry) is telemetry
        assert guard.events == []
        assert manager.estimate_calls == 0

    def test_all_channels_start_healthy(self):
        guard = TelemetryGuard()
        assert guard.health_states() == {
            name: SensorHealth.HEALTHY for name in CHANNELS
        }


class TestDirtyDetection:
    def test_nan_is_substituted_with_observer_estimate(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": 2.2})
        repaired = guard.filter(manager, sample(0.05, big_w=math.nan))
        assert repaired.big.power_w == pytest.approx(2.2)
        assert not math.isnan(repaired.chip_power_w)
        kinds = [e.kind for e in guard.events]
        assert "dirty" in kinds and "substituted" in kinds
        assert guard.state("big_power") == SensorHealth.SUSPECT

    def test_dropout_zero_is_out_of_range(self):
        guard = TelemetryGuard()
        repaired = guard.filter(FakeManager({"big_power": 2.1}), sample(0.05, big_w=0.0))
        assert repaired.big.power_w == pytest.approx(2.1)
        assert guard.events[0].detail == "out-of-range"

    def test_inf_qos_is_caught(self):
        guard = TelemetryGuard()
        repaired = guard.filter(FakeManager({"qos": 58.0}), sample(0.05, qos=math.inf))
        assert repaired.qos_rate == pytest.approx(58.0)

    def test_stale_clock_marks_every_channel_dirty(self):
        guard = TelemetryGuard()
        manager = FakeManager({"qos": 60.0, "big_power": 2.0, "little_power": 0.3})
        guard.filter(manager, sample(0.05))
        guard.filter(manager, sample(0.05))  # clock did not advance
        stale = [e for e in guard.events if e.detail == "stale"]
        assert sorted(e.sensor for e in stale) == sorted(CHANNELS)

    def test_stuck_value_flagged_above_floor(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": 2.4})
        for k in range(8):
            # big power frozen at 2.5 W; other channels wiggle.
            guard.filter(
                manager, sample(0.05 * (k + 1), qos=60.0 + 0.1 * k, big_w=2.5)
            )
        stuck = [e for e in guard.events if e.detail == "stuck"]
        assert stuck and all(e.sensor == "big_power" for e in stuck)

    def test_quantized_small_reading_is_not_stuck(self):
        # A 0.135 W little rail legitimately repeats its 5 mW step.
        guard = TelemetryGuard()
        manager = FakeManager()
        for k in range(12):
            telemetry = guard.filter(
                manager,
                sample(
                    0.05 * (k + 1),
                    qos=60.0 + 0.1 * k,
                    big_w=2.0 + 0.01 * k,
                    little_w=0.135,
                ),
            )
        assert telemetry.little.power_w == pytest.approx(0.135)
        assert guard.events == []


class TestStateMachine:
    def run_dirty(self, guard, manager, n, start=0):
        for k in range(n):
            guard.filter(manager, sample(0.05 * (start + k + 1), big_w=0.0))
        return start + n

    def run_clean(self, guard, manager, n, start=0):
        for k in range(n):
            guard.filter(
                manager,
                sample(0.05 * (start + k + 1), qos=60.0 + 0.01 * k, big_w=2.0 + 0.01 * k),
            )
        return start + n

    def test_suspect_recovers_on_one_clean_reading(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": 2.0})
        k = self.run_dirty(guard, manager, 1)
        assert guard.state("big_power") == SensorHealth.SUSPECT
        self.run_clean(guard, manager, 1, start=k)
        assert guard.state("big_power") == SensorHealth.HEALTHY

    def test_persistent_dirt_quarantines(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": 2.0})
        self.run_dirty(guard, manager, 3)
        assert guard.is_quarantined("big_power")

    def test_quarantined_channel_substitutes_clean_readings(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": 2.2})
        k = self.run_dirty(guard, manager, 3)
        repaired = guard.filter(manager, sample(0.05 * (k + 1), big_w=1.9))
        assert repaired.big.power_w == pytest.approx(2.2)

    def test_full_recovery_path(self):
        cfg = GuardConfig()
        guard = TelemetryGuard(cfg)
        manager = FakeManager({"big_power": 2.0})
        k = self.run_dirty(guard, manager, 3)
        k = self.run_clean(guard, manager, cfg.recover_clean_epochs, start=k)
        assert guard.state("big_power") == SensorHealth.RECOVERING
        self.run_clean(guard, manager, cfg.promote_clean_epochs, start=k)
        assert guard.state("big_power") == SensorHealth.HEALTHY

    def test_dirt_during_recovery_requarantines(self):
        cfg = GuardConfig()
        guard = TelemetryGuard(cfg)
        manager = FakeManager({"big_power": 2.0})
        k = self.run_dirty(guard, manager, 3)
        k = self.run_clean(guard, manager, cfg.recover_clean_epochs, start=k)
        self.run_dirty(guard, manager, 1, start=k)
        assert guard.is_quarantined("big_power")


class TestSubstitutionFallbacks:
    def test_falls_back_to_last_good_without_estimate(self):
        guard = TelemetryGuard()
        manager = FakeManager()  # no observer estimates
        guard.filter(manager, sample(0.05, big_w=2.34))
        repaired = guard.filter(manager, sample(0.10, big_w=math.nan))
        assert repaired.big.power_w == pytest.approx(2.34)
        assert guard.events[-1].detail == "last-good"

    def test_falls_back_to_range_floor_without_history(self):
        guard = TelemetryGuard()
        repaired = guard.filter(FakeManager(), sample(0.05, big_w=math.nan))
        lo, _ = GuardConfig().range_for("big_power")
        assert repaired.big.power_w == pytest.approx(lo)

    def test_nan_estimate_is_not_used(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": math.nan})
        guard.filter(manager, sample(0.05, big_w=2.0))
        repaired = guard.filter(manager, sample(0.10, big_w=math.nan))
        assert repaired.big.power_w == pytest.approx(2.0)

    def test_estimate_is_clamped_to_physical_range(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": 500.0})
        repaired = guard.filter(manager, sample(0.05, big_w=math.nan))
        _, hi = GuardConfig().range_for("big_power")
        assert repaired.big.power_w == pytest.approx(hi)

    def test_substitution_counts(self):
        guard = TelemetryGuard()
        manager = FakeManager({"big_power": 2.0})
        guard.filter(manager, sample(0.05, big_w=0.0))
        assert guard.substitution_count == 1
        assert guard.dirty_count == 1
