"""Tests for goal-space sweeps."""

import pytest

from repro.experiments.figures import IdentifiedSystems
from repro.experiments.sweeps import (
    SweepResult,
    qos_reference_sweep,
    tdp_sweep,
)


@pytest.fixture()
def systems(big_system, little_system, full_system):
    return IdentifiedSystems(
        big=big_system, little=little_system, full=full_system
    )


class TestSweepResult:
    def make(self):
        return SweepResult(
            title="t",
            x_label="x",
            x_values=(1.0, 2.0, 3.0),
            managers=("A", "B"),
            qos={"A": [10, 20, 30], "B": [10, 25, 40]},
            power={"A": [1.0, 2.0, 3.0], "B": [1.04, 3.0, 5.0]},
        )

    def test_format(self):
        text = self.make().format_text()
        assert "A QoS" in text and "B W" in text
        assert "1.00" in text

    def test_crossover_found(self):
        assert self.make().crossover("A", "B", "power") == 1.0

    def test_crossover_absent(self):
        result = self.make()
        result.power["A"] = [9.0, 9.0, 9.0]
        assert result.crossover("A", "B", "power") is None


class TestSweeps:
    def test_tdp_sweep_small(self, systems):
        result = tdp_sweep(
            budgets=(6.0, 3.0),
            managers=("SPECTR", "MM-Pow"),
            systems=systems,
        )
        assert len(result.x_values) == 2
        # Generous budget: SPECTR saves power.
        assert result.power["SPECTR"][0] < result.power["MM-Pow"][0]
        # Tight budget: both track it.
        assert result.power["SPECTR"][1] == pytest.approx(3.0, abs=0.5)
        assert result.power["MM-Pow"][1] == pytest.approx(3.0, abs=0.5)

    def test_qos_sweep_small(self, systems):
        result = qos_reference_sweep(
            references=(40.0, 75.0),
            managers=("SPECTR", "MM-Perf"),
            systems=systems,
        )
        # Attainable point: both meet it.
        assert result.qos["SPECTR"][0] == pytest.approx(40.0, rel=0.05)
        assert result.qos["MM-Perf"][0] == pytest.approx(40.0, rel=0.05)
        # Unattainable point: SPECTR obeys the budget, MM-Perf breaks it.
        assert result.power["SPECTR"][1] <= 5.2
        assert result.power["MM-Perf"][1] > 5.2
