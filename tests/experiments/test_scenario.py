"""Tests for scenario definitions."""

import pytest

from repro.experiments.scenario import Phase, Scenario, three_phase_scenario


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            Phase("p", duration_s=0.0, power_budget_w=5.0, qos_reference=60.0)
        with pytest.raises(ValueError):
            Phase("p", duration_s=1.0, power_budget_w=0.0, qos_reference=60.0)
        with pytest.raises(ValueError):
            Phase(
                "p",
                duration_s=1.0,
                power_budget_w=5.0,
                qos_reference=60.0,
                background_arrivals=-1,
            )


class TestScenario:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            Scenario(phases=())

    def test_three_phase_defaults(self):
        scenario = three_phase_scenario()
        assert len(scenario.phases) == 3
        assert scenario.total_duration_s == pytest.approx(15.0)
        assert scenario.phases[0].name == "safe"
        assert scenario.phases[1].power_budget_w == pytest.approx(3.3)
        assert scenario.phases[2].background_arrivals == 4

    def test_phase_boundaries(self):
        scenario = three_phase_scenario(phase_duration_s=2.0)
        assert scenario.phase_boundaries() == [0.0, 2.0, 4.0]

    def test_phase_at(self):
        scenario = three_phase_scenario()
        assert scenario.phase_at(0.0).name == "safe"
        assert scenario.phase_at(5.0).name == "emergency"
        assert scenario.phase_at(14.99).name == "disturbance"
        assert scenario.phase_at(1e9).name == "disturbance"

    def test_background_tasks_arrive_at_phase_start(self):
        scenario = three_phase_scenario()
        tasks = scenario.background_tasks()
        assert len(tasks) == 4
        assert all(t.arrival_s == pytest.approx(10.0) for t in tasks)

    def test_customization(self):
        scenario = three_phase_scenario(
            qos_reference=30.0, tdp_w=4.0, background_tasks=2
        )
        assert scenario.phases[0].qos_reference == 30.0
        assert scenario.phases[2].power_budget_w == 4.0
        assert len(scenario.background_tasks()) == 2
