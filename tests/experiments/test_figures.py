"""Tests for the lightweight figure generators (the expensive
figure-13/14 sweeps are covered by the integration test and benches)."""

import pytest

from repro.experiments.figures import (
    fig3_conflicting_goals,
    fig5_model_accuracy,
    fig6_operation_count,
    fig12_synthesis,
    identified_systems,
    manager_factory,
    overhead_measurements,
)


class TestIdentifiedSystemsCache:
    def test_cached_instance_reused(self):
        a = identified_systems()
        b = identified_systems()
        assert a is b

    def test_percore_added_on_demand(self):
        systems = identified_systems(with_percore=True)
        assert systems.percore is not None

    def test_manager_factory_names(self):
        systems = identified_systems()
        for name in ("FS", "MM-Perf", "MM-Pow", "SPECTR"):
            assert callable(manager_factory(name, systems))
        with pytest.raises(ValueError):
            manager_factory("nope", systems)


class TestFig3:
    def test_conflict_shape(self):
        result = fig3_conflicting_goals(duration_s=6.0)
        fps_run = result.fps_oriented
        pow_run = result.power_oriented
        # FPS-oriented tracks FPS, misses power.
        assert fps_run["fps"][-40:].mean() == pytest.approx(
            result.fps_reference, rel=0.06
        )
        assert abs(
            fps_run["power"][-40:].mean() - result.power_reference
        ) > 0.5
        # Power-oriented tracks power, misses FPS.
        assert pow_run["power"][-40:].mean() == pytest.approx(
            result.power_reference, rel=0.10
        )
        assert abs(pow_run["fps"][-40:].mean() - result.fps_reference) > 5.0

    def test_format_text(self):
        result = fig3_conflicting_goals(duration_s=3.0)
        text = result.format_text()
        assert "FPS-oriented" in text
        assert "power-oriented" in text


class TestFig5:
    def test_small_model_fits_better(self):
        result = fig5_model_accuracy()
        assert result.small_fit_percent > result.large_fit_percent
        assert result.small_fit_percent > 45.0
        assert "Figure 5" in result.format_text()

    def test_series_lengths_match(self):
        result = fig5_model_accuracy()
        assert result.small_predicted.shape == result.small_measured.shape
        assert result.large_predicted.shape == result.large_measured.shape


class TestFig6:
    def test_monotone_growth(self):
        result = fig6_operation_count(core_counts=(10, 30, 50), orders=(2, 4))
        for order in (2, 4):
            counts = [result.operations[order][c] for c in (10, 30, 50)]
            assert counts == sorted(counts)

    def test_spectr_cheaper(self):
        result = fig6_operation_count(core_counts=(50,), orders=(2,))
        assert result.spectr_ops[50] < result.operations[2][50] / 100

    def test_format_text_rows(self):
        result = fig6_operation_count(core_counts=(10, 20), orders=(2,))
        text = result.format_text()
        assert "Figure 6" in text
        assert "   10" in text and "   20" in text


class TestFig12:
    def test_verified_supervisor(self):
        result = fig12_synthesis()
        assert result.verified.verified
        assert "PASS" in result.format_text()


class TestOverhead:
    def test_measurements_positive_and_ordered(self):
        result = overhead_measurements(repeats=50)
        assert result.mimo_step_us > 0
        assert result.supervisor_invocation_us > 0
        # The gain switch is a pointer swap: far cheaper than a MIMO step.
        assert result.gain_switch_us < result.mimo_step_us
        assert result.mimo_ops_per_invocation > 0
        assert "overhead" in result.format_text()
