"""Tests for the reproduction report and the CLI entry point."""

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.report import generate_report


class TestReport:
    def test_filtered_report(self):
        report = generate_report(include=("table 1", "figure 6"))
        assert set(report.sections) == {"Table 1", "Figure 6"}
        text = report.format_text()
        assert "SPECTR" in text
        assert "Figure 6" in text

    def test_timings_recorded(self):
        report = generate_report(include=("table 1",))
        assert report.timings_s["Table 1"] >= 0.0

    def test_unknown_filter_yields_empty(self):
        report = generate_report(include=("no such section",))
        assert report.sections == {}


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["synthesize", "4"])
        assert args.n_clusters == 4
        args = parser.parse_args(["run", "x264", "--manager", "FS"])
        assert args.manager == "FS"

    def test_synthesize_command(self, capsys):
        code = main(["synthesize", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "nonblocking" in out
        assert "PASS" in out

    def test_report_command_filtered(self, capsys):
        code = main(["report", "table 1"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_command(self, capsys):
        code = main(["run", "x264", "--manager", "MM-Pow"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MM-Pow on x264" in out
        assert "safe" in out

    def test_run_unknown_workload(self, capsys):
        code = main(["run", "doom"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_design_flow_command(self, capsys):
        code = main(["design-flow"])
        assert code == 0
        assert "SUCCESS" in capsys.readouterr().out
