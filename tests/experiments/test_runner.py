"""Tests for the scenario runner."""

import numpy as np
import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import three_phase_scenario
from repro.managers.mm import mm_perf
from repro.workloads import x264


@pytest.fixture(scope="module")
def short_trace(big_system, little_system):
    scenario = three_phase_scenario(phase_duration_s=2.0)
    return run_scenario(
        lambda soc, goals: mm_perf(
            soc, goals, big_system=big_system, little_system=little_system
        ),
        x264(),
        scenario,
        seed=7,
    )


class TestTraceStructure:
    def test_lengths_consistent(self, short_trace):
        steps = int(6.0 / 0.05)
        assert short_trace.times.shape == (steps,)
        assert short_trace.qos.shape == (steps,)
        assert short_trace.chip_power.shape == (steps,)
        assert len(short_trace.gain_sets) == steps

    def test_reference_series_follow_phases(self, short_trace):
        assert np.all(short_trace.qos_reference == 60.0)
        budgets = short_trace.power_reference
        assert budgets[0] == pytest.approx(5.0)
        mid = int(3.0 / 0.05)
        assert budgets[mid] == pytest.approx(3.3)
        assert budgets[-1] == pytest.approx(5.0)

    def test_chip_power_is_cluster_sum(self, short_trace):
        assert np.allclose(
            short_trace.chip_power,
            short_trace.big_power + short_trace.little_power,
        )

    def test_actuation_series_in_range(self, short_trace):
        assert np.all(short_trace.big_frequency >= 0.2)
        assert np.all(short_trace.big_frequency <= 2.0)
        assert np.all(short_trace.big_cores >= 1)
        assert np.all(short_trace.big_cores <= 4)

    def test_manager_and_workload_named(self, short_trace):
        assert short_trace.manager == "MM-Perf"
        assert short_trace.workload == "x264"


class TestPhaseSlicing:
    def test_slices_partition_trace(self, short_trace):
        total = sum(
            short_trace.phase_slice(i).stop - short_trace.phase_slice(i).start
            for i in range(3)
        )
        assert total == short_trace.times.size

    def test_phase_metrics_per_phase(self, short_trace):
        metrics = short_trace.phase_metrics()
        assert len(metrics) == 3
        assert metrics[0].phase.name == "safe"
        for pm in metrics:
            assert pm.qos.reference == 60.0
            assert pm.power.reference == pm.phase.power_budget_w


class TestDeterminism:
    def test_same_seed_same_trace(self, big_system, little_system):
        scenario = three_phase_scenario(phase_duration_s=1.0)

        def factory(soc, goals):
            return mm_perf(
                soc, goals, big_system=big_system, little_system=little_system
            )

        a = run_scenario(factory, x264(), scenario, seed=3)
        b = run_scenario(factory, x264(), scenario, seed=3)
        assert np.allclose(a.qos, b.qos)
        assert np.allclose(a.chip_power, b.chip_power)

    def test_different_seed_different_noise(self, big_system, little_system):
        scenario = three_phase_scenario(phase_duration_s=1.0)

        def factory(soc, goals):
            return mm_perf(
                soc, goals, big_system=big_system, little_system=little_system
            )

        a = run_scenario(factory, x264(), scenario, seed=3)
        b = run_scenario(factory, x264(), scenario, seed=4)
        assert not np.allclose(a.qos, b.qos)


class TestSetupHooks:
    def factory(self, big_system, little_system):
        return lambda soc, goals: mm_perf(
            soc, goals, big_system=big_system, little_system=little_system
        )

    def test_soc_setup_runs_before_the_first_step(
        self, big_system, little_system
    ):
        seen = {}

        def soc_setup(soc):
            seen["frequency_ghz"] = soc.big.frequency_ghz
            seen["time_s"] = soc.time_s

        run_scenario(
            self.factory(big_system, little_system),
            x264(),
            three_phase_scenario(phase_duration_s=1.0),
            seed=3,
            initial_big_frequency=1.4,
            soc_setup=soc_setup,
        )
        # Called after the initial operating point is set, before time
        # advances: the fault-injection point.
        assert seen["frequency_ghz"] == pytest.approx(1.4)
        assert seen["time_s"] == 0.0

    def test_manager_setup_receives_the_constructed_manager(
        self, big_system, little_system
    ):
        captured = {}

        def manager_setup(manager):
            captured["manager"] = manager

        trace = run_scenario(
            self.factory(big_system, little_system),
            x264(),
            three_phase_scenario(phase_duration_s=1.0),
            seed=3,
            manager_setup=manager_setup,
        )
        assert captured["manager"].name == trace.manager

    def test_resilience_trace_fields_default_empty(
        self, big_system, little_system
    ):
        trace = run_scenario(
            self.factory(big_system, little_system),
            x264(),
            three_phase_scenario(phase_duration_s=1.0),
            seed=3,
        )
        assert trace.guard_events == []
        assert trace.invariant_violations == []
        assert trace.degrade_events == []
