"""Tests for the nine-step design flow (Figure 16)."""

import pytest

from repro.experiments.design_flow import run_design_flow
from repro.managers.base import ManagerGoals


@pytest.fixture(scope="module")
def report():
    return run_design_flow()


class TestDesignFlow:
    def test_flow_succeeds_end_to_end(self, report):
        assert report.succeeded

    def test_all_nine_steps_present(self, report):
        numbers = {step.number for step in report.steps}
        assert numbers == set(range(1, 10))

    def test_supervisor_verified(self, report):
        assert report.supervisor is not None
        assert report.supervisor.verified

    def test_both_subsystems_identified(self, report):
        assert set(report.subsystems) == {"big", "little"}
        for system in report.subsystems.values():
            assert system.identification.meets_design_flow_gate()

    def test_gain_libraries_complete(self, report):
        for library in report.gain_libraries.values():
            assert library.names() == ("power", "qos")

    def test_robustness_steps_all_pass(self, report):
        robustness = [s for s in report.steps if s.number == 8]
        assert len(robustness) == 4  # 2 subsystems x 2 gain sets
        assert all(s.passed for s in robustness)

    def test_format_text(self, report):
        text = report.format_text()
        assert "SUCCESS" in text
        assert "step 9" in text

    def test_strict_gate_fails_gracefully(self):
        strict = run_design_flow(
            r_squared_gate=0.999, closed_loop_check=False
        )
        assert not strict.succeeded
        failing = [s for s in strict.steps if not s.passed]
        assert all(s.number == 5 for s in failing)

    def test_skipping_closed_loop_check(self):
        fast = run_design_flow(closed_loop_check=False)
        assert {s.number for s in fast.steps} == set(range(1, 9))

    def test_custom_goals_recorded(self):
        custom = run_design_flow(
            goals=ManagerGoals(30.0, 4.0), closed_loop_check=False
        )
        assert "30" in custom.steps[0].detail
        assert "4" in custom.steps[0].detail
