"""Tests for the ablation machinery (flags + studies)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    _spectr_factory,
    tdp_violation_fraction,
)
from repro.experiments.figures import IdentifiedSystems
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import three_phase_scenario
from repro.managers.base import ManagerGoals
from repro.managers.mimo import QOS_GAINS
from repro.managers.spectr import SPECTRManager
from repro.platform.soc import ExynosSoC
from repro.workloads import x264


@pytest.fixture()
def systems(big_system, little_system, full_system):
    return IdentifiedSystems(
        big=big_system, little=little_system, full=full_system
    )


class TestAblationFlags:
    def test_disabled_gain_scheduling_never_switches(
        self, systems, verified_supervisor
    ):
        soc = ExynosSoC(qos_app=x264())
        soc.big.set_frequency(1.0)
        manager = SPECTRManager(
            soc,
            ManagerGoals(60.0, 5.0),
            big_system=systems.big,
            little_system=systems.little,
            verified_supervisor=verified_supervisor,
            enable_gain_scheduling=False,
        )
        for _ in range(100):
            manager.control(soc.step())
        manager.set_power_budget(2.0)  # harsh emergency
        for _ in range(100):
            manager.control(soc.step())
        assert manager.big_mimo.active_gains == QOS_GAINS
        assert manager.gain_log.switch_count == 0

    def test_disabled_reference_regulation_freezes_budgets(
        self, systems, verified_supervisor
    ):
        soc = ExynosSoC(qos_app=x264())
        soc.big.set_frequency(1.0)
        manager = SPECTRManager(
            soc,
            ManagerGoals(60.0, 5.0),
            big_system=systems.big,
            little_system=systems.little,
            verified_supervisor=verified_supervisor,
            enable_reference_regulation=False,
        )
        initial_big = manager.big_power_ref_w
        initial_little = manager.little_power_ref_w
        for _ in range(150):
            manager.control(soc.step())
        manager.set_power_budget(3.3)
        for _ in range(100):
            manager.control(soc.step())
        assert manager.big_power_ref_w == initial_big
        assert manager.little_power_ref_w == initial_little

    def test_custom_name_propagates(self, systems, verified_supervisor):
        soc = ExynosSoC(qos_app=x264())
        manager = SPECTRManager(
            soc,
            ManagerGoals(60.0, 5.0),
            big_system=systems.big,
            little_system=systems.little,
            verified_supervisor=verified_supervisor,
            name="SPECTR-variant",
        )
        assert manager.name == "SPECTR-variant"

    def test_supervisor_still_walks_when_ablated(
        self, systems, verified_supervisor
    ):
        """Ablation disables effects, not the formal model: the engine
        keeps tracking system state."""
        soc = ExynosSoC(qos_app=x264())
        manager = SPECTRManager(
            soc,
            ManagerGoals(60.0, 5.0),
            big_system=systems.big,
            little_system=systems.little,
            verified_supervisor=verified_supervisor,
            enable_gain_scheduling=False,
            enable_reference_regulation=False,
        )
        for _ in range(20):
            manager.control(soc.step())
        assert manager.engine.invocations == 10


class TestViolationMetric:
    def test_tdp_violation_fraction_bounds(self, systems):
        scenario = three_phase_scenario(phase_duration_s=2.0)
        trace = run_scenario(
            _spectr_factory(systems), x264(), scenario, seed=5
        )
        for phase in range(3):
            fraction = tdp_violation_fraction(trace, phase)
            assert 0.0 <= fraction <= 1.0

    def test_violation_detects_overrun(self, systems):
        scenario = three_phase_scenario(phase_duration_s=2.0)
        full = run_scenario(
            _spectr_factory(systems), x264(), scenario, seed=5
        )
        crippled = run_scenario(
            _spectr_factory(
                systems,
                gain_scheduling=False,
                reference_regulation=False,
                name="none",
            ),
            x264(),
            scenario,
            seed=5,
        )
        assert tdp_violation_fraction(crippled, 2) >= tdp_violation_fraction(
            full, 2
        )
