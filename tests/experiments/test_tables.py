"""Tests for table generation."""

import pytest

from repro.experiments.tables import (
    ATTRIBUTES,
    ApproachRow,
    format_matrix,
    format_table1,
    table1_rows,
)


class TestTable1:
    def test_five_rows(self):
        assert len(table1_rows()) == 5

    def test_spectr_covers_everything(self):
        spectr = table1_rows()[-1]
        assert "SPECTR" in spectr.methods
        assert all(c == "Y" for c in spectr.coverage)

    def test_siso_partial_scalability(self):
        siso = next(r for r in table1_rows() if "SISO" in r.methods)
        index = ATTRIBUTES.index("Scalability")
        assert siso.coverage[index] == "*"

    def test_mimo_lacks_scalability_and_autonomy(self):
        mimo = next(
            r for r in table1_rows() if r.methods == "MIMO Control Theory"
        )
        assert mimo.coverage[ATTRIBUTES.index("Scalability")] == "-"
        assert mimo.coverage[ATTRIBUTES.index("Autonomy")] == "-"

    def test_format_contains_all_rows(self):
        text = format_table1()
        for row in table1_rows():
            assert row.methods in text

    def test_row_validation(self):
        with pytest.raises(ValueError):
            ApproachRow("X", "bad", ("Y",))
        with pytest.raises(ValueError):
            ApproachRow("X", "bad", ("Q",) * 6)


class TestFormatMatrix:
    def test_renders_values(self):
        text = format_matrix(
            "title",
            ("row1",),
            ("c1", "c2"),
            {"row1": {"c1": 1.5, "c2": -2.0}},
        )
        assert "title" in text
        assert "1.5" in text
        assert "-2.0" in text
