"""End-to-end gate: run ``python -m repro.analysis`` in-process.

The same invocation ``scripts/check.sh`` wires into CI: the repo's own
``src/`` tree must come back clean, and the seeded bad-artifact fixtures
must fail with a ``file:line`` finding.
"""

from pathlib import Path

from repro.analysis.cli import analyze_paths, main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "analysis" / "fixtures"


class TestCleanTree:
    def test_src_tree_exits_zero(self, capsys):
        assert main([str(REPO / "src")]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_src_tree_report_counts(self):
        report = analyze_paths([REPO / "src"])
        assert report.ok
        assert report.files_checked > 50
        assert report.errors == ()


class TestSeededBadArtifacts:
    def test_nondeterministic_automaton_fails_with_location(self, capsys):
        path = FIXTURES / "nondeterministic_automaton.json"
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:1: error: REPRO-A002" in out

    def test_alphabet_mismatch_bundle_fails(self, capsys):
        bundle = FIXTURES / "alphabet_mismatch_bundle"
        assert main([str(bundle)]) == 1
        out = capsys.readouterr().out
        assert "REPRO-A010" in out
        assert "1 errors" in out

    def test_fixture_dir_is_discovered_by_walking(self, capsys):
        # Walking the directory (not naming files) must still find both
        # seeded artifacts: one automaton JSON + one bundle dir.
        assert main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "REPRO-A002" in out
        assert "REPRO-A010" in out


class TestSeverityGating:
    def test_warning_only_file_passes_unless_strict(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f(period):\n    return period\n")
        assert main([str(path)]) == 0
        capsys.readouterr()
        assert main(["--strict", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REPRO-L006" in out

    def test_quiet_hides_warnings(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f(period):\n    return period\n")
        assert main(["--quiet", str(path)]) == 0
        out = capsys.readouterr().out
        assert "REPRO-L006" not in out

    def test_nonexistent_path_fails_the_gate(self, capsys):
        # A typo'd path in CI must not pass green with "0 files checked".
        assert main([str(REPO / "no-such-dir")]) == 1
        out = capsys.readouterr().out
        assert "REPRO-C001" in out
        assert "does not exist" in out

    def test_lint_error_fails_the_gate(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f(x=[]):\n    return x\n")
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:1: error: REPRO-L001" in out
