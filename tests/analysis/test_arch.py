"""Tests for the architecture-layer checker."""

from pathlib import Path

from repro.analysis.arch import ALLOWED_IMPORTS, check_architecture, import_edges

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def make_tree(root: Path, files: dict[str, str]) -> Path:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root / "repro"


class TestCheckArchitecture:
    def test_repo_tree_has_no_violations(self):
        assert check_architecture(SRC_REPRO) == []

    def test_upward_import_is_r001_error(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/automata/__init__.py": "",
                "repro/automata/bad.py": "from repro.managers import spectr\n",
                "repro/managers/__init__.py": "",
            },
        )
        findings = check_architecture(package)
        assert len(findings) == 1
        assert findings[0].rule == "REPRO-R001"
        assert findings[0].path.endswith("bad.py")
        assert findings[0].line == 1
        assert "managers" in findings[0].message

    def test_composition_root_may_import_anything(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "from repro.experiments import runner\n",
                "repro/__main__.py": "from repro.managers import spectr\n",
            },
        )
        assert check_architecture(package) == []

    def test_unmapped_package_is_r002_warning(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/newpkg/__init__.py": "",
                "repro/newpkg/mod.py": "from repro.core import events\n",
            },
        )
        findings = check_architecture(package)
        assert [f.rule for f in findings] == ["REPRO-R002"]

    def test_peer_imports_between_platform_and_workloads_allowed(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/platform/__init__.py": "from repro.workloads import qos\n",
                "repro/workloads/__init__.py": "from repro.platform import soc\n",
            },
        )
        assert check_architecture(package) == []

    def test_platform_must_not_import_managers(self):
        # The invariant the ISSUE calls out explicitly.
        for package in ("platform", "workloads"):
            allowed = ALLOWED_IMPORTS[package]
            assert "managers" not in allowed
            assert "experiments" not in allowed


class TestImportEdges:
    def test_edges_carry_file_and_line(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/core/mod.py": "import numpy\nfrom repro.control import lqg\n",
            },
        )
        graph = import_edges(package)
        assert list(graph) == ["core"]
        (file_path, line, imported) = graph["core"][0]
        assert file_path.endswith("mod.py")
        assert line == 2
        assert imported == "control"


class TestExecLayer:
    def test_exec_and_experiments_are_peers(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/exec/__init__.py": "from repro.experiments import runner\n",
                "repro/experiments/__init__.py": "from repro.exec import engine\n",
            },
        )
        assert check_architecture(package) == []

    def test_exec_must_not_import_resilience(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/exec/__init__.py": "",
                "repro/exec/cli.py": "from repro.resilience import campaign\n",
                "repro/resilience/__init__.py": "",
            },
        )
        findings = check_architecture(package)
        assert [f.rule for f in findings] == ["REPRO-R001"]
        assert "resilience" in findings[0].message

    def test_resilience_may_import_exec(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/exec/__init__.py": "",
                "repro/resilience/__init__.py": "from repro.exec import engine\n",
            },
        )
        assert check_architecture(package) == []

    def test_lower_layers_must_not_import_exec(self):
        for package in ("automata", "control", "platform", "workloads",
                        "core", "managers", "analysis"):
            assert "exec" not in ALLOWED_IMPORTS[package]


class TestNestedAnalysisFlowLayer:
    def test_flow_files_belong_to_nested_package(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/analysis/__init__.py": "",
                "repro/analysis/flow/__init__.py": "",
                "repro/analysis/flow/mod.py": "from repro.core import events\n",
            },
        )
        graph = import_edges(package)
        assert "analysis.flow" in graph
        assert graph["analysis.flow"][0][2] == "core"

    def test_flow_may_import_parent_and_allowed_layers(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/analysis/__init__.py": "",
                "repro/analysis/flow/__init__.py": (
                    "from repro.analysis.findings import Finding\n"
                    "from repro.core import events\n"
                ),
            },
        )
        assert check_architecture(package) == []

    def test_parent_may_import_flow_subpackage(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/analysis/__init__.py": "",
                "repro/analysis/cli.py": (
                    "from repro.analysis.flow import analyze_project\n"
                ),
                "repro/analysis/flow/__init__.py": "",
            },
        )
        assert check_architecture(package) == []

    def test_flow_must_not_import_exec(self, tmp_path):
        package = make_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/analysis/__init__.py": "",
                "repro/analysis/flow/__init__.py": (
                    "from repro.exec import engine\n"
                ),
                "repro/exec/__init__.py": "",
            },
        )
        findings = check_architecture(package)
        assert [f.rule for f in findings] == ["REPRO-R001"]
        assert "analysis.flow" in findings[0].message

    def test_repo_flow_subpackage_is_mapped(self):
        assert "analysis.flow" in ALLOWED_IMPORTS
        assert "exec" not in ALLOWED_IMPORTS["analysis.flow"]
