"""Unit tests for the numeric LQG gain-set checks.

All tests use a scalar plant (A=0.5, B=C=1, D=0) where the augmented
closed loop [[0.5-k1, -k2], [-1, 1]] and the observer 0.5-L can be
checked by hand.
"""

import numpy as np

from repro.analysis.findings import Severity
from repro.analysis.gain_checks import check_gains
from repro.control.lqg import LQGGains
from repro.control.statespace import StateSpaceModel


def scalar_gains(
    name="toy",
    k_state=0.5,
    k_integral=-0.25,
    observer_gain=0.5,
    **overrides,
):
    """Gains for the scalar plant; defaults are stable (radius 0.5)."""
    fields = {
        "name": name,
        "model": StateSpaceModel(
            A=[[0.5]], B=[[1.0]], C=[[1.0]], D=[[0.0]], dt=0.05, name="toy"
        ),
        "K_state": np.array([[float(k_state)]]),
        "K_integral": np.array([[float(k_integral)]]),
        "L": np.array([[float(observer_gain)]]),
        "Q_output": np.eye(1),
        "R_effort": np.eye(1),
        "integral_mask": np.ones(1),
    }
    fields.update(overrides)
    return LQGGains(**fields)


def rules(findings):
    return [f.rule for f in findings]


class TestCheckGains:
    def test_stable_gains_are_clean(self):
        assert check_gains(scalar_gains()) == []

    def test_nan_is_exactly_one_g001_and_short_circuits(self):
        findings = check_gains(
            scalar_gains(K_state=np.array([[np.nan]]))
        )
        assert rules(findings) == ["REPRO-G001"]

    def test_wrong_shape_is_g002(self):
        findings = check_gains(scalar_gains(L=np.zeros((2, 2))))
        assert rules(findings) == ["REPRO-G002"]

    def test_bad_integral_mask_shape_is_g002(self):
        findings = check_gains(
            scalar_gains(integral_mask=np.ones(3))
        )
        assert rules(findings) == ["REPRO-G002"]

    def test_unstable_closed_loop_is_exactly_one_g003_error(self):
        # k1=-0.8 puts an eigenvalue at 1.3, outside the unit circle.
        findings = check_gains(scalar_gains(k_state=-0.8, k_integral=0.0))
        assert rules(findings) == ["REPRO-G003"]
        assert findings[0].severity == Severity.ERROR
        assert "unstable" in findings[0].message

    def test_marginal_closed_loop_is_g003_warning(self):
        # k1=0, k2=-0.0005 puts the largest eigenvalue at ~0.999:
        # stable, but within the no-margin band.
        findings = check_gains(scalar_gains(k_state=0.0, k_integral=-0.0005))
        assert rules(findings) == ["REPRO-G003"]
        assert findings[0].severity == Severity.WARNING

    def test_unstable_observer_is_g004(self):
        # L=2 puts the estimator error pole at 0.5-2 = -1.5.
        findings = check_gains(scalar_gains(observer_gain=2.0))
        assert rules(findings) == ["REPRO-G004"]

    def test_negative_q_is_g005(self):
        findings = check_gains(scalar_gains(Q_output=-np.eye(1)))
        assert rules(findings) == ["REPRO-G005"]
        assert "semidefinite" in findings[0].message

    def test_singular_r_is_g005(self):
        findings = check_gains(scalar_gains(R_effort=np.zeros((1, 1))))
        assert rules(findings) == ["REPRO-G005"]
        assert "positive definite" in findings[0].message

    def test_asymmetric_q_is_g005(self):
        # Two decoupled copies of the stable scalar loop.
        gains = scalar_gains(
            model=StateSpaceModel(
                A=np.eye(2) * 0.5,
                B=np.eye(2),
                C=np.eye(2),
                D=np.zeros((2, 2)),
                dt=0.05,
            ),
            K_state=np.eye(2) * 0.5,
            K_integral=np.eye(2) * -0.25,
            L=np.eye(2) * 0.5,
            Q_output=np.array([[1.0, 0.5], [0.0, 1.0]]),
            R_effort=np.eye(2),
            integral_mask=np.ones(2),
        )
        findings = check_gains(gains)
        assert rules(findings) == ["REPRO-G005"]
        assert "symmetric" in findings[0].message

    def test_findings_carry_the_artifact_path(self):
        findings = check_gains(
            scalar_gains(k_state=-0.8, k_integral=0.0),
            path="bundle/gains.npz#big/power",
        )
        assert findings[0].path == "bundle/gains.npz#big/power"
        assert findings[0].line == 1
