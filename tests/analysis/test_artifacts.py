"""Golden bad-artifact fixtures through the file-level analyzers.

Each committed fixture under ``fixtures/`` seeds exactly one defect and
must therefore produce exactly one error finding — the analyzer must
neither miss the defect nor cascade extra noise from it.
"""

import json
from pathlib import Path

import numpy as np

from repro.analysis.artifacts import (
    analyze_automaton_file,
    analyze_bundle_dir,
    looks_like_automaton_payload,
)
from repro.analysis.findings import Severity
from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable
from repro.control.gains import GainLibrary
from repro.control.lqg import LQGGains
from repro.control.statespace import OperatingPoint, StateSpaceModel
from repro.core.persistence import PolicyBundle, save_bundle

FIXTURES = Path(__file__).parent / "fixtures"


def errors(findings):
    return [f for f in findings if f.severity == Severity.ERROR]


def scalar_gains(name, k_state, k_integral):
    model = StateSpaceModel(
        A=[[0.5]], B=[[1.0]], C=[[1.0]], D=[[0.0]], dt=0.05, name="toy"
    )
    return LQGGains(
        name=name,
        model=model,
        K_state=np.array([[float(k_state)]]),
        K_integral=np.array([[float(k_integral)]]),
        L=np.array([[0.5]]),
        Q_output=np.eye(1),
        R_effort=np.eye(1),
        integral_mask=np.ones(1),
    )


def bundle_with(gains):
    supervisor = automaton_from_table(
        "sup",
        Alphabet.of([controllable("tick")]),
        transitions=[("S0", "tick", "S0")],
        initial="S0",
        marked=["S0"],
    )
    library = GainLibrary(name="big")
    library.register(gains)
    return PolicyBundle(
        supervisor=supervisor,
        plant=None,
        gain_libraries={"big": library},
        operating_points={"big": OperatingPoint(u=[1.0], y=[1.0])},
    )


class TestGoldenFixtures:
    def test_nondeterministic_automaton_exactly_one_error(self):
        path = FIXTURES / "nondeterministic_automaton.json"
        findings = analyze_automaton_file(path)
        errs = errors(findings)
        assert len(errs) == 1
        assert errs[0].rule == "REPRO-A002"
        assert errs[0].path == str(path)
        assert errs[0].line == 1  # file:line in the formatted output

    def test_alphabet_mismatch_bundle_exactly_one_error(self):
        findings = analyze_bundle_dir(FIXTURES / "alphabet_mismatch_bundle")
        errs = errors(findings)
        assert len(errs) == 1
        assert errs[0].rule == "REPRO-A010"
        assert "toggle" in errs[0].message

    def test_unstable_gain_set_exactly_one_error(self, tmp_path):
        # k_state=-0.8 puts a closed-loop eigenvalue at 1.3.
        bundle_dir = save_bundle(
            bundle_with(scalar_gains("unstable", -0.8, 0.0)),
            tmp_path / "bundle",
        )
        findings = analyze_bundle_dir(bundle_dir)
        errs = errors(findings)
        assert len(errs) == 1
        assert errs[0].rule == "REPRO-G003"
        assert "gains.npz#big/unstable" in errs[0].path

    def test_clean_automaton_has_no_findings(self):
        assert analyze_automaton_file(FIXTURES / "clean_automaton.json") == []

    def test_clean_bundle_has_no_findings(self, tmp_path):
        bundle_dir = save_bundle(
            bundle_with(scalar_gains("stable", 0.5, -0.25)),
            tmp_path / "bundle",
        )
        assert analyze_bundle_dir(bundle_dir) == []


class TestArtifactEdgeCases:
    def test_non_automaton_json_named_explicitly_is_a001(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps({"foo": 1}))
        findings = analyze_automaton_file(path)
        assert [f.rule for f in findings] == ["REPRO-A001"]

    def test_unreadable_json_is_a001(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert [f.rule for f in analyze_automaton_file(path)] == ["REPRO-A001"]

    def test_bundle_with_bad_format_is_a001(self, tmp_path):
        bundle = tmp_path / "bundle"
        bundle.mkdir()
        (bundle / "bundle.json").write_text(json.dumps({"format": "v99"}))
        findings = analyze_bundle_dir(bundle)
        assert [f.rule for f in findings] == ["REPRO-A001"]

    def test_missing_gains_file_is_g002(self, tmp_path):
        bundle_dir = save_bundle(
            bundle_with(scalar_gains("stable", 0.5, -0.25)),
            tmp_path / "bundle",
        )
        (bundle_dir / "gains.npz").unlink()
        findings = analyze_bundle_dir(bundle_dir)
        assert [f.rule for f in findings] == ["REPRO-G002"]
        assert "missing" in findings[0].message

    def test_payload_heuristic(self):
        assert looks_like_automaton_payload(
            {"states": [], "transitions": [], "events": []}
        )
        assert not looks_like_automaton_payload({"states": []})
        assert not looks_like_automaton_payload([1, 2])
