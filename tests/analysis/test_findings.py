"""Tests for the shared Finding/Severity/Report core."""

from repro.analysis.findings import Finding, Report, Severity


def finding(severity, line=3, rule="REPRO-X001", path="src/mod.py"):
    return Finding(
        path=path, line=line, rule=rule, severity=severity, message="msg"
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase(self):
        assert str(Severity.ERROR) == "error"


class TestFinding:
    def test_format_includes_file_and_line(self):
        text = finding(Severity.ERROR).format()
        assert text.startswith("src/mod.py:3: error: REPRO-X001:")

    def test_format_without_line_omits_it(self):
        assert finding(Severity.INFO, line=0).format().startswith("src/mod.py: ")

    def test_sort_order_is_by_location(self):
        a = finding(Severity.ERROR, path="a.py", line=9)
        b = finding(Severity.WARNING, path="b.py", line=1)
        assert sorted([b, a]) == [a, b]


class TestReport:
    def test_empty_report_is_ok(self):
        report = Report()
        assert report.ok
        assert report.exit_code == 0
        assert len(report) == 0

    def test_error_fails_the_run(self):
        report = Report()
        report.add(finding(Severity.ERROR))
        assert not report.ok
        assert report.exit_code == 1
        assert report.errors == (finding(Severity.ERROR),)

    def test_warnings_alone_do_not_fail(self):
        report = Report()
        report.extend([finding(Severity.WARNING), finding(Severity.INFO)])
        assert report.ok
        assert report.exit_code == 0

    def test_summary_counts_by_severity(self):
        report = Report(files_checked=2, artifacts_checked=1)
        report.extend(
            [finding(Severity.ERROR), finding(Severity.WARNING, line=4)]
        )
        assert report.summary() == (
            "2 files, 1 artifacts checked: 1 errors, 1 warnings, 0 notes"
        )

    def test_format_text_filters_by_severity(self):
        report = Report()
        report.extend(
            [finding(Severity.ERROR), finding(Severity.WARNING, line=4)]
        )
        text = report.format_text(min_severity=Severity.ERROR)
        assert "error" in text
        assert "warning" not in text.splitlines()[0]
