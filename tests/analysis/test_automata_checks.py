"""Unit tests for the serialized-automaton artifact checks."""

from repro.analysis.automata_checks import (
    check_automaton_payload,
    check_modular_alphabets,
    check_supervisor_against_plant,
)
from repro.analysis.findings import Severity
from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable


def payload(**overrides):
    """A minimal clean automaton payload (toggle machine)."""
    base = {
        "name": "toy",
        "events": [{"name": "a", "controllable": True, "observable": True}],
        "states": ["S0", "S1"],
        "initial": "S0",
        "marked": ["S0"],
        "forbidden": [],
        "transitions": [["S0", "a", "S1"], ["S1", "a", "S0"]],
    }
    base.update(overrides)
    return base


def rules(findings):
    return [f.rule for f in findings]


def errors(findings):
    return [f for f in findings if f.severity == Severity.ERROR]


class TestPayloadChecks:
    def test_clean_payload_has_no_findings(self):
        assert check_automaton_payload(payload()) == []

    def test_missing_key_is_a001(self):
        bad = payload()
        del bad["transitions"]
        assert rules(check_automaton_payload(bad)) == ["REPRO-A001"]

    def test_nondeterminism_is_exactly_one_a002(self):
        bad = payload(
            states=["S0", "S1", "S2"],
            marked=["S1", "S2"],
            transitions=[["S0", "a", "S1"], ["S0", "a", "S2"]],
        )
        findings = check_automaton_payload(bad)
        assert rules(errors(findings)) == ["REPRO-A002"]

    def test_unknown_state_is_a003(self):
        bad = payload(transitions=[["S0", "a", "GHOST"]])
        assert "REPRO-A003" in rules(check_automaton_payload(bad))

    def test_unknown_event_is_a004(self):
        bad = payload(transitions=[["S0", "zap", "S1"]])
        assert "REPRO-A004" in rules(check_automaton_payload(bad))

    def test_missing_initial_is_a005(self):
        assert "REPRO-A005" in rules(check_automaton_payload(payload(initial=None)))

    def test_no_marked_state_is_a006(self):
        assert "REPRO-A006" in rules(check_automaton_payload(payload(marked=[])))

    def test_unreachable_state_is_a007_warning_only(self):
        shape = payload(
            states=["S0", "S1", "ORPHAN"],
            transitions=[["S0", "a", "S1"], ["S1", "a", "S0"]],
        )
        findings = check_automaton_payload(shape)
        assert rules(findings) == ["REPRO-A007"]
        assert errors(findings) == []

    def test_blocking_state_is_a008(self):
        bad = payload(
            states=["S0", "S1", "DEAD"],
            transitions=[
                ["S0", "a", "S1"],
                ["S1", "a", "DEAD"],
            ],
        )
        assert rules(check_automaton_payload(bad)) == ["REPRO-A008"]


class TestModularAlphabets:
    def test_consistent_alphabets_pass(self):
        findings = check_modular_alphabets(
            {"m1": payload(), "m2": payload(name="other")}
        )
        assert findings == []

    def test_controllability_conflict_is_exactly_one_a010(self):
        conflicting = payload(
            name="other",
            events=[{"name": "a", "controllable": False, "observable": True}],
        )
        findings = check_modular_alphabets({"m1": payload(), "m2": conflicting})
        assert rules(findings) == ["REPRO-A010"]
        assert "controllable" in findings[0].message


class TestClosedLoopChecks:
    SIGMA = Alphabet.of([uncontrollable("fault"), controllable("fix")])

    def plant(self):
        return automaton_from_table(
            "plant",
            self.SIGMA,
            transitions=[("P0", "fault", "P1"), ("P1", "fix", "P0")],
            initial="P0",
            marked=["P0"],
        )

    def test_exact_copy_passes(self):
        findings = check_supervisor_against_plant(
            self.plant(), self.plant().copy("sup")
        )
        assert findings == []

    def test_disabled_uncontrollable_is_a011(self):
        supervisor = automaton_from_table(
            "sup",
            self.SIGMA,
            transitions=[],  # disables 'fault' at the initial state
            initial="T0",
            marked=["T0"],
        )
        findings = check_supervisor_against_plant(self.plant(), supervisor)
        assert "REPRO-A011" in rules(findings)

    def test_blocking_product_is_a012(self):
        # Supervisor follows 'fault' but never re-enables 'fix': the
        # supervisor alone is nonblocking (T1 is marked) yet the product
        # is stuck at P1.T1 with no path back to a marked pair.
        supervisor = automaton_from_table(
            "sup",
            self.SIGMA,
            transitions=[("T0", "fault", "T1")],
            initial="T0",
            marked=["T0", "T1"],
        )
        findings = check_supervisor_against_plant(self.plant(), supervisor)
        assert rules(findings) == ["REPRO-A012"]
        assert "blocks" in findings[0].message
