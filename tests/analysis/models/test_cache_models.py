"""ModelCheckCache: sidecar integrity, eviction, and scan integration."""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.models.cache import ModelCheckCache
from repro.analysis.models.scan import scan_paths
from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable

from tests.analysis.models.conftest import write_model

SIGMA = Alphabet.of([controllable("go"), uncontrollable("fault")])


def _finding(message: str = "m") -> Finding:
    return Finding(
        path="a.json",
        line=1,
        rule="REPRO-M001",
        severity=Severity.WARNING,
        message=message,
    )


def _blocking_plant():
    return automaton_from_table(
        "CapPlant",
        SIGMA,
        [
            ("Idle", "go", "Work"),
            ("Work", "go", "Idle"),
            ("Work", "fault", "Stuck"),
        ],
        initial="Idle",
        marked=["Idle"],
    )


class TestCacheUnit:
    def test_roundtrip(self, tmp_path):
        cache = ModelCheckCache(tmp_path / "cache")
        stored = [_finding("one"), _finding("two")]
        assert cache.load("unit", b"content") is None
        cache.store("unit", b"content", stored)
        assert cache.load("unit", b"content") == stored
        assert (cache.hits, cache.misses) == (1, 1)

    def test_content_and_unit_key_the_entry(self, tmp_path):
        cache = ModelCheckCache(tmp_path / "cache")
        cache.store("unit", b"v1", [_finding()])
        assert cache.load("unit", b"v2") is None
        assert cache.load("other", b"v1") is None
        assert cache.load("unit", b"v1") is not None

    def test_corrupt_payload_evicts(self, tmp_path):
        cache = ModelCheckCache(tmp_path / "cache")
        cache.store("unit", b"c", [_finding()])
        entry = cache._entry_path(cache.key_for("unit", b"c"))
        entry.write_bytes(b"garbage")
        assert cache.load("unit", b"c") is None
        assert cache.evictions == 1
        assert not entry.exists()

    def test_unpicklable_garbage_with_valid_sidecar_evicts(self, tmp_path):
        cache = ModelCheckCache(tmp_path / "cache")
        cache.store("unit", b"c", [_finding()])
        entry = cache._entry_path(cache.key_for("unit", b"c"))
        import hashlib

        payload = b"not a pickle"
        entry.write_bytes(payload)
        entry.with_suffix(".pkl.sha256").write_text(
            hashlib.sha256(payload).hexdigest() + "\n", encoding="utf-8"
        )
        assert cache.load("unit", b"c") is None
        assert cache.evictions == 1

    def test_non_finding_payload_rejected(self, tmp_path):
        import hashlib
        import pickle

        cache = ModelCheckCache(tmp_path / "cache")
        key = cache.key_for("unit", b"c")
        entry = cache._entry_path(key)
        entry.parent.mkdir(parents=True)
        payload = pickle.dumps(["not", "findings"])
        entry.write_bytes(payload)
        entry.with_suffix(".pkl.sha256").write_text(
            hashlib.sha256(payload).hexdigest() + "\n", encoding="utf-8"
        )
        assert cache.load("unit", b"c") is None
        assert cache.evictions == 1


class TestScanIntegration:
    def test_second_scan_hits_and_replays_findings(self, tmp_path):
        unit = tmp_path / "unit"
        write_model(unit / "plant.json", _blocking_plant())
        cache = ModelCheckCache(tmp_path / "cache")

        first = scan_paths([unit], cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        second = scan_paths([unit], cache=cache)
        assert cache.hits == 1

        assert sorted(second.report.findings) == sorted(
            first.report.findings
        )
        # Stats are restored from the cached marker, not re-derived.
        assert second.stats.models_checked == first.stats.models_checked == 1
        assert second.stats.units_scanned == 1
        assert second.stats.resynthesized == 0

    def test_edit_invalidates(self, tmp_path):
        unit = tmp_path / "unit"
        path = write_model(unit / "plant.json", _blocking_plant())
        cache = ModelCheckCache(tmp_path / "cache")
        scan_paths([unit], cache=cache)
        path.write_text(
            path.read_text(encoding="utf-8").replace("CapPlant", "Edited"),
            encoding="utf-8",
        )
        scan_paths([unit], cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_resynth_mode_does_not_share_entries(self, tmp_path):
        unit = tmp_path / "unit"
        write_model(unit / "plant.json", _blocking_plant())
        cache = ModelCheckCache(tmp_path / "cache")
        scan_paths([unit], cache=cache, resynthesize=True)
        result = scan_paths([unit], cache=cache, resynthesize=False)
        # The quick mode must not replay the resynth entry (different
        # flag -> different content key), even for the same bytes.
        assert cache.hits == 0
        assert cache.misses == 2
        # Identical findings here (a lone plant never re-synthesizes),
        # arrived at independently.
        assert len(result.report.findings) == 3
