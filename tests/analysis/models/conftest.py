"""Shared helpers for the model-analyzer tests."""

import json
from pathlib import Path

import pytest

from repro.automata.serialization import automaton_to_dict

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def write_model(path: Path, automaton) -> Path:
    """Serialize ``automaton`` to ``path`` in the committed format."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(automaton_to_dict(automaton), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


@pytest.fixture
def model_dir(tmp_path):
    """Factory laying out role-named model files under a tmp unit dir."""

    def _make(models: dict[str, object], name: str = "unit") -> Path:
        root = tmp_path / name
        for role, automaton in models.items():
            write_model(root / f"{role}.json", automaton)
        return root

    return _make
