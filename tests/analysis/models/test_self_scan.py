"""The repo gates itself: the paper's own models must scan clean.

Two layers: the design flow's output (synthesized in-process) and the
committed ``artifacts/case_study`` JSON files, checked against the
committed (empty) baseline.  Plus the M006 contract check — the rule
module must shadow exactly the event names the runtime monitor gates
on, or the static replay drifts from the deployed invariants.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.flow.baseline import Baseline, apply_baseline
from repro.analysis.models.cli import _case_study_result
from repro.analysis.models.scan import analyze_model_set, scan_paths

REPO_ROOT = Path(__file__).resolve().parents[3]
ARTIFACTS = REPO_ROOT / "artifacts" / "case_study"
BASELINE = REPO_ROOT / "models-baseline.json"


class TestSelfScan:
    def test_synthesized_case_study_is_clean(self):
        from repro.core.synthesis_flow import build_case_study_supervisor

        verified = build_case_study_supervisor()
        findings = analyze_model_set(
            {
                "plant": verified.plant,
                "specification": verified.specification,
                "supervisor": verified.supervisor,
            },
            path="<case-study>",
        )
        assert findings == []

    def test_case_study_cli_path_is_clean(self):
        result = _case_study_result(resynthesize=True)
        assert result.report.findings == []
        assert result.stats.models_checked == 3
        assert result.stats.resynthesized == 1

    def test_committed_artifacts_scan_clean_against_baseline(self):
        assert ARTIFACTS.is_dir(), "committed case-study artifacts missing"
        result = scan_paths([ARTIFACTS], cache=None)
        findings = sorted(result.report.findings)
        if BASELINE.is_file():
            findings = apply_baseline(findings, Baseline.load(BASELINE))
        assert findings == []
        # One model-set unit holding the full plant/spec/supervisor trio.
        assert result.stats.units_scanned == 1
        assert result.stats.models_checked == 3
        assert result.stats.resynthesized == 1

    def test_committed_baseline_is_empty(self):
        # The repo carries no accepted model findings; if a rule change
        # makes the artifacts dirty, fix the models — don't baseline.
        assert BASELINE.is_file()
        assert Baseline.load(BASELINE).entries == ()


class TestMonitorContract:
    def test_rule_module_shadows_monitor_event_names(self):
        """M006 replays RES-I2/RES-I3; both sides must gate on the same
        alphabet constants."""
        import repro.analysis.models.rules as rules
        import repro.resilience.monitor as monitor

        for name in (
            "CRITICAL",
            "SAFE_POWER",
            "INCREASE_BIG_POWER",
            "INCREASE_LITTLE_POWER",
            "DECREASE_CRITICAL_POWER",
        ):
            assert getattr(rules, name) == getattr(monitor, name), name
