"""CLI tests for ``python -m repro.analysis models``."""

import json

from repro.analysis.cli import main, models_main
from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.serialization import automaton_to_dict
from tests.analysis.models.conftest import write_model

SIGMA = Alphabet.of([controllable("go"), uncontrollable("fault")])


def _clean_plant():
    return automaton_from_table(
        "P",
        SIGMA,
        [("P0", "go", "P1"), ("P1", "fault", "P0")],
        initial="P0",
        marked=["P0"],
    )


def _blocking_plant():
    return automaton_from_table(
        "CapPlant",
        SIGMA,
        [
            ("Idle", "go", "Work"),
            ("Work", "go", "Idle"),
            ("Work", "fault", "Stuck"),
        ],
        initial="Idle",
        marked=["Idle"],
    )


def _chdir_with(tmp_path, monkeypatch, automaton, stem="plant"):
    write_model(tmp_path / "models" / f"{stem}.json", automaton)
    monkeypatch.chdir(tmp_path)


class TestModelsCli:
    def test_clean_model_exits_zero(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, _clean_plant())
        assert models_main(["--no-cache", "models"]) == 0
        out = capsys.readouterr().out
        assert "1 files, 1 artifacts checked" in out
        assert "0 errors" in out

    def test_blocking_model_exits_one(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, _blocking_plant())
        assert models_main(["--no-cache", "models"]) == 1
        assert "REPRO-M002" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, tmp_path, monkeypatch, capsys):
        # Unreachable-state debris is warning-only: passes by default,
        # fails under --strict.
        debris = automaton_from_table(
            "D",
            SIGMA,
            [("Idle", "go", "Idle"), ("Orphan", "fault", "Orphan")],
            initial="Idle",
            marked=["Idle"],
        )
        _chdir_with(tmp_path, monkeypatch, debris)
        assert models_main(["--no-cache", "models"]) == 0
        capsys.readouterr()
        assert models_main(["--no-cache", "--strict", "models"]) == 1

    def test_missing_path_reports_c001(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert models_main(["--no-cache", "nowhere"]) == 1
        assert "REPRO-C001" in capsys.readouterr().out

    def test_json_format_carries_stats(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, _blocking_plant())
        models_main(["--no-cache", "--format", "json", "models"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-models-report/1"
        assert payload["summary"]["errors"] == 1
        assert payload["stats"]["units_scanned"] == 1
        assert payload["stats"]["models_checked"] == 1

    def test_sarif_format(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, _blocking_plant())
        models_main(["--no-cache", "--format", "sarif", "models"])
        payload = json.loads(capsys.readouterr().out)
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "repro-models"
        rule_ids = {r["ruleId"] for r in run["results"]}
        assert "REPRO-M002" in rule_ids

    def test_write_and_use_baseline(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, _blocking_plant())
        assert (
            models_main(["--no-cache", "--write-baseline", "models"]) == 0
        )
        capsys.readouterr()
        # Accepted findings are filtered; scan passes, counters remain.
        assert models_main(["--no-cache", "models"]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out
        assert (tmp_path / "models-baseline.json").is_file()

    def test_output_file(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, _blocking_plant())
        target = tmp_path / "report.sarif"
        models_main(
            [
                "--no-cache",
                "--format",
                "sarif",
                "--output",
                str(target),
                "models",
            ]
        )
        assert "wrote" in capsys.readouterr().out
        assert json.loads(target.read_text(encoding="utf-8"))["runs"]

    def test_cache_dir_reused_across_runs(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, _clean_plant())
        cache_dir = tmp_path / "mc"
        argv = ["--cache-dir", str(cache_dir), "--format", "json", "models"]
        models_main(argv)
        first = json.loads(capsys.readouterr().out)
        assert first["stats"]["cache_misses"] == 1
        models_main(argv)
        second = json.loads(capsys.readouterr().out)
        assert second["stats"]["cache_hits"] == 1
        assert any(cache_dir.rglob("*.pkl"))

    def test_bundle_manifest_unit(self, tmp_path, monkeypatch, capsys):
        bundle = tmp_path / "bundle"
        bundle.mkdir()
        manifest = {
            "schema": "policy-bundle/1",
            "supervisor": automaton_to_dict(_clean_plant()),
        }
        (bundle / "bundle.json").write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        monkeypatch.chdir(tmp_path)
        assert models_main(["--no-cache", "bundle"]) == 0
        assert "1 files, 1 artifacts checked" in capsys.readouterr().out

    def test_bundle_without_supervisor_is_a009(
        self, tmp_path, monkeypatch, capsys
    ):
        bundle = tmp_path / "bundle"
        bundle.mkdir()
        (bundle / "bundle.json").write_text("{}", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert models_main(["--no-cache", "bundle"]) == 1
        assert "REPRO-A009" in capsys.readouterr().out

    def test_undecodable_model_is_a002(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "models" / "plant.json"
        path.parent.mkdir(parents=True)
        path.write_text('{"name": "broken"}', encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert models_main(["--no-cache", "models"]) == 1
        assert "REPRO-A002" in capsys.readouterr().out

    def test_dispatch_through_analysis_main(
        self, tmp_path, monkeypatch, capsys
    ):
        _chdir_with(tmp_path, monkeypatch, _clean_plant())
        assert main(["models", "--no-cache", "models"]) == 0
        assert "artifacts checked" in capsys.readouterr().out
