"""Regenerate the golden bad-model fixtures under ``fixtures/``.

Each subdirectory is one model-check *unit* (a lone role-named file or a
plant+supervisor set) engineered to trip exactly one headline M-rule —
the expected findings are asserted verbatim in ``test_rules_golden.py``.
Run from the repo root after changing the serialization format:

    PYTHONPATH=src python tests/analysis/models/make_fixtures.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.serialization import automaton_to_dict
from repro.core.alphabet import (
    CRITICAL,
    DECREASE_CRITICAL_POWER,
    INCREASE_BIG_POWER,
    SAFE_POWER,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"

SIGMA = Alphabet.of([controllable("go"), uncontrollable("fault")])


def _write(relative: str, automaton) -> None:
    path = FIXTURES / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(automaton_to_dict(automaton), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )


def build_all() -> None:
    # M001: 'Orphan' is disconnected from the initial state.
    _write(
        "m001_unreachable/plant.json",
        automaton_from_table(
            "DebrisPlant",
            SIGMA,
            [("Idle", "go", "Idle"), ("Orphan", "fault", "Orphan")],
            initial="Idle",
            marked=["Idle"],
        ),
    )

    # M002 (+M001 dead, +M005): 'Stuck' is reachable, dead and blocking.
    _write(
        "m002_blocking/plant.json",
        automaton_from_table(
            "CapPlant",
            SIGMA,
            [
                ("Idle", "go", "Work"),
                ("Work", "go", "Idle"),
                ("Work", "fault", "Stuck"),
            ],
            initial="Idle",
            marked=["Idle"],
        ),
    )

    # M003: the supervisor disables 'fault' where the plant enables it.
    _write(
        "m003_uncontrollable/plant.json",
        automaton_from_table(
            "P",
            SIGMA,
            [("P0", "go", "P1"), ("P1", "fault", "P2")],
            initial="P0",
            marked=["P0", "P1", "P2"],
        ),
    )
    _write(
        "m003_uncontrollable/supervisor.json",
        automaton_from_table(
            "S",
            SIGMA,
            [("S0", "go", "S1")],
            initial="S0",
            marked=["S0", "S1"],
        ),
    )

    # M004: 'go' flips controllability between the two models.
    _write(
        "m004_alphabet/plant.json",
        automaton_from_table(
            "P",
            Alphabet.of([uncontrollable("go")]),
            [("P0", "go", "P0")],
            initial="P0",
            marked=["P0"],
        ),
    )
    _write(
        "m004_alphabet/supervisor.json",
        automaton_from_table(
            "S",
            Alphabet.of([controllable("go")]),
            [("S0", "go", "S0")],
            initial="S0",
            marked=["S0"],
        ),
    )

    # M005 (isolated): 'fault' drives healthy 'Work' into forbidden
    # 'Trap'; marking keeps every other rule quiet.
    _write(
        "m005_deadend/plant.json",
        automaton_from_table(
            "GuardPlant",
            SIGMA,
            [
                ("Idle", "go", "Work"),
                ("Work", "go", "Idle"),
                ("Work", "fault", "Trap"),
            ],
            initial="Idle",
            marked=["Idle", "Work"],
            forbidden=["Trap"],
        ),
    )

    # M006: budget raise during a capping episode (RES-I2) and an
    # escalated critical with no controllable path to the hard drop
    # (RES-I3 — decreaseCriticalPower is in the alphabet but silent,
    # which also trips the M004 coverage gap).
    capping = Alphabet.of(
        [
            uncontrollable(CRITICAL),
            uncontrollable(SAFE_POWER),
            controllable(INCREASE_BIG_POWER),
            controllable(DECREASE_CRITICAL_POWER),
        ]
    )
    _write(
        "m006_monitor/supervisor.json",
        automaton_from_table(
            "BadSupervisor",
            capping,
            [
                ("Run", CRITICAL, "Cap"),
                ("Cap", CRITICAL, "Cap"),
                ("Cap", INCREASE_BIG_POWER, "Cap"),
                ("Cap", SAFE_POWER, "Run"),
            ],
            initial="Run",
            marked=["Run", "Cap"],
        ),
    )

    # M007: the persisted supervisor still enables 'go', but
    # re-synthesis removes it (go leads to an uncontrollable step into
    # the forbidden state), so the artifact is stale.
    _write(
        "m007_stale/plant.json",
        automaton_from_table(
            "P",
            SIGMA,
            [("P0", "go", "P1"), ("P1", "fault", "Bad")],
            initial="P0",
            marked=["P0", "P1"],
            forbidden=["Bad"],
        ),
    )
    _write(
        "m007_stale/supervisor.json",
        automaton_from_table(
            "StaleSup",
            SIGMA,
            [("S0", "go", "S1"), ("S1", "fault", "S1")],
            initial="S0",
            marked=["S0", "S1"],
        ),
    )


if __name__ == "__main__":
    build_all()
    print(f"fixtures written under {FIXTURES}")
