"""Golden fixtures: every REPRO-M rule on a hand-built bad model.

The fixtures under ``fixtures/`` (regenerate with ``make_fixtures.py``)
each trip one headline rule; the expected findings — including the
exact shortest witness traces — are asserted verbatim.  Exactness is
the point: a kernel change that perturbs trace selection or message
wording must show up here, not in production scans.
"""

from __future__ import annotations

from repro.analysis.findings import Severity
from repro.analysis.models.rules import (
    MAX_PER_RULE,
    check_bundle_freshness,
    check_model,
    check_monitor_consistency,
    check_reachability,
)
from repro.analysis.models.scan import scan_paths
from repro.automata.automaton import Automaton, automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.core.alphabet import (
    CRITICAL,
    DECREASE_CRITICAL_POWER,
    SAFE_POWER,
)

from tests.analysis.models.conftest import FIXTURES

SIGMA = Alphabet.of([controllable("go"), uncontrollable("fault")])


def _scan(unit: str, *, resynthesize: bool = True):
    result = scan_paths(
        [FIXTURES / unit], cache=None, resynthesize=resynthesize
    )
    return sorted(result.report.findings)


def _rows(findings):
    return [(f.rule, f.severity, f.message) for f in findings]


# ----------------------------------------------------------------------
# One golden unit per rule
# ----------------------------------------------------------------------
class TestGoldenFixtures:
    def test_m001_unreachable(self):
        assert _rows(_scan("m001_unreachable")) == [
            (
                "REPRO-M001",
                Severity.WARNING,
                "automaton 'DebrisPlant': 1 unreachable state(s): ['Orphan']",
            )
        ]

    def test_m002_blocking_with_trace(self):
        assert _rows(_scan("m002_blocking")) == [
            (
                "REPRO-M001",
                Severity.WARNING,
                "automaton 'CapPlant': 1 dead state(s) (no outgoing "
                "transitions, unmarked): ['Stuck']",
            ),
            (
                "REPRO-M002",
                Severity.ERROR,
                "automaton 'CapPlant': 1 blocking state(s) ['Stuck']; "
                "shortest counterexample trace to 'Stuck': [go -> fault]",
            ),
            (
                "REPRO-M005",
                Severity.WARNING,
                "automaton 'CapPlant': uncontrollable event 'fault' forces "
                "state 'Work' into degraded state 'Stuck'; witness trace: "
                "[go]",
            ),
        ]

    def test_m003_controllability_violation(self):
        findings = _scan("m003_uncontrollable", resynthesize=False)
        assert _rows(findings) == [
            (
                "REPRO-M003",
                Severity.ERROR,
                "uncontrollable event 'fault' enabled by plant at P1 but "
                "disabled by supervisor at S1; witness trace: [go]",
            ),
            (
                "REPRO-M004",
                Severity.WARNING,
                "automaton 'S': event(s) ['fault'] are in the alphabet but "
                "never enabled at any state (spec coverage gap)",
            ),
        ]
        # With re-synthesis on, the same unit additionally reports the
        # shipped supervisor as stale (synthesis removes 'go').
        rules = [f.rule for f in _scan("m003_uncontrollable")]
        assert rules.count("REPRO-M003") == 1
        assert rules.count("REPRO-M007") == 1

    def test_m004_attribute_disagreement(self):
        findings = _scan("m004_alphabet")
        assert _rows(findings)[0] == (
            "REPRO-M004",
            Severity.ERROR,
            "event 'go' is uncontrollable in 'plant' but controllable in "
            "'supervisor'",
        )
        # The broken alphabet also makes re-synthesis impossible — M007
        # degrades to its failure branch rather than crashing the scan.
        assert findings[1].rule == "REPRO-M007"
        assert findings[1].message.startswith(
            "re-synthesis from the bundled models failed:"
        )

    def test_m005_uncontrollable_deadend(self):
        assert _rows(_scan("m005_deadend")) == [
            (
                "REPRO-M005",
                Severity.WARNING,
                "automaton 'GuardPlant': uncontrollable event 'fault' "
                "forces state 'Work' into degraded state 'Trap'; witness "
                "trace: [go]",
            )
        ]

    def test_m006_monitor_shadow(self):
        findings = _scan("m006_monitor")
        assert _rows(findings) == [
            (
                "REPRO-M004",
                Severity.WARNING,
                "automaton 'BadSupervisor': event(s) "
                "['decreaseCriticalPower'] are in the alphabet but never "
                "enabled at any state (spec coverage gap)",
            ),
            (
                "REPRO-M006",
                Severity.ERROR,
                "automaton 'BadSupervisor': 'increaseBigPower' is enabled "
                "at state 'Cap' during a capping episode — the runtime "
                "monitor (RES-I2) rejects every such execution; witness "
                "trace: [critical]",
            ),
            (
                "REPRO-M006",
                Severity.ERROR,
                "automaton 'BadSupervisor': escalated 'critical' at state "
                "'Cap' reaches 'Cap' where 'decreaseCriticalPower' cannot "
                "be executed via controllable events — the monitor's "
                "RES-I3 demand is unsatisfiable; witness trace: "
                "[critical -> critical]",
            ),
        ]

    def test_m007_stale_supervisor(self):
        findings = _scan("m007_stale")
        assert [f.rule for f in findings] == ["REPRO-M007", "REPRO-M005"]
        stale = findings[0]
        assert stale.severity is Severity.ERROR
        assert stale.message.startswith(
            "persisted supervisor is stale: re-synthesized supremal "
            "controllable supervisor diverges after trace [] "
            "(enabled only in 'StaleSup': ['go']); persisted digest "
        )


# ----------------------------------------------------------------------
# Branches the committed fixtures do not reach
# ----------------------------------------------------------------------
class TestRuleEdges:
    def test_m001_no_initial_state(self):
        automaton = Automaton("Empty", SIGMA)
        automaton.add_state("A")
        (finding,) = check_reachability(automaton, "x.json")
        assert finding.rule == "REPRO-M001"
        assert "has no initial state" in finding.message

    def test_specification_role_skips_m005(self):
        spec = automaton_from_table(
            "Spec",
            SIGMA,
            [
                ("Idle", "go", "Work"),
                ("Work", "go", "Idle"),
                ("Work", "fault", "Trap"),
            ],
            initial="Idle",
            marked=["Idle", "Work"],
            forbidden=["Trap"],
        )
        assert check_model(spec, "spec.json", role="specification") == []
        assert any(
            f.rule == "REPRO-M005"
            for f in check_model(spec, "spec.json", role="plant")
        )

    def test_m005_elision_past_cap(self):
        # MAX_PER_RULE + 2 healthy states all fall into the same trap.
        n = MAX_PER_RULE + 2
        transitions = [("H0", "go", "H1")]
        for i in range(1, n):
            transitions.append((f"H{i}", "go", f"H{(i + 1) % n}"))
        transitions += [(f"H{i}", "fault", "Trap") for i in range(n)]
        plant = automaton_from_table(
            "Wide",
            SIGMA,
            transitions,
            initial="H0",
            marked=[f"H{i}" for i in range(n)],
            forbidden=["Trap"],
        )
        findings = [
            f
            for f in check_reachability(plant, "wide.json")
            if f.rule == "REPRO-M005"
        ]
        assert len(findings) == MAX_PER_RULE + 1
        assert findings[-1].message == (
            "automaton 'Wide': 2 further uncontrollable dead-end(s) elided"
        )

    def test_m006_skips_foreign_alphabets(self):
        plain = automaton_from_table(
            "NoCapping",
            SIGMA,
            [("A", "go", "A")],
            initial="A",
            marked=["A"],
        )
        assert check_monitor_consistency(plain, "x.json") == []

    def test_m006_dead_rule_warning(self):
        sigma = Alphabet.of(
            [uncontrollable(CRITICAL), uncontrollable(SAFE_POWER)]
        )
        quiet = automaton_from_table(
            "Quiet",
            sigma,
            [("A", SAFE_POWER, "A")],
            initial="A",
            marked=["A"],
        )
        (finding,) = check_monitor_consistency(quiet, "x.json")
        assert finding.severity is Severity.WARNING
        assert "can never trigger" in finding.message

    def test_m006_clean_supervisor(self):
        sigma = Alphabet.of(
            [
                uncontrollable(CRITICAL),
                uncontrollable(SAFE_POWER),
                controllable(DECREASE_CRITICAL_POWER),
            ]
        )
        good = automaton_from_table(
            "GoodSupervisor",
            sigma,
            [
                ("Run", CRITICAL, "Cap"),
                ("Cap", CRITICAL, "Cap"),
                ("Cap", DECREASE_CRITICAL_POWER, "Cap"),
                ("Cap", SAFE_POWER, "Run"),
            ],
            initial="Run",
            marked=["Run", "Cap"],
        )
        assert check_monitor_consistency(good, "x.json") == []

    def test_m007_language_equal_but_not_canonical(self):
        # The persisted supervisor is language-equivalent to what
        # synthesis produces but has a different canonical shape (the
        # spec unrolls the loop once) — warning, not error.
        sigma = Alphabet.of([controllable("go")])
        plant = automaton_from_table(
            "P", sigma, [("P0", "go", "P0")], initial="P0", marked=["P0"]
        )
        specification = automaton_from_table(
            "Unrolled",
            sigma,
            [("A", "go", "B"), ("B", "go", "B")],
            initial="A",
            marked=["A", "B"],
        )
        persisted = automaton_from_table(
            "Loop", sigma, [("S0", "go", "S0")], initial="S0", marked=["S0"]
        )
        (finding,) = check_bundle_freshness(
            plant, persisted, "x", specification=specification
        )
        assert finding.rule == "REPRO-M007"
        assert finding.severity is Severity.WARNING
        assert "language-equivalent" in finding.message

    def test_m007_fresh_artifact_is_clean(self):
        from repro.automata.synthesis import synthesize_supervisor

        plant = automaton_from_table(
            "P",
            SIGMA,
            [("P0", "go", "P1"), ("P1", "fault", "P0")],
            initial="P0",
            marked=["P0"],
        )
        spec = automaton_from_table(
            "Sp",
            SIGMA,
            [("A", "go", "B"), ("B", "fault", "A")],
            initial="A",
            marked=["A"],
        )
        fresh = synthesize_supervisor(plant, spec).supervisor
        assert (
            check_bundle_freshness(plant, fresh, "x", specification=spec)
            == []
        )
