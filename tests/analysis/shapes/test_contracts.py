"""Unit tests for the ``# repro: shape[...]`` contract grammar/collector."""

import textwrap

import pytest

from repro.analysis.shapes.contracts import (
    ContractError,
    collect_contracts,
    parse_spec,
)
from repro.analysis.shapes.lattice import DTYPE_F64, DTYPE_I8, Dim


def collect(source: str, path: str = "mod.py"):
    return collect_contracts(textwrap.dedent(source), path)


class TestParseSpec:
    def test_array_with_dtype(self):
        spec = parse_spec("(N, C+1) i1")
        assert spec.kind == "array"
        assert spec.dtype == DTYPE_I8
        assert spec.shape == (Dim.sym("N"), Dim.sym("C") + Dim.const(1))

    def test_default_dtype_is_float64(self):
        assert parse_spec("(N,)").dtype == DTYPE_F64

    def test_rng_budget_tag(self):
        spec = parse_spec("(N, _) f8 !rng[q + 2*(C+1)]")
        q, C = Dim.sym("q"), Dim.sym("C")
        assert spec.rng_budget == q + Dim.const(2) * (C + Dim.const(1))
        # `_` is a fresh opaque placeholder, distinct per parse.
        assert spec.shape[1].is_opaque

    def test_optional_none(self):
        spec = parse_spec("(n_opp,) f8 | none")
        assert spec.optional

    def test_int_with_dim(self):
        spec = parse_spec("int[q + 2]")
        assert spec.kind == "int"
        assert spec.dim == Dim.sym("q") + Dim.const(2)

    def test_plain_scalars(self):
        assert parse_spec("int").kind == "int"
        assert parse_spec("float").kind == "float"
        assert parse_spec("bool").kind == "bool"
        assert parse_spec("none").kind == "none"

    def test_obj(self):
        spec = parse_spec("obj[FleetCluster]")
        assert spec.kind == "obj"
        assert spec.class_name == "FleetCluster"

    def test_unknown(self):
        assert parse_spec("?").kind == "unknown"

    def test_malformed_raises(self):
        with pytest.raises(ContractError):
            parse_spec("(N,,) f8")
        with pytest.raises(ContractError):
            parse_spec("(N,) f16")


class TestCollector:
    def test_function_params_and_return(self):
        contracts = collect(
            """\
            def step(requests, mask):
                # repro: shape[requests: (N,) f8; mask: (N,) b1; -> (N,) f8]
                return requests
            """
        )
        fc = contracts.functions["step"]
        assert set(fc.params) == {"requests", "mask"}
        assert fc.returns is not None and fc.returns.kind == "array"
        assert not contracts.findings

    def test_multiple_comment_lines_merge(self):
        contracts = collect(
            """\
            def f(a, b):
                # repro: shape[a: (N, p) f8]
                # repro: shape[b: (N, m) f8; -> (N,) f8]
                return a[:, 0]
            """
        )
        fc = contracts.functions["f"]
        assert set(fc.params) == {"a", "b"}
        assert fc.returns is not None

    def test_contract_on_def_line_window(self):
        contracts = collect(
            """\
            def g(
                n_devices,
            ) -> None:  # repro: shape[n_devices: int[N]]
                pass
            """
        )
        assert "n_devices" in contracts.functions["g"].params

    def test_assignment_spec(self):
        contracts = collect(
            """\
            import numpy as np
            table = np.zeros(7)  # repro: shape[(n_opp,) f8]
            """
        )
        assert 2 in contracts.assign_specs
        assert contracts.assign_specs[2].kind == "array"

    def test_class_attribute_specs(self):
        contracts = collect(
            """\
            import numpy as np

            class Servo:
                def __init__(self, n):
                    # repro: shape[n: int[N]]
                    self.X = np.zeros((n, 4))  # repro: shape[(N, n2) f8]
            """
        )
        assert "X" in contracts.class_attrs["Servo"]

    def test_dataclass_field_spec(self):
        contracts = collect(
            """\
            from dataclasses import dataclass
            import numpy as np

            @dataclass
            class Telemetry:
                power_w: np.ndarray  # repro: shape[(N,) f8]
            """
        )
        assert "power_w" in contracts.class_attrs["Telemetry"]

    def test_type_ignore_tail_still_matches(self):
        # `# type: ignore[...]  # repro: shape[...]` is ONE comment
        # token; the contract pattern must match mid-token.
        contracts = collect(
            """\
            from dataclasses import dataclass, field
            import numpy as np

            @dataclass
            class Point:
                u_scale: np.ndarray = field(default=None)  # type: ignore[assignment]  # repro: shape[(m,) f8 | none]
            """
        )
        spec = contracts.class_attrs["Point"]["u_scale"]
        assert spec.optional

    def test_unknown_param_is_s000(self):
        contracts = collect(
            """\
            def f(x):
                # repro: shape[y: (N,) f8]
                return x
            """
        )
        assert [(f.line, f.rule) for f in contracts.findings] == [
            (2, "REPRO-S000")
        ]
        assert "unknown parameter 'y'" in contracts.findings[0].message

    def test_bare_spec_on_function_is_s000(self):
        contracts = collect(
            """\
            def f(x):
                # repro: shape[(N,) f8]
                return x
            """
        )
        assert contracts.findings[0].rule == "REPRO-S000"
        assert "`name:` or `->`" in contracts.findings[0].message

    def test_dangling_contract_is_s000(self):
        contracts = collect(
            """\
            import numpy as np
            # repro: shape[(N,) f8]
            x = 1
            """
        )
        assert contracts.findings[0].rule == "REPRO-S000"
        assert "attaches to no def/assignment" in contracts.findings[0].message

    def test_malformed_grammar_is_s000(self):
        contracts = collect(
            """\
            def f(x):
                # repro: shape[x: (N,,) f8]
                return x
            """
        )
        assert contracts.findings[0].rule == "REPRO-S000"
