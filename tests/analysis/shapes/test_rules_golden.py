"""Golden fixtures: every REPRO-S rule on a hand-seeded bad module.

The expected findings — locations and messages — are asserted verbatim.
Exactness is the point: these strings are the analyzer's user interface,
and a drifting dim rendering or off-by-one anchor is a regression even
when the bug is still "caught".
"""

import pytest

from repro.analysis.shapes.rules import scan_module

from tests.analysis.shapes.conftest import FIXTURES

BADPROJ = FIXTURES / "badproj"


def scan_fixture(stem: str):
    path = BADPROJ / f"{stem}.py"
    scan = scan_module(
        path.read_text(encoding="utf-8"), str(path), module=f"badproj.{stem}"
    )
    return [(f.line, f.rule, f.message) for f in scan.findings]


class TestS000Contracts:
    def test_malformed_and_dangling_contracts(self):
        assert scan_fixture("s000_contract") == [
            (
                5,
                "REPRO-S000",
                "contract names unknown parameter 'y' of unknown_param()",
            ),
            (
                10,
                "REPRO-S000",
                "function contracts need `name:` or `->` prefixes",
            ),
            (
                15,
                "REPRO-S000",
                "malformed shape contract: empty dimension in shape (N,,)",
            ),
        ]


class TestS001Broadcast:
    def test_symbolic_shape_mismatches(self):
        assert scan_fixture("s001_broadcast") == [
            (
                8,
                "REPRO-S001",
                "broadcast mismatch: (N, n) vs (N, p) (dim n vs p)",
            ),
            (
                13,
                "REPRO-S001",
                "np.matmul inner dimension mismatch: p vs n",
            ),
            (
                18,
                "REPRO-S001",
                "assigned value shape (N, p) does not match slice target "
                "shape (N, n)",
            ),
            (
                23,
                "REPRO-S001",
                "out= shape (N, p) does not match result shape (N, m)",
            ),
            (
                28,
                "REPRO-S001",
                "reshape element-count mismatch: (N, m) -> (4, 4)",
            ),
        ]


class TestS002DtypeFlow:
    def test_narrowing_and_contract_violations(self):
        assert scan_fixture("s002_dtype") == [
            (
                8,
                "REPRO-S002",
                "implicit dtype narrowing: float64 result written into "
                "float32 out= target",
            ),
            (
                13,
                "REPRO-S002",
                "implicit dtype narrowing: float64 value written into "
                "int64 slice target",
            ),
            (
                18,
                "REPRO-S002",
                "dtype contract violation: parameter 'idx' of _lookup() "
                "expects float64 but receives int64",
            ),
        ]


class TestS003Aliasing:
    def test_seeded_aliased_out_bugs(self):
        assert scan_fixture("s003_alias") == [
            (
                17,
                "REPRO-S003",
                "out= of np.add aliases an input operand through a "
                "different view",
            ),
            (
                22,
                "REPRO-S003",
                "out= of non-elementwise np.matmul aliases an input "
                "operand",
            ),
        ]
        # and NOT line 27: clamping through the *same* view
        # (min(max(u, lo, out=u), hi, out=u)) is the disciplined idiom.


class TestS004CtypesAbi:
    def test_seeded_abi_mismatches(self):
        assert scan_fixture("s004_ctypes") == [
            (
                37,
                "REPRO-S004",
                "argtype 2 of dot() is c_longlong but the C parameter 'x' "
                "is const double *",
            ),
            (
                42,
                "REPRO-S004",
                "ctypes binding of saxpy() has 3 argtypes but the C "
                "signature has 4 parameters",
            ),
            (
                48,
                "REPRO-S004",
                "restype of count_saturated() is c_double but the C "
                "function returns int",
            ),
        ]


class TestS005RngAccounting:
    def test_seeded_draw_count_bugs(self):
        assert scan_fixture("s005_rng") == [
            (
                27,
                "REPRO-S005",
                "RNG tick slice width q does not match the per-tick draw "
                "budget 2+q",
            ),
            (
                36,
                "REPRO-S005",
                "RNG tick block consumption ends at draw 1+q of the 2+q "
                "budgeted draws per tick",
            ),
        ]


class TestCleanFixture:
    def test_contract_heavy_correct_code_is_silent(self):
        assert scan_fixture("clean") == []

    def test_clean_module_counts_as_contracted(self):
        path = BADPROJ / "clean.py"
        scan = scan_module(
            path.read_text(encoding="utf-8"), str(path), module="badproj.clean"
        )
        assert scan.contracted
