"""Unit tests for the symbolic shape lattice (Dim polynomials, dtypes)."""

from repro.analysis.shapes.lattice import (
    DTYPE_BOOL,
    DTYPE_F32,
    DTYPE_F64,
    DTYPE_I8,
    DTYPE_I64,
    DTYPE_UNKNOWN,
    Dim,
    broadcast_dims,
    broadcast_shapes,
    dims_compatible,
    dtype_narrows,
    format_shape,
    fresh_dim,
    promote_dtypes,
    shapes_equal,
)

N = Dim.sym("N")
C = Dim.sym("C")
q = Dim.sym("q")
one = Dim.const(1)
two = Dim.const(2)


class TestDimAlgebra:
    def test_canonical_string(self):
        assert str(two + two * C + q) == "2+2*C+q"
        assert str(Dim.const(0)) == "0"
        assert str(-N) == "-N"

    def test_tick_window_cancellation(self):
        # The S005 load-bearing identity: (u+1)*W - u*W == W even when
        # u is opaque, because the polynomial difference cancels exactly.
        u = fresh_dim()
        W = two + q
        assert (u + one) * W - u * W == W

    def test_products_expand_and_commute(self):
        assert (N + one) * (C + two) == N * C + two * N + C + two
        assert N * C == C * N

    def test_const_value(self):
        assert (two + two).const_value == 4
        assert N.const_value is None

    def test_substitute(self):
        poly = q + two * (C + one)
        assert poly.substitute({"q": two, "C": N}) == two * N + Dim.const(4)
        # Unmapped symbols survive unchanged.
        assert poly.substitute({}) == poly

    def test_as_symbol(self):
        assert N.as_symbol == "N"
        assert (N + one).as_symbol is None
        assert (two * N).as_symbol is None
        assert (N * C).as_symbol is None
        assert two.as_symbol is None

    def test_opaque_dims_are_distinct(self):
        a, b = fresh_dim(), fresh_dim()
        assert a != b
        assert a.is_opaque and b.is_opaque
        assert not (N + one).is_opaque


class TestCompatibility:
    def test_equal_dims_compatible(self):
        assert dims_compatible(N + C, C + N)

    def test_opaque_compatible_with_anything(self):
        assert dims_compatible(fresh_dim(), N)
        assert dims_compatible(N, fresh_dim())

    def test_literal_one_broadcasts(self):
        assert dims_compatible(one, N)
        assert broadcast_dims(one, N) == N

    def test_named_mismatch(self):
        assert not dims_compatible(N, C)
        assert not dims_compatible(N, two)


class TestShapes:
    def test_broadcast_aligns_trailing(self):
        out, err = broadcast_shapes([(N, C), (C,)])
        assert err is None
        assert out == (N, C)

    def test_broadcast_scalar_row(self):
        out, err = broadcast_shapes([(N, C), (one, C)])
        assert err is None
        assert out == (N, C)

    def test_broadcast_mismatch_reports_dims(self):
        out, err = broadcast_shapes([(N, C), (N, q)])
        assert out is None
        assert err == (C, q)

    def test_broadcast_unknown_rank_is_unknown(self):
        out, err = broadcast_shapes([(N, C), None])
        assert out is None and err is None

    def test_format_shape(self):
        assert format_shape((N, C + one)) == "(N, 1+C)"
        assert format_shape((N,)) == "(N,)"
        assert format_shape(None) == "(?)"

    def test_shapes_equal_is_exact(self):
        assert shapes_equal((N, C), (N, C))
        assert not shapes_equal((N, fresh_dim()), (N, C))
        assert not shapes_equal((N, C), (C, N))
        assert not shapes_equal((N,), (N, C))


class TestDtypes:
    def test_promotion_ladder(self):
        assert promote_dtypes(DTYPE_BOOL, DTYPE_I8) == DTYPE_I8
        assert promote_dtypes(DTYPE_I8, DTYPE_I64) == DTYPE_I64
        assert promote_dtypes(DTYPE_F32, DTYPE_F64) == DTYPE_F64

    def test_int_float32_mix_lands_on_float64(self):
        # numpy promotes int64 + float32 to float64; the coarse ladder
        # must agree or S002 would mis-grade mixed accumulations.
        assert promote_dtypes(DTYPE_I64, DTYPE_F32) == DTYPE_F64
        assert promote_dtypes(DTYPE_F32, DTYPE_I8) == DTYPE_F64

    def test_unknown_absorbs(self):
        assert promote_dtypes(DTYPE_UNKNOWN, DTYPE_F64) == DTYPE_UNKNOWN

    def test_narrowing(self):
        assert dtype_narrows(DTYPE_F64, DTYPE_F32)
        assert dtype_narrows(DTYPE_F64, DTYPE_I64)
        assert not dtype_narrows(DTYPE_F32, DTYPE_F64)
        assert not dtype_narrows(DTYPE_F64, DTYPE_F64)
        assert not dtype_narrows(DTYPE_UNKNOWN, DTYPE_F32)
