"""CLI tests: ``python -m repro.analysis shapes`` and the ``all`` umbrella."""

import json

from repro.analysis.cli import all_main, main, shapes_main

from tests.analysis.shapes.conftest import write_project

BAD = """\
def f(a, b):
    # repro: shape[a: (N, p) f8; b: (N, m) f8; -> ?]
    return a + b
"""

CLEAN = """\
def g(a):
    # repro: shape[a: (N, p) f8; -> (N, p) f8]
    return a * 2.0
"""


def _chdir_with(tmp_path, monkeypatch, source):
    write_project(tmp_path, {"src/pkg/__init__.py": "", "src/pkg/m.py": source})
    monkeypatch.chdir(tmp_path)


class TestShapesCli:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, CLEAN)
        assert shapes_main(["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_mismatch_exits_one(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, BAD)
        assert shapes_main(["--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "REPRO-S001" in out
        assert "broadcast mismatch: (N, p) vs (N, m)" in out

    def test_dispatch_through_module_main(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, BAD)
        assert main(["shapes", "--no-cache"]) == 1
        capsys.readouterr()

    def test_json_format(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, BAD)
        shapes_main(["--no-cache", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"]["name"] == "repro-shapes"
        assert [f["rule"] for f in payload["findings"]] == ["REPRO-S001"]

    def test_sarif_format(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, BAD)
        shapes_main(["--no-cache", "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-shapes"
        assert len(run["results"]) == 1

    def test_write_baseline_then_clean_gate(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, BAD)
        assert shapes_main(["--no-cache", "--write-baseline"]) == 0
        assert (tmp_path / "shapes-baseline.json").is_file()
        capsys.readouterr()
        # The accepted finding no longer fails the gate ...
        assert shapes_main(["--no-cache"]) == 0
        capsys.readouterr()
        # ... but fixing it makes the entry stale: REPRO-N002 warns by
        # default and fails the gate under --strict.
        (tmp_path / "src" / "pkg" / "m.py").write_text(
            CLEAN, encoding="utf-8"
        )
        assert shapes_main(["--no-cache"]) == 0
        assert "REPRO-N002" in capsys.readouterr().out
        assert shapes_main(["--no-cache", "--strict"]) == 1
        capsys.readouterr()

    def test_output_file(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, BAD)
        out_file = tmp_path / "report.json"
        shapes_main(["--no-cache", "--format", "json", "--output", str(out_file)])
        capsys.readouterr()
        assert json.loads(out_file.read_text())["findings"]


class TestAllUmbrella:
    def test_summary_table_and_merged_sarif(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, CLEAN)
        assert all_main(["--no-cache", "--report-dir", "reports"]) == 0
        out = capsys.readouterr().out
        # One row per tier plus the merged totals.
        for row in ("repro-analysis", "repro-flow", "repro-shapes", "merged"):
            assert row in out

        merged = json.loads(
            (tmp_path / "reports" / "analysis-report.sarif").read_text()
        )
        assert merged["version"] == "2.1.0"
        tools = [r["tool"]["driver"]["name"] for r in merged["runs"]]
        # One run per tool, shapes included.
        assert tools == sorted(set(tools))
        assert "repro-shapes" in tools and "repro-flow" in tools

        # Per-tier secondary reports ride along for CI upload.
        assert (tmp_path / "reports" / "shapes-report.sarif").is_file()
        assert (tmp_path / "reports" / "shapes-report.json").is_file()
        assert (tmp_path / "reports" / "flow-report.sarif").is_file()

    def test_shapes_error_fails_the_umbrella(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, BAD)
        assert all_main(["--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "[repro-shapes]" in out
        assert "REPRO-S001" in out

    def test_dispatch_through_module_main(self, tmp_path, monkeypatch, capsys):
        _chdir_with(tmp_path, monkeypatch, CLEAN)
        assert main(["all", "--no-cache"]) == 0
        capsys.readouterr()
