"""Repo self-scan: the shapes analyzer gates src/repro with zero
non-baselined findings — the acceptance criterion of the shapes gate.

Unlike the flow tier (whose baseline carries the deliberate F003
exemptions), the shapes baseline is *empty*: the contracted kernels
pass the abstract interpreter outright, including the ctypes ABI
cross-check of the embedded C kernels.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.flow.baseline import Baseline
from repro.analysis.shapes.analyze import analyze_project

REPO = Path(__file__).resolve().parents[3]
SRC_REPRO = REPO / "src" / "repro"
BASELINE = REPO / "shapes-baseline.json"


@pytest.fixture(scope="module")
def scan():
    return analyze_project([SRC_REPRO], baseline=Baseline.load(BASELINE))


class TestSelfScan:
    def test_baseline_file_is_checked_in_and_empty(self):
        assert BASELINE.is_file()
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert payload["entries"] == []

    def test_zero_findings(self, scan):
        assert list(scan.report) == [], scan.report.format_text()

    def test_scan_covers_the_whole_package(self, scan):
        assert scan.stats.modules_total > 100

    def test_kernel_modules_are_contracted(self, scan):
        contracted = {
            name for name, s in scan.scans.items() if s.contracted
        }
        assert {
            "repro.platform.fleet",
            "repro.control.batch",
            "repro.control.statespace",
            "repro.control.lqg",
        } <= contracted

    def test_fused_abi_is_cross_checked(self, scan):
        # The embedded C kernels must actually be parsed — an S004
        # check that silently saw no C functions would prove nothing.
        from repro.analysis.shapes.csig import parse_c_functions

        import repro.control.fused as fused

        functions = parse_c_functions(fused._C_SOURCE)
        assert "fused_servo_step" in functions
        # The parameter this analyzer caught mis-bound as c_longlong in
        # the original binding really is a pointer in the C source.
        params = {p.name: p for p in functions["fused_servo_step"].params}
        assert params["max_step"].kind == "pointer"
        assert params["max_step"].decl == "const double *"
