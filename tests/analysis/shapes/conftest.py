"""Shared helpers for the shapes-analyzer tests."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.shapes.rules import scan_module

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def write_project(root: Path, files: dict[str, str]) -> Path:
    """Lay out a mini-project of dedented sources under ``root``."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


@pytest.fixture
def project(tmp_path):
    def _make(files: dict[str, str]) -> Path:
        return write_project(tmp_path, files)

    return _make


def scan_source(source: str, path: str = "mod.py"):
    """Scan one dedented source string; returns the sorted findings."""
    return scan_module(textwrap.dedent(source), path, module="mod").findings


def triples(findings):
    return [(f.line, f.rule, f.message) for f in findings]
