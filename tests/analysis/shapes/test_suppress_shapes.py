"""Suppression and baseline interplay for the shapes tier.

The S-rules ride the same ``# repro: noqa[...]`` and baseline machinery
as every other tier: suppressions must name real rule ids (REPRO-N001
polices typos) and baseline entries must still match a live finding
(REPRO-N002 polices staleness).
"""

import json

from repro.analysis.flow.baseline import Baseline
from repro.analysis.shapes.analyze import analyze_project

from tests.analysis.shapes.conftest import write_project

MISMATCH = """\
def f(a, b):
    # repro: shape[a: (N, p) f8; b: (N, m) f8; -> ?]
    return a + b{noqa}
"""


def _scan(tmp_path, *, noqa="", name="pkg/bad.py"):
    root = write_project(
        tmp_path, {"pkg/__init__.py": "", name: MISMATCH.format(noqa=noqa)}
    )
    return analyze_project([root / "pkg"])


class TestNoqaInterplay:
    def test_mismatch_fires_without_suppression(self, tmp_path):
        result = _scan(tmp_path)
        assert [f.rule for f in result.report] == ["REPRO-S001"]

    def test_noqa_s001_is_honored(self, tmp_path):
        result = _scan(tmp_path, noqa="  # repro: noqa[REPRO-S001]")
        assert list(result.report) == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        result = _scan(tmp_path, noqa="  # repro: noqa[REPRO-S002]")
        assert [f.rule for f in result.report] == ["REPRO-S001"]

    def test_unknown_s_id_is_n001(self, tmp_path):
        result = _scan(tmp_path, noqa="  # repro: noqa[REPRO-S099]")
        rules = sorted(f.rule for f in result.report)
        assert rules == ["REPRO-N001", "REPRO-S001"]
        n001 = next(f for f in result.report if f.rule == "REPRO-N001")
        assert "unknown rule id 'REPRO-S099'" in n001.message

    def test_empty_noqa_is_n001(self, tmp_path):
        result = _scan(tmp_path, noqa="  # repro: noqa[]")
        rules = sorted(f.rule for f in result.report)
        assert rules == ["REPRO-N001", "REPRO-S001"]


class TestBaselineInterplay:
    def _baseline_for(self, tmp_path, findings):
        path = tmp_path / "shapes-baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "flow-baseline/1",
                    "entries": [
                        {
                            "path": f.path,
                            "rule": f.rule,
                            "message": f.message,
                        }
                        for f in findings
                    ],
                }
            ),
            encoding="utf-8",
        )
        return Baseline.load(path)

    def test_baselined_finding_is_absorbed(self, tmp_path):
        raw = _scan(tmp_path)
        baseline = self._baseline_for(tmp_path, list(raw.report))
        root = tmp_path / "pkg"
        result = analyze_project([root], baseline=baseline)
        assert list(result.report) == []

    def test_stale_entry_is_n002(self, tmp_path):
        raw = _scan(tmp_path)
        baseline = self._baseline_for(tmp_path, list(raw.report))
        # Fix the bug the baseline vouched for; the entry goes stale.
        (tmp_path / "pkg" / "bad.py").write_text(
            MISMATCH.format(noqa="").replace("(N, m)", "(N, p)"),
            encoding="utf-8",
        )
        result = analyze_project([tmp_path / "pkg"], baseline=baseline)
        assert [f.rule for f in result.report] == ["REPRO-N002"]
        assert "stale baseline entry" in result.report.findings[0].message
