"""Abstract-interpreter behavior tests beyond the golden fixtures:
polymorphic call-site unification, integer contracts, and the value
kinds (None / scalar / concatenate / broadcast_to) the fleet and batch
kernels lean on."""

from tests.analysis.shapes.conftest import scan_source, triples


class TestPolymorphicCalls:
    def test_pure_symbols_bind_per_call_site(self):
        # `matrix: (r, k)` accepts any 2-D operand; `r`/`k` bind on
        # first use and must stay consistent within the signature.
        findings = scan_source(
            """\
            import numpy as np


            def matvec(matrix, x):
                # repro: shape[matrix: (r, k) f8; x: (N, k) f8; -> (N, r) f8]
                return x @ matrix.T


            def caller(big, z, out):
                # repro: shape[big: (p+n, m) f8; z: (N, m) f8; out: (N, p+n) f8]
                out[:, :] = matvec(big, z)
            """
        )
        assert findings == []

    def test_bound_symbol_mismatch_in_later_param(self):
        findings = scan_source(
            """\
            import numpy as np


            def matvec(matrix, x):
                # repro: shape[matrix: (r, k) f8; x: (N, k) f8; -> (N, r) f8]
                return x @ matrix.T


            def caller(big, z):
                # repro: shape[big: (p, m) f8; z: (N, n) f8; -> (N, p) f8]
                return matvec(big, z)
            """
        )
        assert triples(findings) == [
            (
                11,
                "REPRO-S001",
                "assigned value shape (N, n) does not match parameter 'x' "
                "of matvec() shape (N, m)",
            )
        ]

    def test_return_shape_uses_caller_binding(self):
        # The *return* contract is instantiated with the caller's
        # binding, so a wrong store target downstream is still caught.
        findings = scan_source(
            """\
            import numpy as np


            def matvec(matrix, x):
                # repro: shape[matrix: (r, k) f8; x: (N, k) f8; -> (N, r) f8]
                return x @ matrix.T


            def caller(big, z, out):
                # repro: shape[big: (p+n, m) f8; z: (N, m) f8; out: (N, m) f8]
                out[:, :] = matvec(big, z)
            """
        )
        assert triples(findings) == [
            (
                11,
                "REPRO-S001",
                "assigned value shape (N, n+p) does not match slice target "
                "shape (N, m)",
            )
        ]


class TestIntegerContracts:
    def test_lone_int_symbol_binds_polymorphically(self):
        # A pure-symbol `int[N]` contract binds per call site, so the
        # callee's arrays come back in the *caller's* dimension — and a
        # wrong downstream declaration is caught at the return contract.
        findings = scan_source(
            """\
            import numpy as np


            def alloc(n_devices):
                # repro: shape[n_devices: int[N]; -> (N, 4) f8]
                return np.zeros((n_devices, 4))


            def caller(n_cores):
                # repro: shape[n_cores: int[C]; -> (N, 4) f8]
                return alloc(n_cores)
            """
        )
        assert triples(findings) == [
            (
                11,
                "REPRO-S001",
                "assigned value shape (C, 4) does not match return value "
                "of caller() shape (N, 4)",
            )
        ]

    def test_int_dim_mismatch_against_bound_symbol(self):
        # Once `k` is bound by the first argument, `int[k + 1]` is a
        # concrete expectation the second argument must meet.
        findings = scan_source(
            """\
            import numpy as np


            def windowed(n_lanes, n_edge):
                # repro: shape[n_lanes: int[k]; n_edge: int[k + 1]; -> (k,) f8]
                return np.zeros(n_lanes)


            def caller(n):
                # repro: shape[n: int[C]; -> (C,) f8]
                return windowed(n, n)
            """
        )
        assert triples(findings) == [
            (
                11,
                "REPRO-S001",
                "integer contract mismatch: parameter 'n_edge' of "
                "windowed() declared 1+C but receives C",
            )
        ]

    def test_int_arithmetic_flows_into_shapes(self):
        findings = scan_source(
            """\
            import numpy as np


            def alloc(n_cores):
                # repro: shape[n_cores: int[C]; -> (1+C,) f8]
                return np.zeros(n_cores + 1)
            """
        )
        assert findings == []


class TestValueKinds:
    def test_none_assigned_to_required_array(self):
        findings = scan_source(
            """\
            import numpy as np


            class Box:
                def __init__(self, n):
                    # repro: shape[n: int[N]]
                    self.buf = np.zeros(n)  # repro: shape[(N,) f8]

                def clear(self):
                    self.buf = None
            """
        )
        assert triples(findings) == [
            (
                10,
                "REPRO-S001",
                "None assigned to attribute Box.buf with array contract "
                "(N,)",
            )
        ]

    def test_optional_contract_accepts_none(self):
        findings = scan_source(
            """\
            import numpy as np


            class Box:
                def __init__(self, n):
                    # repro: shape[n: int[N]]
                    self.buf = np.zeros(n)  # repro: shape[(N,) f8 | none]

                def clear(self):
                    self.buf = None
            """
        )
        assert findings == []

    def test_scalar_assigned_to_array_contract(self):
        findings = scan_source(
            """\
            import numpy as np


            class Box:
                def __init__(self, n):
                    # repro: shape[n: int[N]]
                    self.buf = np.zeros(n)  # repro: shape[(N,) f8]

                def reset(self):
                    self.buf = 0.0
            """
        )
        assert triples(findings) == [
            (
                10,
                "REPRO-S001",
                "scalar value assigned to attribute Box.buf with array "
                "contract (N,)",
            )
        ]

    def test_concatenate_non_axis_mismatch(self):
        findings = scan_source(
            """\
            import numpy as np


            def f(a, b):
                # repro: shape[a: (N, p) f8; b: (C, m) f8; -> ?]
                return np.concatenate([a, b], axis=1)
            """
        )
        assert triples(findings) == [
            (
                6,
                "REPRO-S001",
                "concatenate mismatch on non-axis dimension: N vs C",
            )
        ]

    def test_broadcast_to_incompatible(self):
        findings = scan_source(
            """\
            import numpy as np


            def f(row):
                # repro: shape[row: (C,) f8; -> ?]
                return np.broadcast_to(row, (4, 5))
            """
        )
        assert triples(findings) == [
            (
                6,
                "REPRO-S001",
                "cannot broadcast (C,) to (4, 5) (dim C vs 5)",
            )
        ]

    def test_where_joins_branches(self):
        findings = scan_source(
            """\
            import numpy as np


            def f(mask, a, b):
                # repro: shape[mask: (N,) b1; a: (N,) f8; b: (N,) f8; -> (N,) f8]
                return np.where(mask, a, b)
            """
        )
        assert findings == []


class TestBufferDiscipline:
    def test_double_buffer_rotation_keeps_contracts(self):
        # The batch.py idiom: rotate spare/live buffers through attrs;
        # refine_with_spec must keep the computed view identity so the
        # rotation neither errors nor loses aliasing.
        findings = scan_source(
            """\
            import numpy as np


            class Servo:
                def __init__(self, n_rows, n_inputs):
                    # repro: shape[n_rows: int[N]]
                    self.DU = np.zeros((n_rows, n_inputs))  # repro: shape[(N, m) f8]
                    self._du_spare = np.zeros_like(self.DU)  # repro: shape[(N, m) f8]

                def rotate(self):
                    out = self._du_spare
                    self._du_spare = self.DU
                    self.DU = out
            """
        )
        assert findings == []

    def test_clamp_chain_through_same_view_is_allowed(self):
        findings = scan_source(
            """\
            import numpy as np


            def clamp(u, lo, hi):
                # repro: shape[u: (N, m) f8; lo: (N, m) f8; hi: (N, m) f8; -> (N, m) f8]
                return np.minimum(np.maximum(u, lo, out=u), hi, out=u)
            """
        )
        assert findings == []
