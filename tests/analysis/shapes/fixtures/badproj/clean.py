"""Contract-heavy but correct code: the analyzer must stay silent.

Exercises the same features the seeded-bug fixtures break: polymorphic
call contracts, matmul chains, ``out=`` double-buffer discipline, the
chunked-RNG tick protocol, and dtype contracts.
"""

import numpy as np


def matvec_columns(matrix, x, out):
    # repro: shape[matrix: (r, k) f8; x: (N, k) f8; out: (N, r) f8; -> (N, r) f8]
    np.matmul(x, matrix.T, out=out)
    return out


class Servo:
    def __init__(self, n_rows, n_sensors, n_state, n_outputs):
        # repro: shape[n_rows: int[N]; n_sensors: int[q]]
        # repro: shape[n_state: int[n]; n_outputs: int[p]]
        self.n_sensors = n_sensors  # repro: shape[int[q]]
        self._per_tick = n_sensors + 2  # repro: shape[int[q + 2]]
        self._used = 0  # repro: shape[int]
        self.state = np.zeros((n_rows, n_state))  # repro: shape[(N, n) f8]
        self.gain = np.zeros((n_outputs, n_state))  # repro: shape[(p, n) f8]
        self.meas = np.zeros((n_rows, n_outputs))  # repro: shape[(N, p) f8]
        self._scratch = np.zeros_like(self.meas)  # repro: shape[(N, p) f8]
        rng = np.random.default_rng(99)
        self._noise = rng.standard_normal(  # repro: shape[(N, _) f8 !rng[q + 2]]
            (n_rows, 64 * (n_sensors + 2))
        )

    def predict(self):
        # repro: shape[-> (N, p) f8]
        matvec_columns(self.gain, self.state, self._scratch)
        np.subtract(self.meas, self._scratch, out=self._scratch)
        return self._scratch

    def tick(self):
        u = self._used
        w = self._per_tick
        block = self._noise[:, u * w : (u + 1) * w]
        sensors = block[:, 0 : self.n_sensors]
        rest = block[:, self.n_sensors : self.n_sensors + 2]
        self._used = u + 1
        return sensors.sum() + rest.sum()
