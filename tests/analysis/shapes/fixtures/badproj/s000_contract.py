"""Seeded REPRO-S000 bugs: malformed and dangling contracts."""


def unknown_param(x):
    # repro: shape[y: (N,) f8]
    return x


def bare_function_spec(x):
    # repro: shape[(N,) f8]
    return x


def bad_grammar(x):
    # repro: shape[x: (N,,) f8]
    return x
