"""Seeded REPRO-S004 bugs: ctypes bindings drifting from the C source.

Modeled on the real defect this analyzer caught in
``repro/control/fused.py``: an argtype declared ``c_longlong`` for a C
parameter that is actually ``const double *`` — silently "working" on
x86-64/AArch64 only because integers and pointers share argument
registers there.
"""

import ctypes

KERNEL_SOURCE = """
typedef long long i64;

double dot(i64 n, const double *x, const double *y) {
    double acc = 0.0;
    for (i64 i = 0; i < n; i++) acc += x[i] * y[i];
    return acc;
}

void saxpy(i64 n, double a, const double *x, double *y) {
    for (i64 i = 0; i < n; i++) y[i] += a * x[i];
}

int count_saturated(i64 n, const double *u, const double *hi) {
    int hits = 0;
    for (i64 i = 0; i < n; i++) hits += (u[i] >= hi[i]);
    return hits;
}
"""


def bind(lib):
    dot = lib.dot
    # Seeded bug (the fused.py defect): argtype 2 says integer, the C
    # parameter is a pointer.
    dot.argtypes = [ctypes.c_longlong, ctypes.c_longlong, ctypes.c_void_p]
    dot.restype = ctypes.c_double

    saxpy = lib.saxpy
    # Seeded bug: one argtype short — the trailing `y` pointer is missing.
    saxpy.argtypes = [ctypes.c_longlong, ctypes.c_double, ctypes.c_void_p]
    saxpy.restype = None

    count = lib.count_saturated
    count.argtypes = [ctypes.c_longlong, ctypes.c_void_p, ctypes.c_void_p]
    # Seeded bug: restype declares a double for a C `int` return.
    count.restype = ctypes.c_double
    return dot, saxpy, count
