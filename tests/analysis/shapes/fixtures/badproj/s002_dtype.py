"""Seeded REPRO-S002 bugs: dtype-flow violations on contracted arrays."""

import numpy as np


def narrowed_out(z, mask_buf):
    # repro: shape[z: (N, p) f8; mask_buf: (N, p) f4]
    np.add(z, 1.0, out=mask_buf)


def narrowed_store(z, counts):
    # repro: shape[z: (N, p) f8; counts: (N, p) i8]
    counts[:, :] = z


def wrong_dtype_arg(idx, table):
    # repro: shape[idx: (N,) i8; table: (n_opp,) f8; -> (N,) f8]
    return _lookup(table, idx)


def _lookup(table, idx):
    # repro: shape[table: (n_opp,) f8; idx: (N,) f8; -> (N,) f8]
    return table[0] + idx
