"""Seeded REPRO-S005 bugs: static RNG draw-count mismatches.

Mirrors the fleet platform's chunked-noise protocol: one Gaussian
buffer is pre-drawn with a fixed per-tick budget, and every consumer
slices its draws out of the current tick block.  A consumer that takes
the wrong width (or a tick that forgets to hand out the last draws)
desynchronizes every stream that shares the buffer.
"""

import numpy as np


class NoisyDevice:
    def __init__(self, n_devices, n_sensors):
        # repro: shape[n_devices: int[N]; n_sensors: int[q]]
        self.n_sensors = n_sensors  # repro: shape[int[q]]
        self._per_tick = n_sensors + 2  # repro: shape[int[q + 2]]
        self._used = 0  # repro: shape[int]
        rng = np.random.default_rng(1234)
        self._noise = rng.standard_normal(  # repro: shape[(N, _) f8 !rng[q + 2]]
            (n_devices, 64 * (n_sensors + 2))
        )

    def tick_short_width(self):
        u = self._used
        w = self._per_tick
        block = self._noise[:, u * w : u * w + self.n_sensors]
        self._used = u + 1
        return block

    def tick_stale_offset(self):
        u = self._used
        w = self._per_tick
        block = self._noise[:, u * w : (u + 1) * w]
        sensors = block[:, 0 : self.n_sensors]
        bias = block[:, self.n_sensors : self.n_sensors + 1]
        self._used = u + 1
        return sensors + bias
