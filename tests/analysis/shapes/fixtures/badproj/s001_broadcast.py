"""Seeded REPRO-S001 bugs: symbolic broadcast/contract mismatches."""

import numpy as np


def gains_mismatch(state, gain):
    # repro: shape[state: (N, n) f8; gain: (N, p) f8; -> (N, n) f8]
    return state + gain


def inner_dim(matrix, x):
    # repro: shape[matrix: (p, n) f8; x: (N, p) f8; -> (N, n) f8]
    return np.matmul(x, matrix.T @ matrix)


def stored_row(z, buf):
    # repro: shape[z: (N, p) f8; buf: (N, n) f8]
    buf[:, :] = z


def wrong_out(a, b, scratch):
    # repro: shape[a: (N, m) f8; b: (N, m) f8; scratch: (N, p) f8]
    np.add(a, b, out=scratch)


def bad_reshape(flat):
    # repro: shape[flat: (N, m) f8; -> ?]
    return flat.reshape((4, 4))
