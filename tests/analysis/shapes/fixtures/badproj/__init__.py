"""Golden bad-code fixtures for the array-contract analyzer.

One module per REPRO-S rule; every seeded bug is asserted verbatim
(location and message) by ``test_rules_golden.py``.
"""
