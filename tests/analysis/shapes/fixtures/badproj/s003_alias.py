"""Seeded REPRO-S003 bugs: out= aliasing that breaks buffer discipline.

The elementwise case mirrors a shifted-window update: writing a sum
back through a *different* view of the same buffer makes later lanes
read already-updated values.  The non-elementwise case is the classic
``matmul(..., out=<operand>)``, which numpy computes into the operand
while still reading it.
"""

import numpy as np


def shifted_update(buf):
    # repro: shape[buf: (N, m) f8]
    head = buf[:, :-1]
    tail = buf[:, 1:]
    np.add(tail, 1.0, out=head)


def matmul_in_place(a, b):
    # repro: shape[a: (n, n) f8; b: (n, n) f8; -> (n, n) f8]
    return np.matmul(a, b, out=a)


def disciplined(u, lo, hi):
    # repro: shape[u: (N, m) f8; lo: (N, m) f8; hi: (N, m) f8; -> (N, m) f8]
    return np.minimum(np.maximum(u, lo, out=u), hi, out=u)
