"""Incremental-cache tests for the shapes tier.

The tier caches *findings*, not symbol tables: every S-rule is
intra-module, so a warm scan replays per-module records without
parsing or interpreting anything.  The cache directory is shared with
the flow analyzer — the tiers must stay schema-disjoint.
"""

from repro.analysis.flow.analyze import analyze_project as flow_analyze
from repro.analysis.flow.cache import ModuleCache
from repro.analysis.shapes.analyze import analyze_project, make_cache
from repro.analysis.shapes.rules import SHAPES_SCHEMA, scan_module

from tests.analysis.shapes.conftest import write_project

BAD_SOURCE = """\
def f(a, b):
    # repro: shape[a: (N, p) f8; b: (N, m) f8; -> ?]
    return a + b
"""

CLEAN_SOURCE = """\
def g(a):
    # repro: shape[a: (N, p) f8; -> (N, p) f8]
    return a * 2.0
"""


def _project(root):
    return write_project(
        root,
        {
            "pkg/__init__.py": "",
            "pkg/bad.py": BAD_SOURCE,
            "pkg/clean.py": CLEAN_SOURCE,
        },
    )


class TestScanCache:
    def test_roundtrip_hit(self, tmp_path):
        cache = make_cache(tmp_path / "cache")
        scan = scan_module(BAD_SOURCE, "pkg/bad.py", module="pkg.bad")
        cache.store(scan, BAD_SOURCE)
        loaded = cache.load("pkg.bad", "pkg/bad.py", BAD_SOURCE)
        assert loaded is not None
        assert [f.rule for f in loaded.findings] == ["REPRO-S001"]
        assert cache.hits == 1

    def test_schema_disjoint_from_flow_cache(self, tmp_path):
        # Same directory, same module, same source: the flow analyzer's
        # entries must never satisfy a shapes lookup (or vice versa).
        shared = tmp_path / "cache"
        shapes_cache = make_cache(shared)
        flow_cache = ModuleCache(shared)
        assert shapes_cache.key_for(
            "pkg.bad", "pkg/bad.py", BAD_SOURCE
        ) != flow_cache.key_for("pkg.bad", "pkg/bad.py", BAD_SOURCE)

    def test_schema_bump_invalidates(self, tmp_path):
        cache = make_cache(tmp_path / "cache")
        scan = scan_module(BAD_SOURCE, "pkg/bad.py", module="pkg.bad")
        cache.store(scan, BAD_SOURCE)
        stale = ModuleCache(
            tmp_path / "cache",
            schema=SHAPES_SCHEMA + "-next",
            expected_type=type(scan),
        )
        assert stale.load("pkg.bad", "pkg/bad.py", BAD_SOURCE) is None


class TestIncrementalScan:
    def test_warm_scan_rescans_nothing(self, tmp_path):
        pkg = _project(tmp_path) / "pkg"
        cache_dir = tmp_path / "cache"
        cold = analyze_project([pkg], cache=make_cache(cache_dir))
        assert cold.stats.rescanned == cold.stats.modules_total == 3
        warm = analyze_project([pkg], cache=make_cache(cache_dir))
        assert warm.stats.rescanned == 0
        assert warm.stats.cache_hits == 3
        assert list(warm.report) == list(cold.report)

    def test_editing_one_module_rescans_only_it(self, tmp_path):
        root = _project(tmp_path)
        pkg = root / "pkg"
        cache_dir = tmp_path / "cache"
        analyze_project([pkg], cache=make_cache(cache_dir))
        (pkg / "clean.py").write_text(
            CLEAN_SOURCE + "\n# touched\n", encoding="utf-8"
        )
        warm = analyze_project([pkg], cache=make_cache(cache_dir))
        assert warm.stats.rescanned == 1
        assert warm.stats.cache_hits == 2

    def test_cached_and_uncached_reports_agree(self, tmp_path):
        pkg = _project(tmp_path) / "pkg"
        cache_dir = tmp_path / "cache"
        analyze_project([pkg], cache=make_cache(cache_dir))
        warm = analyze_project([pkg], cache=make_cache(cache_dir))
        uncached = analyze_project([pkg])
        assert list(warm.report) == list(uncached.report)

    def test_contracted_module_count(self, tmp_path):
        pkg = _project(tmp_path) / "pkg"
        result = analyze_project([pkg])
        # __init__.py carries no contracts; the other two do.
        assert result.stats.contracted_modules == 2

    def test_flow_and_shapes_share_directory_without_conflict(self, tmp_path):
        pkg = _project(tmp_path) / "pkg"
        shared = tmp_path / "cache"
        flow_analyze([pkg], cache=ModuleCache(shared))
        cold = analyze_project([pkg], cache=make_cache(shared))
        assert cold.stats.rescanned == 3  # flow entries are not hits
        warm = analyze_project([pkg], cache=make_cache(shared))
        assert warm.stats.cache_hits == 3
        flow_warm = flow_analyze([pkg], cache=ModuleCache(shared))
        assert flow_warm.stats.reanalyzed == 0  # and vice versa
