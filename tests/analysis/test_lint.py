"""Tests for the repo-specific AST lint rules."""

from repro.analysis.findings import Severity
from repro.analysis.lint import lint_source

COLD = "src/repro/experiments/mod.py"
HOT = "src/repro/managers/mod.py"


def rules(findings):
    return [f.rule for f in findings]


class TestL001MutableDefaults:
    def test_list_default_is_error(self):
        findings = lint_source("def f(x=[]):\n    return x\n", COLD)
        assert rules(findings) == ["REPRO-L001"]

    def test_dict_constructor_default_is_error(self):
        findings = lint_source("def f(x=dict()):\n    return x\n", COLD)
        assert rules(findings) == ["REPRO-L001"]

    def test_argparse_style_default_kwarg_is_error(self):
        source = (
            "import argparse\n"
            "parser = argparse.ArgumentParser()\n"
            'parser.add_argument("--x", default=[])\n'
        )
        findings = lint_source(source, COLD)
        assert rules(findings) == ["REPRO-L001"]
        assert findings[0].line == 3

    def test_none_default_is_fine(self):
        assert lint_source("def f(x=None):\n    return x\n", COLD) == []


class TestL002BareExcept:
    def test_bare_except_is_error(self):
        source = "try:\n    pass\nexcept:\n    pass\n"
        assert rules(lint_source(source, COLD)) == ["REPRO-L002"]

    def test_typed_except_is_fine(self):
        source = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert lint_source(source, COLD) == []


class TestL003FloatEquality:
    def test_nonzero_float_equality_is_error(self):
        assert rules(lint_source("ok = x == 1.5\n", COLD)) == ["REPRO-L003"]

    def test_not_equal_also_flagged(self):
        assert rules(lint_source("ok = 0.1 != x\n", COLD)) == ["REPRO-L003"]

    def test_exact_zero_comparison_allowed(self):
        # np.clip saturation checks legitimately compare against 0.0.
        assert lint_source("ok = x == 0.0\n", COLD) == []

    def test_integer_equality_allowed(self):
        assert lint_source("ok = x == 3\n", COLD) == []


class TestL004NumpyDtype:
    def test_hot_path_zeros_without_dtype_warns(self):
        source = "import numpy as np\ndef f():\n    return np.zeros(3)\n"
        findings = lint_source(source, HOT)
        assert rules(findings) == ["REPRO-L004"]
        assert findings[0].severity == Severity.WARNING

    def test_hot_path_zeros_with_dtype_is_fine(self):
        source = "import numpy as np\ndef f():\n    return np.zeros(3, dtype=float)\n"
        assert lint_source(source, HOT) == []

    def test_cold_path_is_exempt(self):
        source = "import numpy as np\ndef f():\n    return np.zeros(3)\n"
        assert lint_source(source, COLD) == []


class TestL005DunderAll:
    def test_init_with_imports_and_no_all_is_error(self):
        source = "from repro.core import events\n"
        findings = lint_source(source, "src/repro/core/__init__.py")
        assert rules(findings) == ["REPRO-L005"]

    def test_init_with_all_is_fine(self):
        source = 'from repro.core import events\n__all__ = ["events"]\n'
        assert lint_source(source, "src/repro/core/__init__.py") == []

    def test_plain_module_needs_no_all(self):
        assert lint_source("from repro.core import events\n", COLD) == []


class TestL006UnitSuffixes:
    def test_unsuffixed_parameter_warns(self):
        findings = lint_source("def f(period):\n    return period\n", COLD)
        assert rules(findings) == ["REPRO-L006"]
        assert findings[0].severity == Severity.WARNING

    def test_unsuffixed_local_warns(self):
        source = "def f():\n    power = 3.0\n    return power\n"
        assert rules(lint_source(source, COLD)) == ["REPRO-L006"]

    def test_unit_suffix_is_fine(self):
        source = "def f(period_ms, budget_w):\n    return period_ms + budget_w\n"
        assert lint_source(source, COLD) == []

    def test_count_suffix_is_fine(self):
        assert lint_source("def f(period_epochs):\n    return period_epochs\n", COLD) == []

    def test_all_caps_constant_is_exempt(self):
        # ALL_CAPS names label DES events, not physical quantities.
        assert lint_source("SAFE_POWER = 2\n", COLD) == []

    def test_dataclass_field_names_are_exempt(self):
        source = (
            "class Phase:\n"
            "    power = 1.0\n"
        )
        assert lint_source(source, COLD) == []


class TestL007SwallowedExceptions:
    RESILIENT = "src/repro/resilience/guard.py"
    FAULTS = "src/repro/platform/faults.py"

    def test_except_pass_in_resilience_is_error(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        findings = lint_source(source, self.RESILIENT)
        assert "REPRO-L007" in rules(findings)
        l007 = [f for f in findings if f.rule == "REPRO-L007"]
        assert l007[0].severity == Severity.ERROR

    def test_except_continue_in_faults_module_is_error(self):
        source = (
            "def f(xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            g(x)\n"
            "        except ValueError:\n"
            "            continue\n"
        )
        assert "REPRO-L007" in rules(lint_source(source, self.FAULTS))

    def test_handler_that_records_is_fine(self):
        source = (
            "def f(log):\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        log.append(1)\n"
        )
        assert "REPRO-L007" not in rules(lint_source(source, self.RESILIENT))

    def test_other_modules_are_exempt(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert "REPRO-L007" not in rules(lint_source(source, COLD))


class TestSyntaxError:
    def test_unparseable_source_is_l000(self):
        findings = lint_source("def f(:\n", COLD)
        assert rules(findings) == ["REPRO-L000"]


class TestL008AdHocParallelism:
    EXEC = "src/repro/exec/engine.py"

    def test_multiprocessing_import_outside_exec_is_error(self):
        assert rules(lint_source("import multiprocessing\n", COLD)) == [
            "REPRO-L008"
        ]

    def test_concurrent_futures_import_outside_exec_is_error(self):
        for source in (
            "import concurrent.futures\n",
            "from concurrent.futures import ProcessPoolExecutor\n",
            "from concurrent import futures\n",
            "from multiprocessing import get_context\n",
        ):
            assert rules(lint_source(source, HOT)) == ["REPRO-L008"], source

    def test_exec_layer_is_exempt(self):
        source = (
            "import multiprocessing\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
        )
        assert rules(lint_source(source, self.EXEC)) == []

    def test_unrelated_imports_are_fine(self):
        source = "import concurrency_helpers\nimport threading\n"
        assert "REPRO-L008" not in rules(lint_source(source, COLD))

    def test_message_points_at_the_engine(self):
        findings = lint_source("import multiprocessing\n", COLD)
        assert "ExperimentEngine" in findings[0].message


class TestL009NumpyTemporaries:
    KERNEL = "src/repro/platform/soc.py"

    def test_clip_in_kernel_function_is_error(self):
        source = (
            "import numpy as np\n"
            "def read(x):\n"
            "    return np.clip(x, 0.0, 2.0)\n"
        )
        findings = lint_source(source, self.KERNEL)
        assert rules(findings) == ["REPRO-L009"]
        assert findings[0].severity == Severity.ERROR

    def test_sum_in_kernel_function_is_error(self):
        source = (
            "import numpy as np\n"
            "def capacity(a):\n"
            "    return float(np.sum(a))\n"
        )
        assert rules(lint_source(source, self.KERNEL)) == ["REPRO-L009"]

    def test_allowlisted_function_is_exempt(self):
        source = (
            "import numpy as np\n"
            "def _telemetry_with_idle_insertion(cluster, total, rng):\n"
            "    values = np.zeros(4, dtype=float)\n"
            "    return float(np.sum(values))\n"
        )
        assert lint_source(source, self.KERNEL) == []

    def test_nested_function_inherits_allowlist(self):
        source = (
            "import numpy as np\n"
            "def _idle_adjusted_capacity(f, n):\n"
            "    def inner():\n"
            "        return float(np.sum(f[:n]))\n"
            "    return inner()\n"
        )
        assert lint_source(source, self.KERNEL) == []

    def test_init_is_construction_time(self):
        source = (
            "import numpy as np\n"
            "class Cluster:\n"
            "    def __init__(self, n):\n"
            "        self.f = np.zeros(n, dtype=float)\n"
        )
        assert lint_source(source, self.KERNEL) == []

    def test_module_level_allocation_is_exempt(self):
        source = "import numpy as np\nTABLE = np.zeros(4, dtype=float)\n"
        assert lint_source(source, self.KERNEL) == []

    def test_non_kernel_platform_file_is_exempt(self):
        source = (
            "import numpy as np\n"
            "def handle(x):\n"
            "    return np.clip(x, 0.0, 1.0)\n"
        )
        assert "REPRO-L009" not in rules(
            lint_source(source, "src/repro/platform/faults.py")
        )

    def test_kernel_sources_in_repo_stay_clean(self):
        from pathlib import Path

        from repro.analysis.lint import (
            STEP_KERNEL_PATH_FRAGMENTS,
            lint_file,
        )

        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        checked = 0
        for fragment in STEP_KERNEL_PATH_FRAGMENTS:
            path = root / fragment.removeprefix("platform/")
            path = root / "platform" / path.name
            if not path.exists():
                continue
            checked += 1
            errors = [
                f for f in lint_file(path) if f.rule == "REPRO-L009"
            ]
            assert errors == [], f"{path}: {errors}"
        assert checked >= 6


class TestL010BoundedWaits:
    ENGINE = "src/repro/exec/engine.py"
    SUPERVISION = "src/repro/exec/supervision.py"
    CHAOS = "src/repro/exec/chaos.py"
    CAMPAIGN = "src/repro/resilience/campaign.py"

    def test_time_sleep_in_exec_is_error(self):
        source = "import time\ndef f():\n    time.sleep(1.0)\n"
        findings = lint_source(source, self.ENGINE)
        assert rules(findings) == ["REPRO-L010"]
        assert findings[0].severity == Severity.ERROR

    def test_from_time_import_sleep_is_error(self):
        source = "from time import sleep\ndef f():\n    sleep(0.1)\n"
        assert rules(lint_source(source, self.ENGINE)) == ["REPRO-L010"]

    def test_sleep_in_resilience_is_error(self):
        source = "import time\ndef f():\n    time.sleep(1.0)\n"
        assert rules(lint_source(source, self.CAMPAIGN)) == ["REPRO-L010"]

    def test_unbounded_result_is_error(self):
        source = "def f(future):\n    return future.result()\n"
        assert rules(lint_source(source, self.ENGINE)) == ["REPRO-L010"]

    def test_result_with_timeout_is_fine(self):
        source = "def f(future):\n    return future.result(timeout=0)\n"
        assert lint_source(source, self.ENGINE) == []

    def test_unbounded_wait_is_error(self):
        source = (
            "from concurrent.futures import wait\n"
            "def f(fs):\n"
            "    return wait(fs)\n"
        )
        assert rules(lint_source(source, self.ENGINE)) == ["REPRO-L010"]

    def test_aliased_wait_is_still_flagged(self):
        source = (
            "from concurrent.futures import wait as futures_wait\n"
            "def f(fs):\n"
            "    return futures_wait(fs)\n"
        )
        assert rules(lint_source(source, self.ENGINE)) == ["REPRO-L010"]

    def test_wait_with_timeout_is_fine(self):
        source = (
            "from concurrent.futures import wait\n"
            "def f(fs, poll_s):\n"
            "    return wait(fs, timeout=poll_s)\n"
        )
        assert lint_source(source, self.ENGINE) == []

    def test_supervision_policy_module_is_exempt(self):
        source = "import time\ndef backoff():\n    time.sleep(0.05)\n"
        assert lint_source(source, self.SUPERVISION) == []

    def test_chaos_injector_is_exempt(self):
        source = "import time\ndef hang():\n    time.sleep(15.0)\n"
        assert lint_source(source, self.CHAOS) == []

    def test_other_layers_are_exempt(self):
        source = "import time\ndef f():\n    time.sleep(1.0)\n"
        assert "REPRO-L010" not in rules(lint_source(source, COLD))

    def test_execution_layer_sources_in_repo_stay_clean(self):
        from pathlib import Path

        from repro.analysis.lint import lint_file

        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        checked = 0
        for package in ("exec", "resilience"):
            for path in sorted((root / package).glob("*.py")):
                checked += 1
                errors = [
                    f for f in lint_file(path) if f.rule == "REPRO-L010"
                ]
                assert errors == [], f"{path}: {errors}"
        assert checked >= 10


class TestInlineSuppressions:
    def test_noqa_silences_named_rule_on_its_line(self):
        source = "def f(x=[]):  # repro: noqa[REPRO-L001]\n    return x\n"
        assert lint_source(source, COLD) == []

    def test_noqa_for_other_rule_does_not_silence(self):
        source = "def f(x=[]):  # repro: noqa[REPRO-L002]\n    return x\n"
        assert rules(lint_source(source, COLD)) == ["REPRO-L001"]

    def test_noqa_on_other_line_does_not_silence(self):
        source = (
            "# repro: noqa[REPRO-L001]\n"
            "def f(x=[]):\n"
            "    return x\n"
        )
        assert rules(lint_source(source, COLD)) == ["REPRO-L001"]

    def test_unknown_rule_id_is_n001_error(self):
        source = "x = 1  # repro: noqa[REPRO-NOPE]\n"
        findings = lint_source(source, COLD)
        assert rules(findings) == ["REPRO-N001"]
        assert findings[0].severity == Severity.ERROR

    def test_n001_cannot_suppress_itself(self):
        source = "x = 1  # repro: noqa[REPRO-NOPE, REPRO-N001]\n"
        assert "REPRO-N001" in rules(lint_source(source, COLD))

    def test_multiple_ids_both_honored(self):
        source = (
            "def f(x=[]):  # repro: noqa[REPRO-L001, REPRO-L006]\n"
            "    return x\n"
        )
        assert lint_source(source, COLD) == []

    def test_registry_has_all_lint_rules(self):
        from repro.analysis.findings import known_rule_ids

        known = known_rule_ids()
        for rule_id in [f"REPRO-L{n:03d}" for n in range(11)]:
            assert rule_id in known
