"""Incremental-cache tests: hits, invalidation, corruption eviction."""

from repro.analysis.flow.analyze import analyze_project
from repro.analysis.flow.cache import ModuleCache
from repro.analysis.flow.symbols import extract_module

SOURCE = "def f(x):\n    return x\n"


class TestModuleCache:
    def test_roundtrip_hit(self, tmp_path):
        cache = ModuleCache(tmp_path / "cache")
        analysis = extract_module(SOURCE, "src/m.py", module="m")
        cache.store(analysis, SOURCE)
        loaded = cache.load("m", "src/m.py", SOURCE)
        assert loaded is not None
        assert loaded.functions["f"].qualname == "m.f"
        assert cache.hits == 1

    def test_content_change_misses(self, tmp_path):
        cache = ModuleCache(tmp_path / "cache")
        analysis = extract_module(SOURCE, "src/m.py", module="m")
        cache.store(analysis, SOURCE)
        assert cache.load("m", "src/m.py", SOURCE + "\n# edited\n") is None
        assert cache.misses == 1

    def test_corrupt_payload_is_evicted(self, tmp_path):
        cache = ModuleCache(tmp_path / "cache")
        analysis = extract_module(SOURCE, "src/m.py", module="m")
        cache.store(analysis, SOURCE)
        key = cache.key_for("m", "src/m.py", SOURCE)
        entry = cache._entry_path(key)
        entry.write_bytes(b"garbage")
        assert cache.load("m", "src/m.py", SOURCE) is None
        assert cache.evictions == 1
        assert not entry.exists()

    def test_key_distinguishes_module_and_path(self, tmp_path):
        cache = ModuleCache(tmp_path / "cache")
        assert cache.key_for("a", "src/a.py", SOURCE) != cache.key_for(
            "b", "src/a.py", SOURCE
        )
        assert cache.key_for("a", "src/a.py", SOURCE) != cache.key_for(
            "a", "src/b.py", SOURCE
        )


class TestIncrementalAnalysis:
    def _project(self, root):
        pkg = root / "pkg"
        pkg.mkdir(exist_ok=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "a.py").write_text("def fa(x):\n    return x\n")
        (pkg / "b.py").write_text("def fb(x):\n    return x\n")
        return pkg

    def test_warm_scan_rescans_nothing(self, tmp_path):
        pkg = self._project(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = analyze_project([pkg], cache=ModuleCache(cache_dir))
        assert cold.stats.reanalyzed == cold.stats.modules_total
        warm = analyze_project([pkg], cache=ModuleCache(cache_dir))
        assert warm.stats.reanalyzed == 0
        assert warm.stats.cache_hits == warm.stats.modules_total
        assert list(warm.report) == list(cold.report)

    def test_editing_one_module_rescans_only_it(self, tmp_path):
        pkg = self._project(tmp_path)
        cache_dir = tmp_path / "cache"
        analyze_project([pkg], cache=ModuleCache(cache_dir))
        (pkg / "a.py").write_text("def fa(x):\n    return x + 1\n")
        warm = analyze_project([pkg], cache=ModuleCache(cache_dir))
        assert warm.stats.reanalyzed == 1
        assert warm.stats.cache_hits == warm.stats.modules_total - 1

    def test_cached_and_uncached_reports_agree(self, tmp_path):
        pkg = self._project(tmp_path)
        (pkg / "bad.py").write_text(
            "def f(epoch_ms, dwell_s):\n    return epoch_ms + dwell_s\n"
        )
        cache_dir = tmp_path / "cache"
        analyze_project([pkg], cache=ModuleCache(cache_dir))
        warm = analyze_project([pkg], cache=ModuleCache(cache_dir))
        uncached = analyze_project([pkg])
        assert list(warm.report) == list(uncached.report)
        assert any(f.rule == "REPRO-F004" for f in warm.report)
