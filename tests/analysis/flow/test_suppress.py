"""Suppression (`# repro: noqa[...]`) parsing and filtering tests."""

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppress import collect_suppressions, filter_findings


def finding(line, rule="REPRO-F004"):
    return Finding(
        path="m.py", line=line, rule=rule, severity=Severity.ERROR, message="x"
    )


class TestCollectSuppressions:
    def test_single_and_multiple_ids(self):
        source = (
            "x = 1  # repro: noqa[REPRO-L006]\n"
            "y = 2  # repro: noqa[REPRO-F003, REPRO-F004]\n"
        )
        suppressions, findings = collect_suppressions(source, "m.py")
        assert findings == []
        assert suppressions[1] == frozenset({"REPRO-L006"})
        assert suppressions[2] == frozenset({"REPRO-F003", "REPRO-F004"})

    def test_unknown_rule_id_is_n001(self):
        suppressions, findings = collect_suppressions(
            "x = 1  # repro: noqa[REPRO-BOGUS]\n", "m.py"
        )
        assert suppressions == {}
        assert [f.rule for f in findings] == ["REPRO-N001"]
        assert "REPRO-BOGUS" in findings[0].message

    def test_empty_bracket_is_n001(self):
        _suppressions, findings = collect_suppressions(
            "x = 1  # repro: noqa[]\n", "m.py"
        )
        assert [f.rule for f in findings] == ["REPRO-N001"]

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""Use `# repro: noqa[REPRO-L006]` to suppress."""\n'
        suppressions, findings = collect_suppressions(source, "m.py")
        assert suppressions == {}
        assert findings == []

    def test_mid_comment_mention_is_not_a_suppression(self):
        source = "# the marker (`# repro: noqa[RULE]`) is documented here\n"
        suppressions, findings = collect_suppressions(source, "m.py")
        assert suppressions == {}
        assert findings == []


class TestFilterFindings:
    def test_suppressed_line_and_rule_dropped(self):
        kept = filter_findings(
            [finding(3), finding(4)], {3: frozenset({"REPRO-F004"})}
        )
        assert [f.line for f in kept] == [4]

    def test_other_rule_on_same_line_kept(self):
        kept = filter_findings(
            [finding(3, rule="REPRO-F001")], {3: frozenset({"REPRO-F004"})}
        )
        assert len(kept) == 1

    def test_n001_is_never_suppressible(self):
        kept = filter_findings(
            [finding(3, rule="REPRO-N001")], {3: frozenset({"REPRO-N001"})}
        )
        assert [f.rule for f in kept] == ["REPRO-N001"]
