"""Unit tests for per-module fact extraction."""

import textwrap

from repro.analysis.flow.symbols import (
    MODULE_SCOPE,
    extract_module,
    module_name_for_path,
    source_digest,
)


def extract(source: str, path: str = "src/proj/mod.py", module: str = "proj.mod"):
    return extract_module(textwrap.dedent(source), path, module=module)


class TestImportResolution:
    def test_plain_and_aliased_imports(self):
        analysis = extract(
            """
            import numpy as np
            import json

            def f():
                np.random.default_rng(3)
                json.dumps({})
            """
        )
        names = {c.name for c in analysis.functions["f"].calls}
        assert "numpy.random.default_rng" in names
        assert "json.dumps" in names

    def test_from_import_as(self):
        analysis = extract(
            """
            from proj.helper import accumulate as acc

            def f(x):
                return acc(x)
            """
        )
        names = {c.name for c in analysis.functions["f"].calls}
        assert names == {"proj.helper.accumulate"}

    def test_relative_import_resolves_against_package(self):
        analysis = extract(
            """
            from .helper import accumulate

            def f(x):
                return accumulate(x)
            """
        )
        names = {c.name for c in analysis.functions["f"].calls}
        assert names == {"proj.helper.accumulate"}

    def test_module_scope_names_resolve_locally(self):
        analysis = extract(
            """
            def helper(x):
                return x

            def f(x):
                return helper(x)
            """
        )
        names = {c.name for c in analysis.functions["f"].calls}
        assert names == {"proj.mod.helper"}


class TestCallSiteKinds:
    def test_self_method_and_attr_method(self):
        analysis = extract(
            """
            class C:
                def run(self):
                    self.tick()
                    self.engine.step()

                def tick(self):
                    return 1
            """
        )
        sites = {(c.kind, c.name) for c in analysis.functions["C.run"].calls}
        assert ("self_method", "tick") in sites
        assert ("self_attr_method", "step") in sites

    def test_var_method_records_receiver(self):
        analysis = extract(
            """
            def f(engine):
                return engine.step()
            """
        )
        (site,) = analysis.functions["f"].calls
        assert site.kind == "var_method"
        assert site.extra == "engine"

    def test_module_scope_calls_are_collected(self):
        analysis = extract("CONFIG = dict(a=1)\n")
        assert MODULE_SCOPE in analysis.functions
        names = {c.name for c in analysis.functions[MODULE_SCOPE].calls}
        assert "dict" in names


class TestClassFacts:
    def test_frozen_dataclass_detection(self):
        analysis = extract(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class A:
                x: int

            @dataclass
            class B:
                x: int
            """
        )
        assert analysis.classes["A"].frozen_dataclass
        assert not analysis.classes["B"].frozen_dataclass

    def test_field_annotations_collect_refs(self):
        analysis = extract(
            """
            from proj.other import Payload

            class Job:
                payload: Payload
                items: list[Payload]
            """
        )
        fields = analysis.classes["Job"].fields
        assert fields["payload"] == ("proj.other.Payload",)
        assert fields["items"] == ("proj.other.Payload",)

    def test_unpicklable_members_detected(self):
        analysis = extract(
            """
            import threading

            class Holder:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.fn = lambda x: x
            """
        )
        kinds = {desc for _line, desc in analysis.classes["Holder"].unpicklable}
        assert any("lock" in k for k in kinds)
        assert any("lambda" in k for k in kinds)

    def test_attr_types_from_annotated_param_passthrough(self):
        analysis = extract(
            """
            from proj.engine import Engine

            class Wrapper:
                def __init__(self, engine: Engine):
                    self.engine = engine
            """
        )
        assert (
            analysis.classes["Wrapper"].attr_types["engine"]
            == "proj.engine.Engine"
        )


class TestLocalUnitFindings:
    def test_mismatched_assignment_flagged(self):
        analysis = extract(
            """
            def f(epoch_ms, k):
                budget_w = epoch_ms * k
                return budget_w
            """
        )
        assert [f.rule for f in analysis.local_findings] == ["REPRO-F004"]

    def test_literal_conversion_not_flagged(self):
        analysis = extract(
            """
            def f(epoch_ms):
                epoch_s = epoch_ms / 1000.0
                return epoch_s
            """
        )
        assert analysis.local_findings == ()

    def test_additive_mix_flagged_once(self):
        analysis = extract(
            """
            def f(epoch_ms, dwell_s):
                return epoch_ms + dwell_s
            """
        )
        assert [f.rule for f in analysis.local_findings] == ["REPRO-F004"]


class TestDigestsAndNames:
    def test_source_digest_changes_with_salt_and_content(self):
        assert source_digest("a") != source_digest("b")
        assert source_digest("a") != source_digest("a", salt="s")

    def test_module_name_walks_packages(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub").mkdir()
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        mod = tmp_path / "pkg" / "sub" / "mod.py"
        mod.write_text("")
        assert module_name_for_path(mod) == "pkg.sub.mod"
        assert module_name_for_path(tmp_path / "pkg" / "__init__.py") == "pkg"

    def test_syntax_error_becomes_parse_error_finding(self):
        analysis = extract("def broken(:\n")
        assert analysis.parse_error is not None
        assert analysis.parse_error.rule == "REPRO-L000"
