"""Call-graph resolution tests: imports, methods, fallback, closure."""

from pathlib import Path

from repro.analysis.flow.analyze import analyze_project
from repro.analysis.flow.callgraph import CallGraph, ProjectIndex
from repro.analysis.flow.symbols import extract_module


def build(sources: dict[str, str]) -> CallGraph:
    """sources: module name -> source; paths synthesized from names."""
    modules = {}
    for module, source in sources.items():
        path = "src/" + module.replace(".", "/") + ".py"
        modules[module] = extract_module(source, path, module=module)
    return CallGraph.build(ProjectIndex(modules))


class TestGlobalResolution:
    def test_aliased_module_import(self):
        graph = build(
            {
                "proj.helper": "def accumulate(x):\n    return x\n",
                "proj.main": (
                    "import proj.helper as h\n"
                    "def f(x):\n"
                    "    return h.accumulate(x)\n"
                ),
            }
        )
        assert graph.edges["proj.main.f"] == {"proj.helper.accumulate"}

    def test_from_import_as(self):
        graph = build(
            {
                "proj.helper": "def accumulate(x):\n    return x\n",
                "proj.main": (
                    "from proj.helper import accumulate as acc\n"
                    "def f(x):\n"
                    "    return acc(x)\n"
                ),
            }
        )
        assert graph.edges["proj.main.f"] == {"proj.helper.accumulate"}

    def test_constructor_edges_to_init(self):
        graph = build(
            {
                "proj.engine": (
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self.n = 0\n"
                ),
                "proj.main": (
                    "from proj.engine import Engine\n"
                    "def f():\n"
                    "    return Engine()\n"
                ),
            }
        )
        assert graph.edges["proj.main.f"] == {"proj.engine.Engine.__init__"}


class TestMethodResolution:
    def test_self_method_resolves_through_mro(self):
        graph = build(
            {
                "proj.base": (
                    "class Base:\n"
                    "    def helper(self):\n"
                    "        return 1\n"
                ),
                "proj.sub": (
                    "from proj.base import Base\n"
                    "class Sub(Base):\n"
                    "    def run(self):\n"
                    "        return self.helper()\n"
                ),
            }
        )
        assert graph.edges["proj.sub.Sub.run"] == {"proj.base.Base.helper"}

    def test_virtual_dispatch_includes_subclass_overrides(self):
        graph = build(
            {
                "proj.base": (
                    "class Base:\n"
                    "    def run(self):\n"
                    "        return self.helper()\n"
                    "    def helper(self):\n"
                    "        return 1\n"
                ),
                "proj.sub": (
                    "from proj.base import Base\n"
                    "class Sub(Base):\n"
                    "    def helper(self):\n"
                    "        return 2\n"
                ),
            }
        )
        assert graph.edges["proj.base.Base.run"] == {
            "proj.base.Base.helper",
            "proj.sub.Sub.helper",
        }

    def test_typed_attribute_receiver(self):
        graph = build(
            {
                "proj.engine": (
                    "class Engine:\n"
                    "    def step(self):\n"
                    "        return 1\n"
                ),
                "proj.main": (
                    "from proj.engine import Engine\n"
                    "class Wrapper:\n"
                    "    def __init__(self, engine: Engine):\n"
                    "        self.engine = engine\n"
                    "    def run(self):\n"
                    "        return self.engine.step()\n"
                ),
            }
        )
        assert graph.edges["proj.main.Wrapper.run"] == {
            "proj.engine.Engine.step"
        }

    def test_constructor_dataflow_types_local_receiver(self):
        graph = build(
            {
                "proj.engine": (
                    "class Engine:\n"
                    "    def step(self):\n"
                    "        return 1\n"
                ),
                "proj.main": (
                    "from proj.engine import Engine\n"
                    "def f():\n"
                    "    engine = Engine()\n"
                    "    return engine.step()\n"
                ),
            }
        )
        assert "proj.engine.Engine.step" in graph.edges["proj.main.f"]

    def test_fallback_is_bounded(self):
        many = {
            f"proj.c{i}": (
                f"class C{i}:\n"
                "    def step(self):\n"
                "        return 1\n"
            )
            for i in range(8)
        }
        many["proj.main"] = "def f(x):\n    return x.step()\n"
        graph = build(many)
        # 8 candidates > MAX_FALLBACK_CANDIDATES: recorded unresolved.
        assert "proj.main.f" not in graph.edges
        assert any(
            caller == "proj.main.f" for caller, _site in graph.unresolved
        )

    def test_fallback_within_bound_marks_via_fallback(self):
        graph = build(
            {
                "proj.engine": (
                    "class Engine:\n"
                    "    def step(self):\n"
                    "        return 1\n"
                ),
                "proj.main": "def f(x):\n    return x.step()\n",
            }
        )
        assert graph.edges["proj.main.f"] == {"proj.engine.Engine.step"}
        (resolved,) = [
            r for r in graph.resolved_calls if r.caller == "proj.main.f"
        ]
        assert resolved.via_fallback


class TestClosure:
    def test_closure_and_call_chain(self):
        graph = build(
            {
                "proj.a": (
                    "from proj.b import middle\n"
                    "def entry():\n"
                    "    return middle()\n"
                ),
                "proj.b": (
                    "from proj.c import leaf\n"
                    "def middle():\n"
                    "    return leaf()\n"
                ),
                "proj.c": "def leaf():\n    return 1\n",
                "proj.d": "def unrelated():\n    return 2\n",
            }
        )
        reachable, provenance = graph.closure(["proj.a.entry"])
        assert reachable == {"proj.a.entry", "proj.b.middle", "proj.c.leaf"}
        assert graph.call_chain(provenance, "proj.c.leaf") == [
            "proj.a.entry",
            "proj.b.middle",
            "proj.c.leaf",
        ]

    def test_entry_patterns_glob(self):
        graph = build(
            {
                "proj.m1": (
                    "class A:\n"
                    "    def _control(self):\n"
                    "        return 1\n"
                ),
                "proj.m2": (
                    "class B:\n"
                    "    def _control(self):\n"
                    "        return 2\n"
                ),
            }
        )
        reachable, _ = graph.closure(["proj.*._control"])
        assert reachable == {"proj.m1.A._control", "proj.m2.B._control"}


class TestRepoSelfGraph:
    def test_repo_entry_points_exist_and_reach_step_kernels(self):
        repo = Path(__file__).resolve().parents[3]
        result = analyze_project([repo / "src" / "repro"])
        reachable, _ = result.graph.closure(
            [
                "repro.platform.soc.ExynosSoC.step",
                "repro.platform.manycore.ManyCoreSoC.step",
            ]
        )
        # The interprocedural point: allocation helpers in soc.py are in
        # the closure even when called through manycore's cluster loop.
        assert "repro.platform.soc._idle_adjusted_capacity" in reachable
