"""Golden-fixture tests: each REPRO-F rule catches its bad-code fixture."""

import pytest

from repro.analysis.flow.analyze import analyze_project
from repro.analysis.flow.callgraph import CallGraph, ProjectIndex
from repro.analysis.flow.rules import (
    check_frozen_mutation,
    check_hot_path_purity,
    check_picklability,
    check_rng_provenance,
    check_unit_flow,
)

from tests.analysis.flow.conftest import FIXTURES


@pytest.fixture(scope="module")
def badproj():
    result = analyze_project(
        [FIXTURES / "badproj"],
        entry_points=("badproj.hot.Engine.step",),
        pickle_roots=("badproj.jobs.ScenarioJob",),
        worker_patterns=("badproj.jobs",),
        rng_exempt_fragments=(),
    )
    return result.index, result.graph, result


def rules_at(findings, path_fragment):
    return [
        (f.rule, f.line) for f in sorted(findings) if path_fragment in f.path
    ]


class TestF001RngProvenance:
    def test_unseeded_global_and_legacy_draws_flagged(self, badproj):
        index, _graph, _result = badproj
        findings = check_rng_provenance(index, exempt_fragments=())
        flagged = rules_at(findings, "rng.py")
        assert ("REPRO-F001", 7) in flagged  # default_rng() unseeded
        assert ("REPRO-F001", 12) in flagged  # np.random.normal global
        assert ("REPRO-F001", 16) in flagged  # RandomState
        # seeded_ok draws through a seeded generator: not flagged.
        assert all(line < 19 for _rule, line in flagged)

    def test_exempt_fragments_silence_test_code(self, badproj):
        index, _graph, _result = badproj
        findings = check_rng_provenance(
            index, exempt_fragments=("fixtures/",)
        )
        assert findings == []


class TestF002Picklability:
    def test_field_reachable_class_with_lock_flagged(self, badproj):
        index, _graph, _result = badproj
        findings = check_picklability(
            index,
            roots=("badproj.jobs.ScenarioJob",),
            worker_patterns=(),
        )
        assert any(
            f.rule == "REPRO-F002" and "JobPayload" in f.message
            for f in findings
        )

    def test_worker_raised_exception_with_handle_flagged(self, badproj):
        index, _graph, _result = badproj
        findings = check_picklability(
            index, roots=(), worker_patterns=("badproj.jobs",)
        )
        assert any(
            f.rule == "REPRO-F002" and "WorkerError" in f.message
            for f in findings
        )

    def test_nothing_reachable_means_no_findings(self, badproj):
        index, _graph, _result = badproj
        assert check_picklability(index, roots=(), worker_patterns=()) == []


class TestF003HotPathPurity:
    def test_allocation_in_helper_module_is_caught(self, badproj):
        _index, graph, _result = badproj
        findings = check_hot_path_purity(
            graph, entry_points=("badproj.hot.Engine.step",)
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "REPRO-F003"
        assert finding.path.endswith("helper.py")
        assert "badproj.hot.Engine.step" in finding.message  # call chain
        assert "badproj.helper.accumulate" in finding.message

    def test_allowlisted_function_is_exempt(self, badproj):
        _index, graph, _result = badproj
        findings = check_hot_path_purity(
            graph,
            entry_points=("badproj.hot.Engine.step",),
            allowed_functions=frozenset({"accumulate"}),
        )
        assert findings == []

    def test_unreachable_allocation_not_flagged(self, badproj):
        _index, graph, _result = badproj
        findings = check_hot_path_purity(
            graph, entry_points=("badproj.frozen.bump",)
        )
        assert findings == []


class TestF004UnitFlow:
    def test_cross_call_argument_unit_mismatch(self, badproj):
        _index, graph, _result = badproj
        findings = check_unit_flow(graph)
        assert any(
            f.rule == "REPRO-F004"
            and "apply_power" in f.message
            and "'_ms'" in f.message
            for f in findings
        )

    def test_local_assignment_and_additive_mix_flagged(self, badproj):
        _index, _graph, result = badproj
        local = [
            f
            for f in result.report.findings
            if f.rule == "REPRO-F004" and f.path.endswith("units.py")
        ]
        lines = {f.line for f in local}
        assert 5 in lines  # budget_w = epoch_ms * gain
        assert 10 in lines  # epoch_ms + dwell_s
        # the explicit literal conversion is NOT flagged
        assert 22 not in lines


class TestF005FrozenMutation:
    def test_writes_outside_post_init_flagged(self, badproj):
        index, _graph, _result = badproj
        findings = check_frozen_mutation(index)
        flagged = rules_at(findings, "frozen.py")
        assert ("REPRO-F005", 15) in flagged  # via annotated parameter
        assert ("REPRO-F005", 21) in flagged  # via constructor dataflow
        assert len(flagged) == 2  # __post_init__ write is exempt


class TestFullFixtureScan:
    def test_every_rule_fires_on_the_fixture_project(self, badproj):
        _index, _graph, result = badproj
        fired = {f.rule for f in result.report.findings}
        assert {
            "REPRO-F001",
            "REPRO-F002",
            "REPRO-F003",
            "REPRO-F004",
            "REPRO-F005",
        } <= fired
