"""REPRO-F003 fixture: the hot-path entry point itself stays clean —
the allocation hides in a helper module (badproj.helper), which is how
regressions slip past a per-module rule like REPRO-L009."""

from badproj.helper import accumulate


class Engine:
    def __init__(self, scale):
        self.scale = scale

    def step(self, values):
        return self.scale * accumulate(values)
