"""Golden bad-code fixtures for the flow analyzer tests.

Each module demonstrates exactly the contract violations one REPRO-F
rule exists to catch; the tests assert the analyzer reports them (and
nothing else).  This package is *data*, not code under test — it is
never imported by the test suite, only parsed.
"""
