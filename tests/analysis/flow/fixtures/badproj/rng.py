"""REPRO-F001 fixture: unseeded and global RNG draws."""

import numpy as np


def make_noise():
    rng = np.random.default_rng()
    return rng.normal()


def draw_global():
    return np.random.normal(0.0, 1.0)


def legacy_state():
    return np.random.RandomState(7)


def seeded_ok(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()
