"""Helper outside any step-kernel module list; allocates numpy temporaries."""

import numpy as np


def accumulate(values):
    return float(np.sum(np.asarray(values, dtype=np.float64)))
