"""REPRO-F002 fixture: unpicklable members on spawn-crossing types."""

import threading


class JobPayload:
    """Reached through ScenarioJob's field annotation."""

    def __init__(self, data):
        self.lock = threading.Lock()
        self.data = list(data)


class ScenarioJob:
    """The pickle root the test points the rule at."""

    payload: JobPayload
    label: str


class WorkerError(RuntimeError):
    """Raised under the worker module pattern; travels via result pickle."""

    def __init__(self, message):
        super().__init__(message)
        self.stream = open("/dev/null")


def run_job(job):
    if job is None:
        raise WorkerError("no job")
    return job.payload.data
