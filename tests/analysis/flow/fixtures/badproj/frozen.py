"""REPRO-F005 fixture: mutating a frozen dataclass outside __post_init__."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Config:
    ticks: int

    def __post_init__(self):
        object.__setattr__(self, "ticks", max(self.ticks, 1))


def bump(config: Config):
    config.ticks = config.ticks + 1
    return config


def fresh():
    config = Config(ticks=4)
    config.ticks = 9
    return config
