"""REPRO-F004 fixture: unit-suffix mismatches through dataflow edges."""


def control_budget(epoch_ms, gain):
    budget_w = epoch_ms * gain
    return budget_w


def deadline_check(epoch_ms, dwell_s):
    return epoch_ms + dwell_s


def apply_power(power_w):
    return power_w * 0.5


def misuse(epoch_ms):
    return apply_power(epoch_ms)


def convert_ok(epoch_ms):
    epoch_s = epoch_ms / 1000.0
    return epoch_s
