"""Baseline load/apply/write and stale-entry (REPRO-N002) tests."""

import json

import pytest

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineEntry,
    apply_baseline,
    write_baseline,
)


def finding(path="src/m.py", rule="REPRO-F001", message="bad", line=3):
    return Finding(
        path=path, line=line, rule=rule, severity=Severity.ERROR, message=message
    )


class TestApplyBaseline:
    def test_matching_entry_drops_finding(self):
        baseline = Baseline(
            entries=(
                BaselineEntry(path="src/m.py", rule="REPRO-F001", message="bad"),
            )
        )
        assert apply_baseline([finding()], baseline) == []

    def test_line_number_is_ignored_for_matching(self):
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    path="src/m.py", rule="REPRO-F001", message="bad", line=999
                ),
            )
        )
        assert apply_baseline([finding(line=3)], baseline) == []

    def test_stale_entry_becomes_n002(self):
        baseline = Baseline(
            entries=(
                BaselineEntry(path="src/m.py", rule="REPRO-F001", message="gone"),
            ),
            source="analysis-baseline.json",
        )
        result = apply_baseline([finding(message="still here")], baseline)
        rules = sorted(f.rule for f in result)
        assert rules == ["REPRO-F001", "REPRO-N002"]
        (stale,) = [f for f in result if f.rule == "REPRO-N002"]
        assert stale.severity == Severity.WARNING
        assert "analysis-baseline.json" in stale.message

    def test_different_message_does_not_match(self):
        baseline = Baseline(
            entries=(
                BaselineEntry(path="src/m.py", rule="REPRO-F001", message="other"),
            )
        )
        result = apply_baseline([finding()], baseline)
        assert any(f.rule == "REPRO-F001" for f in result)


class TestLoadAndWrite:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline([finding(), finding(rule="REPRO-F003")], target)
        assert count == 2
        baseline = Baseline.load(target)
        assert len(baseline.entries) == 2
        assert apply_baseline(
            [finding(), finding(rule="REPRO-F003")], baseline
        ) == []

    def test_hygiene_rules_are_never_baselined(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline(
            [finding(rule="REPRO-N001"), finding(rule="REPRO-N002")], target
        )
        assert count == 0

    def test_wrong_schema_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(target)

    def test_written_schema_is_current(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline([finding()], target)
        payload = json.loads(target.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["entries"][0]["justification"]
