"""CLI tests for `python -m repro.analysis flow`."""

import json

from repro.analysis.cli import flow_main, main
from tests.analysis.flow.conftest import write_project

CLEAN = {"pkg/__init__.py": "", "pkg/mod.py": "def f(x):\n    return x\n"}
BAD = {
    "pkg/__init__.py": "",
    "pkg/mod.py": (
        "import numpy as np\n"
        "def f():\n"
        "    return np.random.default_rng()\n"
    ),
}


class TestFlowCli:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        write_project(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert flow_main(["--no-cache", "pkg"]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_error_finding_exits_one(self, tmp_path, monkeypatch, capsys):
        write_project(tmp_path, BAD)
        monkeypatch.chdir(tmp_path)
        assert flow_main(["--no-cache", "pkg"]) == 1
        assert "REPRO-F001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, monkeypatch, capsys):
        write_project(tmp_path, BAD)
        monkeypatch.chdir(tmp_path)
        flow_main(["--no-cache", "--format", "json", "pkg"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-flow-report/1"
        assert payload["summary"]["errors"] == 1
        assert payload["stats"]["modules_total"] == 2

    def test_sarif_format(self, tmp_path, monkeypatch, capsys):
        write_project(tmp_path, BAD)
        monkeypatch.chdir(tmp_path)
        flow_main(["--no-cache", "--format", "sarif", "pkg"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["results"][0]["ruleId"] == "REPRO-F001"
        assert run["tool"]["driver"]["rules"][0]["id"] == "REPRO-F001"

    def test_write_and_use_baseline(self, tmp_path, monkeypatch, capsys):
        write_project(tmp_path, BAD)
        monkeypatch.chdir(tmp_path)
        assert flow_main(["--no-cache", "--write-baseline", "pkg"]) == 0
        capsys.readouterr()
        # With the baseline in place the same scan passes.
        assert flow_main(["--no-cache", "pkg"]) == 0

    def test_cache_dir_is_populated_and_reused(self, tmp_path, monkeypatch):
        write_project(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        flow_main(["--cache-dir", "cachedir", "pkg"])
        assert any((tmp_path / "cachedir").rglob("*.pkl"))
        assert flow_main(["--cache-dir", "cachedir", "pkg"]) == 0

    def test_output_file(self, tmp_path, monkeypatch, capsys):
        write_project(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        flow_main(["--no-cache", "--format", "json", "--output", "r.json", "pkg"])
        assert json.loads((tmp_path / "r.json").read_text())["summary"]["ok"]

    def test_strict_fails_on_warnings(self, tmp_path, monkeypatch):
        write_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": (
                    "def f(epoch_ms, dwell_s):\n"
                    "    return epoch_ms + dwell_s\n"
                ),
            },
        )
        monkeypatch.chdir(tmp_path)
        assert flow_main(["--no-cache", "pkg"]) == 0
        assert flow_main(["--no-cache", "--strict", "pkg"]) == 1

    def test_main_dispatches_flow_subcommand(self, tmp_path, monkeypatch, capsys):
        write_project(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["flow", "--no-cache", "pkg"]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_custom_entry_pattern(self, tmp_path, monkeypatch, capsys):
        write_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": (
                    "import numpy as np\n"
                    "def tick(values):\n"
                    "    return np.sum(values)\n"
                ),
            },
        )
        monkeypatch.chdir(tmp_path)
        assert flow_main(["--no-cache", "pkg"]) == 0  # no entry matches
        assert (
            flow_main(["--no-cache", "--entry", "pkg.mod.tick", "pkg"]) == 1
        )
        assert "REPRO-F003" in capsys.readouterr().out
