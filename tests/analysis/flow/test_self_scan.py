"""Repo self-scan: the flow analyzer gates src/repro with zero
non-baselined findings — the acceptance criterion of the flow gate."""

from pathlib import Path

import pytest

from repro.analysis.flow import Baseline, analyze_project

REPO = Path(__file__).resolve().parents[3]
SRC_REPRO = REPO / "src" / "repro"
BASELINE = REPO / "analysis-baseline.json"


@pytest.fixture(scope="module")
def scan():
    return analyze_project([SRC_REPRO], baseline=Baseline.load(BASELINE))


class TestSelfScan:
    def test_baseline_file_is_checked_in(self):
        assert BASELINE.is_file()

    def test_zero_non_baselined_findings(self, scan):
        assert list(scan.report) == [], scan.report.format_text()

    def test_no_stale_baseline_entries(self, scan):
        stale = [f for f in scan.report.findings if f.rule == "REPRO-N002"]
        assert stale == []

    def test_scan_covers_the_whole_package(self, scan):
        assert scan.stats.modules_total > 90
        assert scan.stats.functions > 700
        assert scan.stats.call_edges > 1000

    def test_without_baseline_only_known_hot_path_exemptions(self):
        result = analyze_project([SRC_REPRO])
        errors = result.report.errors
        # The only accepted findings are the allowlisted step-kernel
        # reductions in soc.py whose numpy call order is the golden-trace
        # bit-identity contract.
        assert errors, "expected the deliberate F003 exemptions to surface"
        for finding in errors:
            assert finding.rule == "REPRO-F003"
            assert finding.path.endswith("platform/soc.py")
            assert (
                "_telemetry_with_idle_insertion" in finding.message
                or "_idle_adjusted_capacity" in finding.message
            )
