"""Tests for discrete-time state-space models."""

import numpy as np
import pytest

from repro.control.statespace import ModelError, OperatingPoint, StateSpaceModel


def first_order(a=0.5, b=1.0, c=1.0, d=0.0):
    return StateSpaceModel(A=[[a]], B=[[b]], C=[[c]], D=[[d]])


def two_by_two():
    return StateSpaceModel(
        A=[[0.5, 0.1], [0.0, 0.3]],
        B=[[1.0, 0.0], [0.0, 1.0]],
        C=[[1.0, 0.0], [0.0, 1.0]],
        D=np.zeros((2, 2)),
    )


class TestConstruction:
    def test_dimensions(self):
        model = two_by_two()
        assert model.n_states == 2
        assert model.n_inputs == 2
        assert model.n_outputs == 2
        assert model.order == 2

    def test_non_square_a_rejected(self):
        with pytest.raises(ModelError):
            StateSpaceModel(
                A=[[1.0, 0.0]], B=[[1.0]], C=[[1.0]], D=[[0.0]]
            )

    def test_b_row_mismatch_rejected(self):
        with pytest.raises(ModelError):
            StateSpaceModel(
                A=[[0.5]], B=[[1.0], [2.0]], C=[[1.0]], D=[[0.0]]
            )

    def test_d_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            StateSpaceModel(
                A=[[0.5]], B=[[1.0]], C=[[1.0]], D=[[0.0, 1.0]]
            )

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ModelError):
            StateSpaceModel(
                A=[[0.5]], B=[[1.0]], C=[[1.0]], D=[[0.0]], dt=0.0
            )


class TestDynamics:
    def test_poles(self):
        model = two_by_two()
        assert sorted(np.round(model.poles().real, 6)) == [0.3, 0.5]

    def test_stability(self):
        assert first_order(a=0.9).is_stable()
        assert not first_order(a=1.1).is_stable()
        assert not first_order(a=0.99).is_stable(margin=0.05)

    def test_spectral_radius(self):
        assert first_order(a=-0.7).spectral_radius() == pytest.approx(0.7)

    def test_dc_gain_first_order(self):
        # y_ss for unit step: c*b/(1-a) + d
        model = first_order(a=0.5, b=1.0, c=2.0, d=0.5)
        assert model.dc_gain()[0, 0] == pytest.approx(2.0 / 0.5 + 0.5)

    def test_step_response_converges_to_dc_gain(self):
        model = first_order(a=0.5)
        response = model.step_response(horizon=60)
        assert response[-1, 0] == pytest.approx(
            model.dc_gain()[0, 0], rel=1e-6
        )

    def test_simulate_matches_manual_recursion(self):
        model = two_by_two()
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(20, 2))
        states, outputs = model.simulate(inputs)
        x = np.zeros(2)
        for t in range(20):
            assert np.allclose(outputs[t], model.C @ x)
            x = model.A @ x + model.B @ inputs[t]
            assert np.allclose(states[t + 1], x)

    def test_simulate_input_width_checked(self):
        with pytest.raises(ModelError):
            two_by_two().simulate(np.ones((5, 3)))

    def test_simulate_with_initial_state(self):
        model = first_order(a=0.5)
        _, outputs = model.simulate(np.zeros((3, 1)), x0=[2.0])
        assert outputs[0, 0] == pytest.approx(2.0)
        assert outputs[1, 0] == pytest.approx(1.0)


class TestStructural:
    def test_controllability_of_reachable_system(self):
        assert two_by_two().is_controllable()

    def test_uncontrollable_mode_detected(self):
        model = StateSpaceModel(
            A=[[0.5, 0.0], [0.0, 0.3]],
            B=[[1.0], [0.0]],  # second mode unreachable
            C=[[1.0, 1.0]],
            D=[[0.0]],
        )
        assert not model.is_controllable()

    def test_observability(self):
        assert two_by_two().is_observable()
        model = StateSpaceModel(
            A=[[0.5, 0.0], [0.0, 0.3]],
            B=[[1.0], [1.0]],
            C=[[1.0, 0.0]],  # second mode unobservable
            D=[[0.0]],
        )
        assert not model.is_observable()

    def test_matrix_shapes(self):
        model = two_by_two()
        assert model.controllability_matrix().shape == (2, 4)
        assert model.observability_matrix().shape == (4, 2)

    def test_scaled_multiplies_gain(self):
        model = first_order()
        scaled = model.scaled(1.3)
        assert scaled.dc_gain()[0, 0] == pytest.approx(
            1.3 * model.dc_gain()[0, 0]
        )
        assert np.allclose(scaled.A, model.A)  # dynamics untouched


class TestOperatingPoint:
    def test_normalize_denormalize_roundtrip(self):
        op = OperatingPoint(
            u=[1.4, 3.0], y=[50.0, 3.0], u_scale=[0.5, 1.0], y_scale=[10.0, 1.0]
        )
        u = np.array([1.9, 2.0])
        assert np.allclose(op.denormalize_u(op.normalize_u(u)), u)
        y = np.array([60.0, 4.5])
        assert np.allclose(op.denormalize_y(op.normalize_y(y)), y)

    def test_default_scales_are_ones(self):
        op = OperatingPoint(u=[1.0], y=[2.0])
        assert np.allclose(op.u_scale, [1.0])
        assert op.normalize_y([3.0])[0] == pytest.approx(1.0)

    def test_normalization_centers(self):
        op = OperatingPoint(u=[2.0], y=[10.0], u_scale=[2.0], y_scale=[5.0])
        assert op.normalize_u([4.0])[0] == pytest.approx(1.0)
        assert op.normalize_y([10.0])[0] == pytest.approx(0.0)
