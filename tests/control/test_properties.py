"""Property-based tests for the control substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.control.lqg import ActuatorLimits, design_lqg_servo
from repro.control.metrics import (
    overshoot_percent,
    steady_state_error,
    steady_state_error_percent,
)
from repro.control.residuals import autocorrelation, confidence_bound
from repro.control.riccati import is_stabilizing, lqr_gain, solve_dare
from repro.control.statespace import OperatingPoint, StateSpaceModel
from repro.control.sysid import staircase_signal

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def stable_systems(draw, n_max=3, m_max=2):
    n = draw(st.integers(1, n_max))
    m = draw(st.integers(1, m_max))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    radius = np.abs(np.linalg.eigvals(A)).max()
    A *= draw(st.floats(0.1, 0.95)) / max(radius, 1e-9)
    B = rng.normal(size=(n, m))
    return A, B


class TestRiccatiProperties:
    @given(stable_systems())
    @settings(max_examples=40, deadline=None)
    def test_dare_solution_is_psd_and_fixed_point(self, system):
        A, B = system
        n, m = A.shape[0], B.shape[1]
        Q, R = np.eye(n), np.eye(m)
        P = solve_dare(A, B, Q, R)
        assert np.allclose(P, P.T, atol=1e-8)
        assert np.all(np.linalg.eigvalsh(P) >= -1e-8)
        gain_term = np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
        residual = A.T @ P @ A - (A.T @ P @ B) @ gain_term + Q - P
        assert np.max(np.abs(residual)) < 1e-6

    @given(stable_systems())
    @settings(max_examples=40, deadline=None)
    def test_lqr_always_stabilizes(self, system):
        A, B = system
        K = lqr_gain(A, B, np.eye(A.shape[0]), np.eye(B.shape[1]))
        assert is_stabilizing(A, B, K)


class TestOperatingPointProperties:
    @given(
        st.lists(finite_floats, min_size=1, max_size=4),
        st.lists(st.floats(0.01, 100.0), min_size=1, max_size=4),
        st.lists(finite_floats, min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_normalize_roundtrip(self, centers, scales, values):
        size = min(len(centers), len(scales), len(values))
        op = OperatingPoint(
            u=centers[:size],
            y=centers[:size],
            u_scale=scales[:size],
            y_scale=scales[:size],
        )
        u = np.asarray(values[:size])
        assert np.allclose(op.denormalize_u(op.normalize_u(u)), u, atol=1e-6)
        assert np.allclose(op.denormalize_y(op.normalize_y(u)), u, atol=1e-6)


class TestMetricsProperties:
    @given(
        st.lists(finite_floats, min_size=5, max_size=60),
        st.floats(0.1, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_sign_convention(self, values, reference):
        trace = np.asarray(values)
        error = steady_state_error(trace, reference)
        tail = trace[int(np.floor(trace.size * 0.6)):]
        assert error == pytest.approx(reference - tail.mean(), abs=1e-8)
        percent = steady_state_error_percent(trace, reference)
        assert np.sign(percent) == np.sign(error) or error == 0

    @given(st.lists(finite_floats, min_size=2, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_overshoot_non_negative(self, values):
        trace = np.asarray(values)
        assert overshoot_percent(trace, 1.0) >= 0.0


class TestResidualProperties:
    @given(st.integers(30, 2000))
    @settings(max_examples=40, deadline=None)
    def test_confidence_bound_decreases_with_samples(self, n):
        assert confidence_bound(n + 10) < confidence_bound(n)

    @given(st.integers(0, 5000), st.integers(2, 15))
    @settings(max_examples=40, deadline=None)
    def test_autocorrelation_bounded_and_symmetric(self, seed, max_lag):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=max_lag * 10)
        corr = autocorrelation(x, max_lag)
        assert np.all(np.abs(corr) <= 1.0 + 1e-9)
        assert np.allclose(corr, corr[::-1], atol=1e-9)
        assert corr[max_lag] == pytest.approx(1.0)


class TestStaircaseProperties:
    @given(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=1, max_size=6
        ),
        st.integers(1, 5),
        st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_staircase_only_emits_given_levels(self, levels, hold, repeats):
        signal = staircase_signal(levels, hold, repeats=repeats)
        assert set(np.round(signal, 9)) <= set(
            np.round(np.asarray(levels, dtype=float), 9)
        )

    @given(
        st.lists(
            st.floats(-10, 10, allow_nan=False), min_size=1, max_size=6
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_each_level_held_exactly(self, levels, hold):
        signal = staircase_signal(levels, hold, mirror=False)
        assert signal.size == len(levels) * hold
        for index, level in enumerate(levels):
            chunk = signal[index * hold : (index + 1) * hold]
            assert np.all(chunk == float(level))


class TestServoSaturationProperty:
    @given(st.integers(0, 1000), st.floats(0.05, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_commands_always_within_limits(self, seed, bound):
        rng = np.random.default_rng(seed)
        model = StateSpaceModel(
            A=[[0.6, 0.1], [0.0, 0.5]],
            B=[[1.0, 0.2], [0.1, 0.9]],
            C=np.eye(2),
            D=np.zeros((2, 2)),
        )
        gains = design_lqg_servo(
            model, output_weights=[1, 1], effort_weights=[1, 1]
        )
        limits = ActuatorLimits(
            lower=[-bound, -bound], upper=[bound, bound], max_step=[0.1, 0.1]
        )
        from repro.control.lqg import LQGServoController

        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), limits
        )
        controller.set_reference(rng.normal(size=2) * 10)
        previous = np.zeros(2)
        for _ in range(40):
            u = controller.step(rng.normal(size=2))
            assert np.all(u <= bound + 1e-9)
            assert np.all(u >= -bound - 1e-9)
            assert np.all(np.abs(u - previous) <= 0.1 + 1e-9)
            previous = u
