"""Tests for the discrete PID SISO controller."""

import pytest

from repro.control.pid import PIDController, PIDGains


def run_first_order(controller, *, gain=1.0, pole=0.8, steps=200, y0=0.0):
    """Close the loop around y' = pole*y + gain*u."""
    y = y0
    history = []
    for _ in range(steps):
        u = controller.step(y)
        y = pole * y + gain * u
        history.append(y)
    return history


class TestGainsValidation:
    def test_negative_gains_rejected(self):
        with pytest.raises(ValueError):
            PIDGains(kp=-1.0, ki=0.0, kd=0.0)

    def test_zero_gains_allowed(self):
        gains = PIDGains(kp=0.0, ki=0.0, kd=0.0)
        assert gains.kp == 0.0

    def test_controller_validation(self):
        gains = PIDGains(kp=1.0, ki=0.0, kd=0.0)
        with pytest.raises(ValueError):
            PIDController(gains, dt=0.0)
        with pytest.raises(ValueError):
            PIDController(gains, output_limits=(1.0, -1.0))


class TestTracking:
    def test_pi_reaches_reference(self):
        controller = PIDController(
            PIDGains(kp=0.4, ki=1.2, kd=0.0), dt=0.05
        )
        controller.set_reference(2.0)
        history = run_first_order(controller)
        assert history[-1] == pytest.approx(2.0, abs=1e-2)

    def test_p_only_has_steady_state_error(self):
        controller = PIDController(PIDGains(kp=0.5, ki=0.0, kd=0.0), dt=0.05)
        controller.set_reference(2.0)
        history = run_first_order(controller)
        assert 0.1 < abs(history[-1] - 2.0)

    def test_tracks_negative_reference(self):
        controller = PIDController(
            PIDGains(kp=0.4, ki=1.2, kd=0.0), dt=0.05
        )
        controller.set_reference(-1.0)
        history = run_first_order(controller)
        assert history[-1] == pytest.approx(-1.0, abs=1e-2)

    def test_gain_scheduling_swap(self):
        controller = PIDController(PIDGains(kp=0.1, ki=0.1, kd=0.0), dt=0.05)
        controller.set_reference(1.0)
        run_first_order(controller, steps=20)
        controller.set_gains(PIDGains(kp=0.4, ki=1.5, kd=0.0, name="hot"))
        history = run_first_order(controller, steps=200)
        assert controller.gains.name == "hot"
        assert history[-1] == pytest.approx(1.0, abs=1e-2)


class TestSaturationAndWindup:
    def test_output_clamped(self):
        controller = PIDController(
            PIDGains(kp=10.0, ki=0.0, kd=0.0),
            output_limits=(-0.5, 0.5),
        )
        controller.set_reference(100.0)
        assert controller.step(0.0) == 0.5
        controller.set_reference(-100.0)
        assert controller.step(0.0) == -0.5

    def test_antiwindup_limits_overshoot(self):
        def overshoot(with_limits):
            limits = (-0.4, 0.4) if with_limits else (-1e9, 1e9)
            controller = PIDController(
                PIDGains(kp=0.2, ki=2.0, kd=0.0),
                dt=0.05,
                output_limits=limits,
            )
            controller.set_reference(3.0)  # needs u=0.6 > limit
            history = run_first_order(controller, steps=100)
            # Switch to a reachable reference; measure overshoot.
            controller.set_reference(0.5)
            history = run_first_order(controller, steps=150, y0=history[-1])
            return max(history) if with_limits else None, history[-1]

        peak, final = overshoot(True)
        assert final == pytest.approx(0.5, abs=0.15)

    def test_invocation_counter(self):
        controller = PIDController(PIDGains(kp=1.0, ki=0.0, kd=0.0))
        for _ in range(7):
            controller.step(0.0)
        assert controller.invocations == 7
        controller.reset()
        assert controller.invocations == 0


class TestDerivative:
    def test_derivative_opposes_fast_changes(self):
        controller = PIDController(
            PIDGains(kp=0.0, ki=0.0, kd=0.1), dt=0.1
        )
        controller.set_reference(0.0)
        controller.step(0.0)  # establish previous error
        # measurement jumps up -> error drops -> derivative negative
        assert controller.step(1.0) < 0.0

    def test_first_step_has_no_derivative_kick(self):
        controller = PIDController(
            PIDGains(kp=0.0, ki=0.0, kd=100.0), dt=0.01
        )
        controller.set_reference(5.0)
        assert controller.step(0.0) == 0.0
