"""Tests for residual autocorrelation analysis."""

import numpy as np
import pytest

from repro.control.residuals import (
    analyze_residuals,
    autocorrelation,
    confidence_bound,
    whiteness_score,
)


class TestConfidenceBound:
    def test_99_percent_three_sigma(self):
        # paper: "A confidence level of 99% results in a confidence
        # interval that spans three standard deviations."
        bound = confidence_bound(100, level=0.99)
        assert bound == pytest.approx(2.5758 / 10.0, rel=1e-4)

    def test_shrinks_with_samples(self):
        assert confidence_bound(400) < confidence_bound(100)

    def test_levels(self):
        assert confidence_bound(100, 0.90) < confidence_bound(100, 0.95)
        with pytest.raises(ValueError):
            confidence_bound(100, 0.5)
        with pytest.raises(ValueError):
            confidence_bound(1)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        corr = autocorrelation(x, max_lag=10)
        assert corr[10] == pytest.approx(1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        corr = autocorrelation(rng.normal(size=200), max_lag=15)
        assert np.allclose(corr, corr[::-1])

    def test_length(self):
        corr = autocorrelation(np.arange(50.0), max_lag=7)
        assert corr.size == 15

    def test_constant_signal_is_zero(self):
        corr = autocorrelation(np.ones(50), max_lag=5)
        assert np.allclose(corr, 0.0)

    def test_alternating_signal_strongly_negative_at_lag1(self):
        x = np.array([1.0, -1.0] * 50)
        corr = autocorrelation(x, max_lag=3)
        assert corr[4] == pytest.approx(-1.0, abs=0.05)  # lag +1

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(1), max_lag=1)
        with pytest.raises(ValueError):
            autocorrelation(np.ones(5), max_lag=5)


class TestAnalyzeResiduals:
    def test_white_noise_mostly_within_interval(self):
        rng = np.random.default_rng(2)
        residuals = rng.normal(size=(500, 2))
        analyses = analyze_residuals(residuals, max_lag=20)
        assert len(analyses) == 2
        for analysis in analyses:
            assert analysis.violation_fraction <= 0.1
            assert analysis.max_excursion < 2.0

    def test_sine_contaminated_residuals_violate(self):
        rng = np.random.default_rng(3)
        t = np.arange(400)
        residuals = (
            np.sin(2 * np.pi * t / 25)[:, np.newaxis]
            + 0.1 * rng.normal(size=(400, 1))
        )
        analysis = analyze_residuals(residuals, max_lag=20)[0]
        assert not analysis.within_confidence
        assert analysis.max_excursion > 3.0
        assert analysis.violations > 5

    def test_row_column_orientation_handled(self):
        rng = np.random.default_rng(4)
        residuals = rng.normal(size=(2, 300))  # channels as rows
        analyses = analyze_residuals(residuals, max_lag=10)
        assert len(analyses) == 2

    def test_violations_exclude_lag_zero(self):
        rng = np.random.default_rng(5)
        analysis = analyze_residuals(
            rng.normal(size=(500, 1)), max_lag=10
        )[0]
        # lag 0 correlation is 1.0 >> bound but must not count
        zero_index = np.where(analysis.lags == 0)[0][0]
        assert analysis.correlation[zero_index] == pytest.approx(1.0)
        assert analysis.violations < analysis.lags.size


class TestWhitenessScore:
    def test_white_scores_high(self):
        rng = np.random.default_rng(6)
        assert whiteness_score(rng.normal(size=(500, 2))) > 0.85

    def test_correlated_scores_lower_than_white(self):
        rng = np.random.default_rng(7)
        white = rng.normal(size=(400, 1))
        t = np.arange(400)
        colored = np.sin(2 * np.pi * t / 30)[:, np.newaxis] + 0.1 * white
        assert whiteness_score(colored) < whiteness_score(white)

    def test_identification_quality_ordering(
        self, big_system, full_system, percore_system
    ):
        """The paper's Figure 15 ordering: the 2x2 model's residuals are
        whiter than the 4x2's, which are whiter than the 10x10's."""
        small = whiteness_score(big_system.validation_residuals)
        mid = whiteness_score(full_system.validation_residuals)
        large = whiteness_score(percore_system.validation_residuals)
        assert small >= mid >= large
