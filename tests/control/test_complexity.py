"""Tests for the controller complexity model (Figure 6)."""

import pytest

from repro.control.complexity import (
    MIMODimensions,
    adaptive_invocation_operations,
    dimensions_for_cores,
    matvec_operations,
    operations_sweep,
    spectr_operations,
)


class TestDimensions:
    def test_paper_matrix_sizing(self):
        # "For a 2x2 MIMO, these matrices are up to 4x4 for a
        # second-order model."
        dims = MIMODimensions(n_inputs=2, n_outputs=2, order=2)
        assert dims.a_rows == 4
        assert dims.a_cols == 4

    def test_fourth_order_example(self):
        # "the fourth-order model used by Pothukuchi et al., resulting
        # in a maximum matrix size 6x6"; adding one actuator -> 7x6.
        dims = MIMODimensions(n_inputs=2, n_outputs=2, order=4)
        assert (dims.a_rows, dims.a_cols) == (6, 6)
        bigger = MIMODimensions(n_inputs=3, n_outputs=2, order=4)
        assert (bigger.a_rows, bigger.a_cols) == (7, 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MIMODimensions(n_inputs=0, n_outputs=1, order=1)

    def test_dimensions_for_cores_exynos_10x10(self):
        # Figure 4's 10x10: 8 cores -> 8 per-core + 2 per-cluster channels.
        dims = dimensions_for_cores(8, order=2)
        assert dims.n_inputs == 10
        assert dims.n_outputs == 10

    def test_dimensions_for_cores_validation(self):
        with pytest.raises(ValueError):
            dimensions_for_cores(0, order=2)


class TestOperationCounts:
    def test_matvec_formula(self):
        dims = MIMODimensions(n_inputs=2, n_outputs=2, order=2)
        # A:4x4 + B:4x2 + C:2x4 + D:2x2 = 16+8+8+4
        assert matvec_operations(dims) == 36

    def test_adaptive_exceeds_matvec(self):
        dims = dimensions_for_cores(8, order=2)
        assert adaptive_invocation_operations(dims) > matvec_operations(dims)

    def test_growth_with_cores(self):
        counts = [
            adaptive_invocation_operations(dimensions_for_cores(c, 4))
            for c in (10, 20, 40, 70)
        ]
        assert counts == sorted(counts)
        # super-linear growth: doubling cores much more than doubles ops
        assert counts[1] > 4 * counts[0]

    def test_order_insignificant_when_cores_large(self):
        # "The order becomes insignificant once #cores >> order."
        low = adaptive_invocation_operations(dimensions_for_cores(70, 2))
        high = adaptive_invocation_operations(dimensions_for_cores(70, 8))
        assert high / low < 1.2
        low_small = adaptive_invocation_operations(dimensions_for_cores(4, 2))
        high_small = adaptive_invocation_operations(dimensions_for_cores(4, 8))
        assert high_small / low_small > 1.5

    def test_sweep_structure(self):
        sweep = operations_sweep([10, 20], [2, 4])
        assert set(sweep) == {2, 4}
        assert set(sweep[2]) == {10, 20}
        assert sweep[4][20] > sweep[2][10]


class TestSpectrScaling:
    def test_linear_in_clusters(self):
        ops_8 = spectr_operations(8, 2)
        ops_16 = spectr_operations(16, 2)
        ops_32 = spectr_operations(32, 2)
        assert (ops_16 - ops_8) == (ops_32 - ops_16) / 2

    def test_vastly_cheaper_than_monolithic(self):
        monolithic = adaptive_invocation_operations(
            dimensions_for_cores(64, 2)
        )
        modular = spectr_operations(64, 2)
        assert monolithic / modular > 1000
