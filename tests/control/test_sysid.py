"""Tests for ARX identification and excitation signals."""

import numpy as np
import pytest

from repro.control.statespace import ModelError
from repro.control.sysid import (
    ARXModel,
    fit_percent,
    identify_arx,
    multi_input_staircase,
    r_squared_per_output,
    recommend_order,
    staircase_signal,
)


def simulate_true_arx(coeffs, na, nb, u, noise=0.0, seed=0):
    """Generate data from a known ARX system."""
    rng = np.random.default_rng(seed)
    n_outputs = coeffs.shape[0]
    horizon = u.shape[0]
    y = np.zeros((horizon, n_outputs))
    lag = max(na, nb)
    for t in range(lag, horizon):
        phi = np.concatenate(
            [y[t - i] for i in range(1, na + 1)]
            + [u[t - j] for j in range(1, nb + 1)]
        )
        y[t] = coeffs @ phi + noise * rng.normal(size=n_outputs)
    return y


class TestStaircase:
    def test_levels_and_hold(self):
        signal = staircase_signal([1.0, 2.0, 3.0], hold=2, mirror=False)
        assert signal.tolist() == [1, 1, 2, 2, 3, 3]

    def test_mirror_sweeps_back(self):
        signal = staircase_signal([1.0, 2.0, 3.0], hold=1)
        assert signal.tolist() == [1, 2, 3, 2]

    def test_repeats(self):
        signal = staircase_signal([1.0, 2.0], hold=1, repeats=2, mirror=False)
        assert signal.tolist() == [1, 2, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            staircase_signal([], hold=1)
        with pytest.raises(ValueError):
            staircase_signal([1.0], hold=0)

    def test_multi_input_single_mode_varies_one_at_a_time(self):
        block = multi_input_staircase([[1, 2, 3], [10, 20]], hold=2, mode="single")
        # First segment: input 0 varies, input 1 held at its median.
        seg_len = len(staircase_signal([1, 2, 3], 2))
        first = block[:seg_len]
        assert np.all(first[:, 1] == 15.0)
        assert first[:, 0].min() == 1.0 and first[:, 0].max() == 3.0

    def test_multi_input_all_mode_shape(self):
        block = multi_input_staircase([[1, 2], [10, 20]], hold=3, mode="all")
        assert block.shape[1] == 2
        assert block[:, 0].max() == 2.0
        assert block[:, 1].max() == 20.0

    def test_multi_input_mode_validated(self):
        with pytest.raises(ValueError):
            multi_input_staircase([[1, 2]], hold=1, mode="weird")


class TestIdentification:
    def test_recovers_known_siso_system(self):
        # y(t) = 0.6 y(t-1) + 0.5 u(t-1)
        coeffs = np.array([[0.6, 0.5]])
        u = staircase_signal([-1, 0, 1, 2], hold=5, repeats=4)[:, np.newaxis]
        y = simulate_true_arx(coeffs, 1, 1, u)
        result = identify_arx(u, y, na=1, nb=1)
        assert np.allclose(result.model.coeffs, coeffs, atol=1e-6)
        assert result.r_squared > 0.999

    def test_recovers_known_mimo_system(self):
        # 2-output, 2-input, first order.
        coeffs = np.array(
            [[0.5, 0.1, 0.4, 0.0], [0.0, 0.6, 0.1, 0.3]]
        )
        rng = np.random.default_rng(1)
        u = rng.normal(size=(400, 2))
        y = simulate_true_arx(coeffs, 1, 1, u)
        result = identify_arx(u, y, na=1, nb=1)
        assert np.allclose(result.model.coeffs, coeffs, atol=1e-6)

    def test_noise_degrades_r_squared(self):
        coeffs = np.array([[0.6, 0.5]])
        u = staircase_signal([-1, 0, 1], hold=4, repeats=6)[:, np.newaxis]
        clean = identify_arx(
            u, simulate_true_arx(coeffs, 1, 1, u, noise=0.0), na=1, nb=1
        )
        noisy = identify_arx(
            u, simulate_true_arx(coeffs, 1, 1, u, noise=0.3), na=1, nb=1
        )
        assert noisy.r_squared < clean.r_squared

    def test_sample_count_validated(self):
        with pytest.raises(ModelError):
            identify_arx(np.zeros((3, 1)), np.zeros((3, 1)), na=2, nb=2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            identify_arx(np.zeros((10, 1)), np.zeros((9, 1)))

    def test_design_flow_gate(self):
        coeffs = np.array([[0.6, 0.5]])
        u = staircase_signal([-1, 0, 1], hold=4, repeats=6)[:, np.newaxis]
        result = identify_arx(
            u, simulate_true_arx(coeffs, 1, 1, u), na=1, nb=1
        )
        assert result.meets_design_flow_gate()
        assert result.meets_design_flow_gate(threshold=0.99)


class TestARXModel:
    def test_coeff_shape_validated(self):
        with pytest.raises(ModelError):
            ARXModel(na=1, nb=1, n_inputs=1, n_outputs=1, coeffs=np.zeros((1, 3)))

    def test_predict_one_step_copies_warmup(self):
        model = ARXModel(
            na=1, nb=1, n_inputs=1, n_outputs=1,
            coeffs=np.array([[0.5, 1.0]]),
        )
        u = np.ones((5, 1))
        y = np.arange(5.0)[:, np.newaxis]
        yhat = model.predict_one_step(u, y)
        assert yhat[0, 0] == y[0, 0]  # warmup row copied
        assert yhat[1, 0] == pytest.approx(0.5 * y[0, 0] + 1.0)

    def test_free_run_simulation_matches_truth(self):
        coeffs = np.array([[0.7, 0.3]])
        u = staircase_signal([0, 1, 2], hold=4)[:, np.newaxis]
        y_true = simulate_true_arx(coeffs, 1, 1, u)
        model = ARXModel(
            na=1, nb=1, n_inputs=1, n_outputs=1, coeffs=coeffs
        )
        y_sim = model.simulate(u, y_init=y_true[:1])
        assert np.allclose(y_sim, y_true, atol=1e-9)

    def test_statespace_realization_equivalent(self):
        """The companion-form realization reproduces the ARX recursion."""
        coeffs = np.array(
            [[0.5, 0.1, 0.4, 0.0], [0.0, 0.6, 0.1, 0.3]]
        )
        model = ARXModel(
            na=1, nb=1, n_inputs=2, n_outputs=2, coeffs=coeffs
        )
        ss = model.to_statespace()
        rng = np.random.default_rng(3)
        u = rng.normal(size=(50, 2))
        y_arx = model.simulate(u)
        _, y_ss = ss.simulate(u)
        # The state-space output lags the ARX labelling by construction
        # (x(t) holds the t-1 history); compare from the second sample.
        assert np.allclose(y_ss[1:], y_arx[1:], atol=1e-9)

    def test_statespace_higher_order_equivalent(self):
        """For na > 1 the warmup conventions differ (ARX.simulate zeroes
        the first max(na,nb) outputs; the realization responds to u from
        t=0), so the trajectories agree once the stable transient has
        decayed."""
        rng = np.random.default_rng(4)
        u = rng.normal(size=(300, 1))
        coeffs = np.array([[0.4, 0.2, 0.5, -0.2]])  # na=2, nb=2
        y = simulate_true_arx(coeffs, 2, 2, u)
        model = ARXModel(
            na=2, nb=2, n_inputs=1, n_outputs=1, coeffs=coeffs
        )
        ss = model.to_statespace()
        _, y_ss = ss.simulate(u)
        assert np.allclose(y_ss[100:], y[100:], atol=1e-6)

    def test_statespace_dims(self):
        model = ARXModel(
            na=2, nb=3, n_inputs=2, n_outputs=2,
            coeffs=np.zeros((2, 2 * 2 + 3 * 2)),
        )
        ss = model.to_statespace()
        assert ss.n_states == 2 * 2 + 3 * 2
        assert ss.n_inputs == 2
        assert ss.n_outputs == 2


class TestScores:
    def test_r_squared_perfect(self):
        y = np.arange(10.0)[:, np.newaxis]
        assert r_squared_per_output(y, y)[0] == pytest.approx(1.0)

    def test_r_squared_mean_predictor_is_zero(self):
        y = np.arange(10.0)[:, np.newaxis]
        yhat = np.full_like(y, y.mean())
        assert r_squared_per_output(y, yhat)[0] == pytest.approx(0.0)

    def test_fit_percent_perfect(self):
        y = np.arange(10.0)[:, np.newaxis]
        assert fit_percent(y, y)[0] == pytest.approx(100.0)

    def test_fit_percent_worse_than_mean_is_negative(self):
        y = np.arange(10.0)[:, np.newaxis]
        yhat = -y
        assert fit_percent(y, yhat)[0] < 0.0

    def test_recommend_order_picks_true_order(self):
        rng = np.random.default_rng(5)
        u = rng.normal(size=(600, 1))
        coeffs = np.array([[0.4, 0.3, 0.5, -0.2]])  # true order 2
        y = simulate_true_arx(coeffs, 2, 2, u, noise=0.01)
        order = recommend_order(u, y, candidates=(1, 2, 3))
        assert order == 2
