"""Tests for the DARE solver and LQR/Kalman gains."""

import numpy as np
import pytest
from scipy.linalg import solve_discrete_are

from repro.control.riccati import (
    RiccatiError,
    closed_loop_matrix,
    is_stabilizing,
    kalman_gain,
    lqr_gain,
    solve_dare,
)


def random_stable_system(seed, n=3, m=2):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    A *= 0.9 / max(np.abs(np.linalg.eigvals(A)).max(), 1e-9)
    B = rng.normal(size=(n, m))
    Q = np.eye(n)
    R = np.eye(m)
    return A, B, Q, R


class TestSolveDare:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_scipy(self, seed):
        A, B, Q, R = random_stable_system(seed)
        ours = solve_dare(A, B, Q, R)
        scipy_p = solve_discrete_are(A, B, Q, R)
        assert np.allclose(ours, scipy_p, rtol=1e-6, atol=1e-8)

    def test_scalar_case_closed_form(self):
        # x' = a x + b u; P solves the scalar DARE.
        a, b, q, r = 0.8, 1.0, 1.0, 1.0
        P = solve_dare([[a]], [[b]], [[q]], [[r]])[0, 0]
        residual = a * P * a - P - (a * P * b) ** 2 / (r + b * P * b) + q
        assert residual == pytest.approx(0.0, abs=1e-8)

    def test_solution_is_symmetric_psd(self):
        A, B, Q, R = random_stable_system(7)
        P = solve_dare(A, B, Q, R)
        assert np.allclose(P, P.T)
        assert np.all(np.linalg.eigvalsh(P) >= -1e-9)

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            solve_dare(np.eye(2), np.ones((2, 1)), np.eye(3), np.eye(1))
        with pytest.raises(ValueError):
            solve_dare(np.eye(2), np.ones((2, 1)), np.eye(2), np.eye(2))

    def test_unstabilizable_unstable_mode_diverges(self):
        # Unstable mode with no control authority: no stabilizing
        # solution, the iteration must not silently "converge".
        A = np.array([[1.5, 0.0], [0.0, 0.5]])
        B = np.array([[0.0], [1.0]])
        with pytest.raises(RiccatiError):
            solve_dare(A, B, np.eye(2), np.eye(1), max_iter=500)


class TestLqrGain:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_gain_stabilizes(self, seed):
        A, B, Q, R = random_stable_system(seed)
        K = lqr_gain(A, B, Q, R)
        assert is_stabilizing(A, B, K)

    def test_stabilizes_unstable_but_controllable_plant(self):
        A = np.array([[1.2, 0.3], [0.0, 1.1]])
        B = np.array([[1.0], [1.0]])
        K = lqr_gain(A, B, np.eye(2), np.eye(1))
        assert is_stabilizing(A, B, K)

    def test_matches_scipy_gain(self):
        A, B, Q, R = random_stable_system(11)
        K = lqr_gain(A, B, Q, R)
        P = solve_discrete_are(A, B, Q, R)
        K_ref = np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
        assert np.allclose(K, K_ref, rtol=1e-6, atol=1e-8)

    def test_heavier_effort_shrinks_gain(self):
        A, B, Q, R = random_stable_system(3)
        K_cheap = lqr_gain(A, B, Q, R)
        K_dear = lqr_gain(A, B, Q, 100.0 * R)
        assert np.linalg.norm(K_dear) < np.linalg.norm(K_cheap)


class TestKalmanGain:
    def test_observer_converges(self):
        A = np.array([[0.9, 0.1], [0.0, 0.8]])
        C = np.array([[1.0, 0.0]])
        L = kalman_gain(A, C, 0.01 * np.eye(2), 0.1 * np.eye(1))
        # Observer error dynamics A - L C must be stable.
        eigenvalues = np.linalg.eigvals(A - L @ C)
        assert np.all(np.abs(eigenvalues) < 1.0)

    def test_shape(self):
        A = np.eye(3) * 0.5
        C = np.ones((2, 3))
        L = kalman_gain(A, C, np.eye(3), np.eye(2))
        assert L.shape == (3, 2)

    def test_estimation_tracks_true_state(self):
        rng = np.random.default_rng(0)
        A = np.array([[0.95, 0.1], [0.0, 0.9]])
        B = np.array([[0.0], [1.0]])
        C = np.array([[1.0, 0.0]])
        L = kalman_gain(A, C, 1e-3 * np.eye(2), 1e-2 * np.eye(1))
        x = np.array([1.0, -1.0])
        xhat = np.zeros(2)
        for _ in range(200):
            u = rng.normal(size=1)
            y = C @ x + rng.normal(scale=0.01, size=1)
            xhat = A @ xhat + B @ u + L @ (y - C @ xhat)
            x = A @ x + B @ u
        assert np.linalg.norm(x - xhat) < 0.1


class TestHelpers:
    def test_closed_loop_matrix(self):
        A = np.eye(2)
        B = np.eye(2)
        K = 0.5 * np.eye(2)
        assert np.allclose(closed_loop_matrix(A, B, K), 0.5 * np.eye(2))

    def test_is_stabilizing_false_for_zero_gain_unstable(self):
        A = np.array([[1.5]])
        B = np.array([[1.0]])
        assert not is_stabilizing(A, B, np.zeros((1, 1)))
