"""Tests for tracking-quality metrics."""

import numpy as np
import pytest

from repro.control.metrics import (
    TrackingSummary,
    overshoot_percent,
    settling_time,
    steady_state_error,
    steady_state_error_percent,
)


class TestSteadyStateError:
    def test_constant_trace(self):
        trace = np.full(100, 55.0)
        assert steady_state_error(trace, 60.0) == pytest.approx(5.0)

    def test_uses_tail_only(self):
        trace = np.concatenate([np.zeros(60), np.full(40, 58.0)])
        assert steady_state_error(trace, 60.0, tail_fraction=0.4) == (
            pytest.approx(2.0)
        )

    def test_percent_sign_convention(self):
        # exceeding the reference -> negative (paper Figure 14 caption)
        over = steady_state_error_percent(np.full(50, 5.5), 5.0)
        under = steady_state_error_percent(np.full(50, 4.5), 5.0)
        assert over == pytest.approx(-10.0)
        assert under == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_state_error(np.array([]), 1.0)
        with pytest.raises(ValueError):
            steady_state_error(np.ones(5), 1.0, tail_fraction=0.0)
        with pytest.raises(ValueError):
            steady_state_error_percent(np.ones(5), 0.0)


class TestSettlingTime:
    def test_first_order_decay(self):
        times = np.arange(200) * 0.05
        signal = 1.0 - np.exp(-times / 0.5)  # settles toward 1
        ts = settling_time(times, signal, band=0.05, final_value=1.0)
        # |1 - signal| <= 0.05 when t >= 0.5*ln(20) ~ 1.5 s
        assert ts == pytest.approx(1.5, abs=0.1)

    def test_never_settles(self):
        times = np.arange(100) * 0.05
        signal = np.sin(times * 10)  # oscillates forever
        assert settling_time(times, signal, final_value=0.0) == float("inf")

    def test_already_settled(self):
        times = np.arange(50) * 0.05
        assert settling_time(times, np.ones(50)) == pytest.approx(0.0)

    def test_default_final_value_from_tail(self):
        times = np.arange(100) * 0.1
        signal = np.concatenate([np.zeros(50), np.full(50, 2.0)])
        ts = settling_time(times, signal, band=0.05)
        assert ts == pytest.approx(5.0, abs=0.2)

    def test_tighter_band_takes_longer(self):
        times = np.arange(300) * 0.05
        signal = 1.0 - np.exp(-times / 0.8)
        loose = settling_time(times, signal, band=0.10, final_value=1.0)
        tight = settling_time(times, signal, band=0.02, final_value=1.0)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(ValueError):
            settling_time(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ValueError):
            settling_time(np.arange(1.0), np.arange(1.0))


class TestOvershoot:
    def test_no_overshoot(self):
        trace = np.linspace(0, 1, 50)
        assert overshoot_percent(trace, 1.0) == 0.0

    def test_ten_percent_overshoot(self):
        trace = np.concatenate([np.linspace(0, 1.1, 50), np.full(50, 1.0)])
        assert overshoot_percent(trace, 1.0) == pytest.approx(10.0, abs=0.5)

    def test_downward_step(self):
        trace = np.concatenate([np.linspace(2, 0.9, 50), np.full(50, 1.0)])
        assert overshoot_percent(trace, 1.0, initial=2.0) == pytest.approx(
            10.0, abs=0.5
        )

    def test_zero_step_returns_zero(self):
        assert overshoot_percent(np.ones(10), 1.0, initial=1.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            overshoot_percent(np.array([]), 1.0)


class TestTrackingSummary:
    def test_from_trace_bundles_everything(self):
        times = np.arange(200) * 0.05
        signal = 60.0 * (1.0 - np.exp(-times / 0.4))
        summary = TrackingSummary.from_trace(times, signal, 60.0)
        assert summary.reference == 60.0
        assert summary.steady_state_error == pytest.approx(0.0, abs=0.5)
        assert summary.steady_state_error_percent == pytest.approx(
            0.0, abs=1.0
        )
        assert 0 < summary.settling_time_s < 3.0
        assert summary.mean < 60.0
