"""Tests for robust stability analysis with uncertainty guardbands."""

import numpy as np
import pytest

from repro.control.lqg import LQGServoController, ActuatorLimits, design_lqg_servo
from repro.control.robustness import (
    closed_loop_spectral_radius,
    closed_loop_system_matrix,
    perturbed_plant,
    robust_stability_analysis,
)
from repro.control.statespace import OperatingPoint, StateSpaceModel


def plant():
    return StateSpaceModel(
        A=[[0.6, 0.1], [0.05, 0.5]],
        B=[[0.8, 0.3], [0.2, 0.7]],
        C=[[1.0, 0.2], [0.1, 1.0]],
        D=np.zeros((2, 2)),
    )


def gains():
    return design_lqg_servo(
        plant(), output_weights=[1, 1], effort_weights=[1, 1]
    )


class TestClosedLoopMatrix:
    def test_nominal_closed_loop_is_stable(self):
        radius = closed_loop_spectral_radius(plant(), gains())
        assert radius < 1.0

    def test_matrix_dimensions(self):
        matrix = closed_loop_system_matrix(plant(), gains())
        n_plant, n_ctrl, p = 2, 2, 2
        assert matrix.shape == (n_plant + n_ctrl + p,) * 2

    def test_matrix_predicts_simulation(self):
        """The analytic closed-loop matrix must describe the same
        dynamics the actual controller produces (zero references)."""
        model = plant()
        g = gains()
        matrix = closed_loop_system_matrix(model, g)
        radius = float(np.max(np.abs(np.linalg.eigvals(matrix))))
        controller = LQGServoController(
            g,
            OperatingPoint(u=np.zeros(2), y=np.zeros(2)),
            ActuatorLimits(lower=[-1e9, -1e9], upper=[1e9, 1e9]),
        )
        controller.set_reference([0.0, 0.0])
        x = np.array([1.0, -1.0])  # initial perturbation
        u = np.zeros(2)
        norms = []
        for _ in range(120):
            y = model.C @ x
            u = controller.step(y)
            x = model.A @ x + model.B @ u
            norms.append(np.linalg.norm(x))
        assert radius < 1.0
        assert norms[-1] < 1e-3  # simulation decays as predicted


class TestPerturbedPlant:
    def test_output_scaling(self):
        perturbed = perturbed_plant(plant(), [1.5, 0.7])
        assert np.allclose(perturbed.C[0], 1.5 * plant().C[0])
        assert np.allclose(perturbed.C[1], 0.7 * plant().C[1])
        assert np.allclose(perturbed.A, plant().A)


class TestGuardbandSweep:
    def test_paper_guardbands_pass(self):
        """50% QoS / 30% power guardbands (footnote 7) must hold for a
        reasonably-tuned design."""
        report = robust_stability_analysis(plant(), gains(), [0.5, 0.3])
        assert report.robustly_stable
        assert report.margin > 0.0
        assert report.vertices_checked == 4

    def test_extreme_uncertainty_fails(self):
        report = robust_stability_analysis(plant(), gains(), [25.0, 25.0])
        assert not report.robustly_stable
        assert report.margin < 0.0

    def test_worst_vertex_reported(self):
        report = robust_stability_analysis(plant(), gains(), [0.5, 0.3])
        assert len(report.worst_vertex) == 2
        assert all(s in (0.5, 1.5, 0.7, 1.3) for s in report.worst_vertex)

    def test_guardband_dimension_checked(self):
        with pytest.raises(ValueError):
            robust_stability_analysis(plant(), gains(), [0.5])

    def test_zero_guardband_matches_nominal(self):
        report = robust_stability_analysis(plant(), gains(), [0.0, 0.0])
        nominal = closed_loop_spectral_radius(plant(), gains())
        assert report.worst_radius == pytest.approx(nominal)

    def test_identified_cluster_design_is_robust(self, big_system):
        """The deployed Big-cluster gain sets survive the paper's
        guardbands against their own identified model."""
        from repro.managers.mimo import build_gain_library

        library = build_gain_library(big_system)
        for name in library.names():
            report = robust_stability_analysis(
                big_system.model, library.get(name), [0.5, 0.3]
            )
            assert report.robustly_stable, name
