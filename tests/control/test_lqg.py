"""Tests for the LQG servo controller and gain design."""

import numpy as np
import pytest

from repro.control.lqg import (
    ActuatorLimits,
    LQGGains,
    LQGServoController,
    design_lqg_servo,
)
from repro.control.statespace import ModelError, OperatingPoint, StateSpaceModel


def plant_2x2():
    """A well-behaved 2-input 2-output plant with cross-coupling."""
    return StateSpaceModel(
        A=[[0.6, 0.1], [0.05, 0.5]],
        B=[[0.8, 0.3], [0.2, 0.7]],
        C=[[1.0, 0.2], [0.1, 1.0]],
        D=np.zeros((2, 2)),
    )


def wide_limits(n=2):
    return ActuatorLimits(lower=[-100.0] * n, upper=[100.0] * n)


def run_closed_loop(controller, model, refs, steps=300, disturbance=None):
    controller.set_reference(refs)
    x = np.zeros(model.n_states)
    u = np.zeros(model.n_inputs)
    history = []
    for k in range(steps):
        y = model.C @ x + model.D @ u
        if disturbance is not None:
            y = y + disturbance(k)
        u = controller.step(y)
        x = model.A @ x + model.B @ u
        history.append(y)
    return np.asarray(history)


class TestDesign:
    def test_gain_shapes(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        assert gains.K_state.shape == (2, 2)
        assert gains.K_integral.shape == (2, 2)
        assert gains.L.shape == (2, 2)

    def test_weight_dimension_checks(self):
        with pytest.raises(ModelError):
            design_lqg_servo(
                plant_2x2(), output_weights=[1], effort_weights=[1, 1]
            )
        with pytest.raises(ModelError):
            design_lqg_servo(
                plant_2x2(), output_weights=[1, 1], effort_weights=[1]
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(ModelError):
            design_lqg_servo(
                plant_2x2(), output_weights=[-1, 1], effort_weights=[1, 1]
            )
        with pytest.raises(ModelError):
            design_lqg_servo(
                plant_2x2(), output_weights=[1, 1], effort_weights=[0, 1]
            )

    def test_priority_masks_integrator(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[30, 1], effort_weights=[1, 1]
        )
        assert gains.integral_mask.tolist() == [1.0, 0.0]
        assert np.allclose(gains.K_integral[:, 1], 0.0)

    def test_balanced_weights_keep_both_integrators(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        assert gains.integral_mask.tolist() == [1.0, 1.0]

    def test_all_outputs_below_threshold_impossible(self):
        # The favoured output always has relative weight 1 >= threshold,
        # so at least one integrator is always active.
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[0.001, 0.001], effort_weights=[1, 1]
        )
        assert gains.integral_mask.sum() == 2.0

    def test_operations_count_positive_and_scales(self):
        small = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        assert small.operations_per_invocation() > 0


class TestIntegralMaskNormalization:
    """``integral_mask`` is Optional only at construction; after
    ``__post_init__`` it is always a dense float ndarray."""

    def test_omitted_mask_defaults_to_all_outputs(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        bare = LQGGains(
            name="bare",
            model=gains.model,
            K_state=gains.K_state,
            K_integral=gains.K_integral,
            L=gains.L,
            Q_output=gains.Q_output,
            R_effort=gains.R_effort,
        )
        assert isinstance(bare.integral_mask, np.ndarray)
        assert bare.integral_mask.tolist() == [1.0, 1.0]

    def test_list_mask_is_normalized_to_flat_float_array(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        custom = LQGGains(
            name="custom",
            model=gains.model,
            K_state=gains.K_state,
            K_integral=gains.K_integral,
            L=gains.L,
            Q_output=gains.Q_output,
            R_effort=gains.R_effort,
            integral_mask=[[1, 0]],
        )
        assert custom.integral_mask.dtype == np.float64
        assert custom.integral_mask.shape == (2,)
        assert custom.integral_mask.tolist() == [1.0, 0.0]

    def test_pinv_is_lazy_and_cached(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        assert gains._K_integral_pinv is None
        first = gains.K_integral_pinv
        assert first is gains.K_integral_pinv
        assert np.allclose(first, np.linalg.pinv(gains.K_integral))


class TestTracking:
    def test_tracks_both_references(self):
        model = plant_2x2()
        gains = design_lqg_servo(
            model, output_weights=[1, 1], effort_weights=[1, 1]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        history = run_closed_loop(controller, model, [1.0, -0.5])
        assert history[-1] == pytest.approx([1.0, -0.5], abs=1e-3)

    def test_priority_output_wins_under_conflict(self):
        """With a rank-deficient effective target, the favoured output
        is servoed and the other floats."""
        model = plant_2x2()
        gains = design_lqg_servo(
            model, output_weights=[30, 1], effort_weights=[1, 1]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        history = run_closed_loop(controller, model, [1.0, 100.0])
        assert history[-1][0] == pytest.approx(1.0, abs=1e-2)
        assert abs(history[-1][1] - 100.0) > 50  # not chased

    def test_rejects_constant_output_disturbance(self):
        model = plant_2x2()
        gains = design_lqg_servo(
            model, output_weights=[1, 1], effort_weights=[1, 1]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        history = run_closed_loop(
            controller,
            model,
            [0.5, 0.5],
            disturbance=lambda k: np.array([0.3, 0.0]),
        )
        assert history[-1] == pytest.approx([0.5, 0.5], abs=1e-2)

    def test_reference_dimension_checked(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        with pytest.raises(ModelError):
            controller.set_reference([1.0])

    def test_operating_point_dimensions_checked(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        with pytest.raises(ModelError):
            LQGServoController(
                gains, OperatingPoint(u=np.zeros(3), y=np.zeros(2)), wide_limits(3)
            )


class TestSaturation:
    def test_outputs_respect_limits(self):
        model = plant_2x2()
        gains = design_lqg_servo(
            model, output_weights=[1, 1], effort_weights=[1, 1]
        )
        limits = ActuatorLimits(lower=[-0.1, -0.1], upper=[0.1, 0.1])
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), limits
        )
        controller.set_reference([10.0, 10.0])
        for _ in range(50):
            u = controller.step(np.zeros(2))
            assert np.all(u <= 0.1 + 1e-12)
            assert np.all(u >= -0.1 - 1e-12)

    def test_antiwindup_recovers_quickly(self):
        """After a long saturated stretch, integrators must not be wound
        up: when the reference returns to a feasible value the output
        re-converges within a reasonable horizon."""
        model = plant_2x2()
        gains = design_lqg_servo(
            model, output_weights=[1, 1], effort_weights=[1, 1]
        )
        limits = ActuatorLimits(lower=[-0.5, -0.5], upper=[0.5, 0.5])
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), limits
        )
        x = np.zeros(2)
        u = np.zeros(2)
        controller.set_reference([50.0, 50.0])  # unreachable
        for _ in range(100):
            y = model.C @ x
            u = controller.step(y)
            x = model.A @ x + model.B @ u
        controller.set_reference([0.2, 0.2])  # feasible again
        history = []
        for _ in range(120):
            y = model.C @ x
            u = controller.step(y)
            x = model.A @ x + model.B @ u
            history.append(y.copy())
        assert np.allclose(history[-1], [0.2, 0.2], atol=0.02)

    def test_slew_limit_respected(self):
        model = plant_2x2()
        gains = design_lqg_servo(
            model, output_weights=[1, 1], effort_weights=[1, 1]
        )
        limits = ActuatorLimits(
            lower=[-10, -10], upper=[10, 10], max_step=[0.2, 0.2]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), limits
        )
        controller.set_reference([5.0, 5.0])
        previous = np.zeros(2)
        for _ in range(30):
            u = controller.step(np.zeros(2))
            assert np.all(np.abs(u - previous) <= 0.2 + 1e-12)
            previous = u

    def test_limit_validation(self):
        with pytest.raises(ModelError):
            ActuatorLimits(lower=[1.0], upper=[0.0])
        with pytest.raises(ModelError):
            ActuatorLimits(lower=[0.0], upper=[1.0], max_step=[0.0])
        with pytest.raises(ModelError):
            ActuatorLimits(lower=[0.0], upper=[1.0], max_step=[0.1, 0.2])


class TestGainSwitching:
    def test_switch_dimension_check(self):
        model = plant_2x2()
        gains = design_lqg_servo(
            model, output_weights=[1, 1], effort_weights=[1, 1]
        )
        other_model = StateSpaceModel(
            A=[[0.5]], B=[[1.0]], C=[[1.0]], D=[[0.0]]
        )
        other = design_lqg_servo(
            other_model, output_weights=[1], effort_weights=[1]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        with pytest.raises(ModelError):
            controller.switch_gains(other)

    def test_bumpless_switch_reduces_command_jump(self):
        """The bumpless re-initialization must produce a smaller
        actuation discontinuity than a hard integrator-preserving
        switch (one integration step of the new error always remains)."""
        model = plant_2x2()
        qos = design_lqg_servo(
            model, output_weights=[30, 1], effort_weights=[1, 1], name="qos"
        )
        power = design_lqg_servo(
            model, output_weights=[1, 30], effort_weights=[1, 1], name="power"
        )

        def jump(bumpless: bool) -> float:
            controller = LQGServoController(
                qos,
                OperatingPoint(u=np.zeros(2), y=np.zeros(2)),
                wide_limits(),
            )
            controller.set_reference([1.0, 0.0])
            x = np.zeros(2)
            u = np.zeros(2)
            for _ in range(100):
                y = model.C @ x
                u = controller.step(y)
                x = model.A @ x + model.B @ u
            u_before = u.copy()
            controller.switch_gains(power, bumpless=bumpless)
            u_after = controller.step(model.C @ x)
            return float(np.linalg.norm(u_after - u_before))

        assert jump(True) <= jump(False)
        assert jump(True) < 0.6

    def test_switch_changes_tracked_output(self):
        model = plant_2x2()
        qos = design_lqg_servo(
            model, output_weights=[30, 1], effort_weights=[1, 1], name="qos"
        )
        power = design_lqg_servo(
            model, output_weights=[1, 30], effort_weights=[1, 1], name="power"
        )
        controller = LQGServoController(
            qos, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        run_args = dict(steps=250)
        history = run_closed_loop(controller, model, [1.0, -1.0], **run_args)
        assert history[-1][0] == pytest.approx(1.0, abs=1e-2)
        controller.switch_gains(power)
        history = run_closed_loop(controller, model, [1.0, -1.0], **run_args)
        assert history[-1][1] == pytest.approx(-1.0, abs=1e-2)

    def test_state_snapshot_keys(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        snapshot = controller.state_snapshot()
        assert set(snapshot) == {"xhat", "z", "du_prev"}

    def test_reset_clears_state(self):
        gains = design_lqg_servo(
            plant_2x2(), output_weights=[1, 1], effort_weights=[1, 1]
        )
        controller = LQGServoController(
            gains, OperatingPoint(u=np.zeros(2), y=np.zeros(2)), wide_limits()
        )
        controller.set_reference([1.0, 1.0])
        for _ in range(5):
            controller.step([0.0, 0.0])
        controller.reset()
        snapshot = controller.state_snapshot()
        assert np.allclose(snapshot["z"], 0.0)
        assert controller.invocations == 0
