"""Tests for gain libraries and the schedule log."""

import numpy as np
import pytest

from repro.control.gains import GainLibrary, GainLibraryError, GainScheduleLog
from repro.control.lqg import design_lqg_servo
from repro.control.statespace import StateSpaceModel


def make_gains(name):
    model = StateSpaceModel(
        A=[[0.5]], B=[[1.0]], C=[[1.0]], D=[[0.0]]
    )
    return design_lqg_servo(
        model, output_weights=[1.0], effort_weights=[1.0], name=name
    )


class TestGainLibrary:
    def test_register_and_get(self):
        library = GainLibrary()
        library.register(make_gains("qos"))
        assert library.get("qos").name == "qos"
        assert "qos" in library
        assert len(library) == 1

    def test_duplicate_rejected(self):
        library = GainLibrary()
        library.register(make_gains("qos"))
        with pytest.raises(GainLibraryError):
            library.register(make_gains("qos"))

    def test_unknown_lookup_lists_available(self):
        library = GainLibrary(name="lib")
        library.register(make_gains("power"))
        with pytest.raises(GainLibraryError, match="power"):
            library.get("nope")

    def test_names_sorted(self):
        library = GainLibrary()
        library.register(make_gains("z"))
        library.register(make_gains("a"))
        assert library.names() == ("a", "z")


class TestGainScheduleLog:
    def test_record_and_query(self):
        log = GainScheduleLog()
        log.record(0.1, "big", "qos")
        log.record(5.2, "big", "power")
        log.record(5.2, "little", "power")
        assert log.switch_count == 3
        assert log.switches_for("big") == [(0.1, "qos"), (5.2, "power")]
        assert log.switches_for("nothing") == []
