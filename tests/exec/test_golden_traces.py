"""Golden-trace regression: serial, parallel, and cached runs must all
reproduce the committed fixtures bit-for-bit.

The fixtures (``fixtures/golden_traces.json``) pin the full trace of
each manager on the short three-phase scenario.  Any unintentional
change to the simulation, the controllers, the engine's process
handling, or the cache's serialization shows up here as a float-level
deviation.  Intentional behaviour changes regenerate the fixtures with
``scripts/make_golden_traces.py``.
"""

from __future__ import annotations

import pytest

from repro.exec.engine import ExperimentEngine, _worker_execute
from tests.exec.golden import (
    GOLDEN_MANAGERS,
    assert_matches_golden,
    golden_job,
    load_fixture,
)

pytestmark = pytest.mark.exec_smoke


@pytest.fixture(scope="module")
def fixture() -> dict:
    return load_fixture()


def test_fixture_covers_every_manager(fixture):
    assert sorted(fixture["managers"]) == sorted(GOLDEN_MANAGERS)


@pytest.mark.parametrize("manager", GOLDEN_MANAGERS)
def test_serial_run_matches_golden(manager, fixture):
    status, trace, _ = _worker_execute(golden_job(manager))
    assert status == "ok", trace
    assert_matches_golden(trace, fixture["managers"][manager])


def test_parallel_run_matches_golden(fixture, exec_cache):
    engine = ExperimentEngine(max_workers=2, cache=exec_cache)
    jobs = [golden_job(m) for m in GOLDEN_MANAGERS]
    traces = engine.results(jobs)
    for manager, trace in zip(GOLDEN_MANAGERS, traces):
        assert_matches_golden(trace, fixture["managers"][manager])


def test_cache_hit_matches_golden(fixture, exec_cache):
    engine = ExperimentEngine(max_workers=1, cache=exec_cache)
    jobs = [golden_job(m) for m in GOLDEN_MANAGERS]
    engine.results(jobs)  # populate (or hit, if a prior test ran)
    # Second pass must be served entirely from disk, and the pickled
    # traces must still match the fixtures exactly.
    traces = engine.results(jobs)
    assert all(r.cache_hit for r in engine.last_records)
    for manager, trace in zip(GOLDEN_MANAGERS, traces):
        assert_matches_golden(trace, fixture["managers"][manager])
