"""Golden-trace helpers shared by the regression tests and the
fixture generator (``scripts/make_golden_traces.py``).

The golden scenario is the paper's three-phase scenario shrunk to 1 s
phases: long enough that every phase transition, gain switch, and
background-task arrival happens, short enough for CI.  Fixtures store
every float as its shortest ``repr`` (what ``json`` emits), which
round-trips float64 losslessly — so "equal to fixture" means
bit-identical simulation output.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exec.job import ScenarioJob
from repro.experiments.figures import MANAGER_NAMES
from repro.experiments.runner import ScenarioTrace
from repro.experiments.scenario import Scenario, three_phase_scenario

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_traces.json"
GOLDEN_MANAGERS = MANAGER_NAMES
GOLDEN_SEED = 2018

# The trace series pinned by the fixture (all float64 ndarrays).
TRACE_SERIES = (
    "qos",
    "chip_power",
    "big_power",
    "little_power",
    "big_frequency",
    "big_cores",
    "little_frequency",
    "little_cores",
)


def golden_scenario() -> Scenario:
    return three_phase_scenario(phase_duration_s=1.0)


def golden_job(manager: str) -> ScenarioJob:
    return ScenarioJob(
        manager=manager,
        scenario=golden_scenario(),
        seed=GOLDEN_SEED,
        label=f"golden:{manager}",
    )


def trace_payload(trace: ScenarioTrace) -> dict:
    """The JSON-serializable fixture payload of one trace."""
    payload: dict = {
        "manager": trace.manager,
        "gain_sets": list(trace.gain_sets),
    }
    for series in TRACE_SERIES:
        payload[series] = [float(v) for v in getattr(trace, series)]
    return payload


def load_fixture() -> dict:
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def assert_matches_golden(trace: ScenarioTrace, golden: dict) -> None:
    """Exact (bit-identical) comparison of a trace against the fixture."""
    assert trace.manager == golden["manager"]
    assert list(trace.gain_sets) == golden["gain_sets"]
    for series in TRACE_SERIES:
        expected = np.asarray(golden[series], dtype=float)
        actual = np.asarray(getattr(trace, series), dtype=float)
        assert actual.shape == expected.shape, series
        assert np.array_equal(actual, expected), (
            f"{trace.manager}.{series} deviates from the golden trace "
            f"(max abs diff "
            f"{float(np.max(np.abs(actual - expected))):.3e}); if the "
            "change is intentional, regenerate with "
            "scripts/make_golden_traces.py"
        )
