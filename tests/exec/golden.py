"""Golden-trace helpers shared by the regression tests and the
fixture generator (``scripts/make_golden_traces.py``).

The golden scenario is the paper's three-phase scenario shrunk to 1 s
phases: long enough that every phase transition, gain switch, and
background-task arrival happens, short enough for CI.  Fixtures store
every float as its shortest ``repr`` (what ``json`` emits), which
round-trips float64 losslessly — so "equal to fixture" means
bit-identical simulation output.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exec.fleet_jobs import FleetScenarioJob
from repro.exec.job import FaultSpec, ScenarioJob
from repro.experiments.figures import MANAGER_NAMES
from repro.experiments.fleet import FleetTrace
from repro.experiments.runner import ScenarioTrace
from repro.experiments.scenario import Scenario, three_phase_scenario

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_traces.json"
FLEET_FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_fleet.json"
GOLDEN_MANAGERS = MANAGER_NAMES
GOLDEN_SEED = 2018

# The golden fleet: three devices, the middle one carrying an actuator
# fault (so the fixture pins the scalar-oracle splice path too).
GOLDEN_FLEET_DEVICES = 3
GOLDEN_FLEET_FAULT_ROW = 1
GOLDEN_FLEET_FAULT = FaultSpec(
    kind="reject", target="big", start_s=0.5, duration_s=1.0, probability=0.7
)

# The trace series pinned by the fixture (all float64 ndarrays).
TRACE_SERIES = (
    "qos",
    "chip_power",
    "big_power",
    "little_power",
    "big_frequency",
    "big_cores",
    "little_frequency",
    "little_cores",
)


def golden_scenario() -> Scenario:
    return three_phase_scenario(phase_duration_s=1.0)


def golden_job(manager: str) -> ScenarioJob:
    return ScenarioJob(
        manager=manager,
        scenario=golden_scenario(),
        seed=GOLDEN_SEED,
        label=f"golden:{manager}",
    )


def golden_fleet_job() -> FleetScenarioJob:
    return FleetScenarioJob(
        manager="SPECTR",
        scenario=golden_scenario(),
        seed=GOLDEN_SEED,
        n_devices=GOLDEN_FLEET_DEVICES,
        device_faults=((GOLDEN_FLEET_FAULT_ROW, GOLDEN_FLEET_FAULT),),
        label="golden:fleet",
    )


def trace_payload(trace: ScenarioTrace) -> dict:
    """The JSON-serializable fixture payload of one trace."""
    payload: dict = {
        "manager": trace.manager,
        "gain_sets": list(trace.gain_sets),
    }
    for series in TRACE_SERIES:
        payload[series] = [float(v) for v in getattr(trace, series)]
    return payload


def fleet_payload(trace: FleetTrace) -> dict:
    """The JSON-serializable fixture payload of one fleet trace."""
    payload: dict = {
        "manager": trace.manager,
        "n_devices": trace.n_devices,
        "gain_names": list(trace.gain_names),
        "gain_ids": [[int(v) for v in row] for row in trace.gain_ids],
    }
    for series in TRACE_SERIES:
        payload[series] = [
            [float(v) for v in row] for row in getattr(trace, series)
        ]
    return payload


def load_fixture() -> dict:
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def load_fleet_fixture() -> dict:
    return json.loads(FLEET_FIXTURE_PATH.read_text(encoding="utf-8"))


def assert_matches_golden(trace: ScenarioTrace, golden: dict) -> None:
    """Exact (bit-identical) comparison of a trace against the fixture."""
    assert trace.manager == golden["manager"]
    assert list(trace.gain_sets) == golden["gain_sets"]
    for series in TRACE_SERIES:
        expected = np.asarray(golden[series], dtype=float)
        actual = np.asarray(getattr(trace, series), dtype=float)
        assert actual.shape == expected.shape, series
        assert np.array_equal(actual, expected), (
            f"{trace.manager}.{series} deviates from the golden trace "
            f"(max abs diff "
            f"{float(np.max(np.abs(actual - expected))):.3e}); if the "
            "change is intentional, regenerate with "
            "scripts/make_golden_traces.py"
        )


def assert_matches_golden_fleet(trace: FleetTrace, golden: dict) -> None:
    """Exact comparison of a fleet trace against the fleet fixture."""
    assert trace.manager == golden["manager"]
    assert trace.n_devices == golden["n_devices"]
    assert list(trace.gain_names) == golden["gain_names"]
    assert np.array_equal(
        trace.gain_ids, np.asarray(golden["gain_ids"], dtype=np.int8)
    )
    for series in TRACE_SERIES:
        expected = np.asarray(golden[series], dtype=float)
        actual = np.asarray(getattr(trace, series), dtype=float)
        assert actual.shape == expected.shape, series
        assert np.array_equal(actual, expected), (
            f"fleet.{series} deviates from the golden fleet trace "
            f"(max abs diff "
            f"{float(np.max(np.abs(actual - expected))):.3e}); if the "
            "change is intentional, regenerate with "
            "scripts/make_golden_traces.py"
        )
