"""Serial-vs-parallel-vs-cached equivalence and determinism.

The engine's contract is that worker count and cache state are pure
performance knobs: the same job list produces bit-identical results
serially (workers=1), across a spawn pool (workers=4), and from a warm
cache.  These tests drive the real migrated callers — the TDP sweep and
the resilience fault campaign — through all three paths and require
exact equality of their result objects / canonical JSON.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exec.engine import ExperimentEngine
from repro.resilience.campaign import CampaignConfig, run_campaign
from tests.exec.golden import golden_job

SWEEP_BUDGETS = (5.5, 3.5)
SWEEP_MANAGERS = ("SPECTR", "MM-Pow")


@pytest.fixture(scope="module")
def smoke_config() -> CampaignConfig:
    return CampaignConfig.smoke()


class TestSweepEquivalence:
    @pytest.fixture(scope="class")
    def sweep_runs(self, exec_cache):
        from repro.experiments.sweeps import tdp_sweep

        def run(workers: int):
            engine = ExperimentEngine(max_workers=workers, cache=exec_cache)
            result = tdp_sweep(
                budgets=SWEEP_BUDGETS,
                managers=SWEEP_MANAGERS,
                engine=engine,
            )
            return result, engine.last_records

        serial, serial_records = run(1)
        parallel, parallel_records = run(4)
        return serial, serial_records, parallel, parallel_records

    def test_parallel_equals_serial(self, sweep_runs):
        serial, _, parallel, _ = sweep_runs
        assert serial.qos == parallel.qos  # exact float equality
        assert serial.power == parallel.power
        assert serial.format_text() == parallel.format_text()

    def test_second_run_was_served_from_cache(self, sweep_runs):
        _, _, _, parallel_records = sweep_runs
        assert all(r.cache_hit for r in parallel_records)

    def test_engine_equals_legacy_serial_loop(self, sweep_runs):
        from repro.experiments.sweeps import tdp_sweep

        serial, _, _, _ = sweep_runs
        legacy = tdp_sweep(
            budgets=SWEEP_BUDGETS, managers=SWEEP_MANAGERS
        )
        assert legacy.qos == serial.qos
        assert legacy.power == serial.power

    def test_systems_and_engine_are_mutually_exclusive(self, exec_cache):
        from repro.experiments.figures import identified_systems
        from repro.experiments.sweeps import tdp_sweep

        with pytest.raises(ValueError, match="not both"):
            tdp_sweep(
                systems=identified_systems(),
                engine=ExperimentEngine(cache=exec_cache),
            )


class TestCampaignEquivalence:
    @pytest.fixture(scope="class")
    def campaign_json(self, smoke_config, exec_cache):
        def run(workers: int, *, engine: bool = True) -> str:
            eng = (
                ExperimentEngine(max_workers=workers, cache=exec_cache)
                if engine
                else None
            )
            return run_campaign(smoke_config, engine=eng).to_json()

        return {
            "legacy": run(1, engine=False),
            "serial": run(1),
            "parallel": run(4),
            "cached": run(1),  # second engine pass: all cache hits
        }

    def test_all_paths_identical(self, campaign_json):
        assert len(set(campaign_json.values())) == 1


class TestTraceDeterminism:
    def test_rerun_is_bit_identical(self):
        from repro.exec.engine import _worker_execute

        _, first, _ = _worker_execute(golden_job("SPECTR"))
        _, second, _ = _worker_execute(golden_job("SPECTR"))
        assert np.array_equal(first.qos, second.qos)
        assert np.array_equal(first.chip_power, second.chip_power)
        assert first.gain_sets == second.gain_sets


class TestSharedStateHazards:
    """Regressions for latent hazards the engine migration surfaced."""

    def test_actuation_log_is_per_instance(self, big_system, little_system):
        # managers.base once initialized actuation_log with a stray
        # dataclasses.field() call; a shared-list regression would let
        # one manager's records leak into another's.
        from repro.managers.base import ManagerGoals
        from repro.managers.mm import mm_pow
        from repro.platform.soc import ExynosSoC

        def build():
            return mm_pow(
                ExynosSoC(),
                ManagerGoals(qos_reference=60.0, power_budget_w=5.0),
                big_system=big_system,
                little_system=little_system,
            )

        first, second = build(), build()
        assert first.actuation_log == []
        first.actuation_log.append("marker")
        assert second.actuation_log == []

    def test_scenario_trace_with_resilience_events_pickles(
        self, smoke_config
    ):
        # Campaign traces carry guard/invariant/degrade event records;
        # all of them must survive the spawn boundary.
        from repro.resilience.campaign import _run_one

        run = _run_one("SPECTR", smoke_config, "stuck")
        clone = pickle.loads(pickle.dumps(run))
        assert clone.to_json_dict() == run.to_json_dict()

    def test_campaign_config_is_digest_stable(self, smoke_config):
        from repro.resilience.campaign import campaign_jobs

        digests = [job.digest() for job in campaign_jobs(smoke_config)]
        assert len(set(digests)) == len(digests)  # every cell distinct
        again = [job.digest() for job in campaign_jobs(smoke_config)]
        assert digests == again
