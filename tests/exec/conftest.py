"""Fixtures for the experiment-engine suite."""

from __future__ import annotations

import pytest

from repro.exec.cache import ResultCache


@pytest.fixture(scope="session")
def exec_cache(tmp_path_factory) -> ResultCache:
    """One shared on-disk cache so the expensive design artifacts are
    derived at most once for the whole suite; result entries are still
    per-job (content-addressed), so tests do not interfere."""
    return ResultCache(tmp_path_factory.mktemp("exec-cache"))
