"""Chaos harness: seeded fault injection, interrupt + resume, byte-identity."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exec.chaos import (
    ChaosConfig,
    _fraction,
    chaos_execute,
    chaos_jobs,
    run_chaos,
)

pytestmark = pytest.mark.exec_smoke


class TestChaosConfig:
    def test_defaults_are_the_acceptance_campaign(self):
        config = ChaosConfig()
        assert config.jobs >= 200
        assert config.injected_attempts < config.max_crash_retries

    def test_needs_a_real_pool(self):
        with pytest.raises(ValueError, match="workers >= 2"):
            ChaosConfig(workers=1)

    def test_injection_must_stay_below_kill_budget(self):
        with pytest.raises(ValueError, match="injected_attempts"):
            ChaosConfig(injected_attempts=6, max_crash_retries=6)

    def test_hangs_must_outlast_the_deadline(self):
        with pytest.raises(ValueError, match="hang_s"):
            ChaosConfig(hang_s=0.5, deadline_s=1.0)

    def test_rates_are_probabilities(self):
        with pytest.raises(ValueError, match="kill_rate"):
            ChaosConfig(kill_rate=1.5)

    def test_interrupt_point_defaults_to_half(self):
        assert ChaosConfig(jobs=200).interrupt_point() == 100
        assert ChaosConfig(interrupt_after=7).interrupt_point() == 7


class TestChaosJobs:
    def test_digests_are_distinct_and_deterministic(self):
        config = ChaosConfig(jobs=24)
        digests = [job.digest() for job in chaos_jobs(config)]
        assert len(set(digests)) == 24
        assert [job.digest() for job in chaos_jobs(config)] == digests

    def test_seed_changes_every_digest(self):
        first = {j.digest() for j in chaos_jobs(ChaosConfig(jobs=8))}
        second = {
            j.digest() for j in chaos_jobs(ChaosConfig(jobs=8, seed=99))
        }
        assert not first & second

    def test_injection_decision_is_pure(self):
        roll = _fraction("inject", 2018, "ab" * 32, 1)
        assert 0.0 <= roll < 1.0
        assert _fraction("inject", 2018, "ab" * 32, 1) == roll
        assert _fraction("inject", 2018, "ab" * 32, 2) != roll

    def test_main_process_never_injects(self):
        # The same jobs that crash workers compute cleanly in-process:
        # that is what makes the golden serial run possible at all.
        config = ChaosConfig(jobs=12, kill_rate=1.0, hang_rate=0.0)
        results = [chaos_execute(job) for job in chaos_jobs(config)]
        assert all(r["metric"] == r["derived"] % 10_000 / 10_000.0
                   for r in results)


class TestChaosDrill:
    def test_smoke_drill_converges(self, tmp_path):
        report = run_chaos(ChaosConfig.smoke(), tmp_path)
        assert report.ok, report.format_text()
        assert report.interrupted
        assert report.kills > 0, "smoke rates must actually inject"
        assert report.corrupted > 0
        assert report.golden_sha256 == report.final_sha256

    def test_full_campaign_acceptance(self, tmp_path):
        # The headline acceptance criterion: a >=200-job campaign under
        # seeded worker-kill + hang + cache-corruption injection,
        # interrupted and resumed once, byte-identical to the unfaulted
        # serial run with zero lost and zero duplicated jobs.
        config = ChaosConfig()
        assert config.jobs >= 200
        report = run_chaos(config, tmp_path)
        assert report.ok, report.format_text()
        assert report.jobs == config.jobs
        assert (report.lost, report.duplicated, report.quarantined) == (
            0,
            0,
            0,
        )
        assert report.identical and report.interrupted

    def test_cli_chaos_smoke_json(self, tmp_path, capsys):
        from repro.exec.cli import main

        exit_code = main(
            [
                "chaos",
                "--smoke",
                "--state-dir",
                str(tmp_path),
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["ok"] is True
        assert payload["lost"] == 0 and payload["duplicated"] == 0

    def test_report_text_renders_verdict(self, tmp_path):
        config = dataclasses.replace(
            ChaosConfig.smoke(), jobs=12, interrupt_after=4
        )
        report = run_chaos(config, tmp_path)
        text = report.format_text()
        assert "chaos drill:" in text
        assert ("CONVERGED" in text) == report.ok
