"""Design-artifact caching: build-once, verify-on-load, rebuild on rot."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.automata.verification import VerificationReport
from repro.exec.artifacts import (
    VERIFICATION_FILE,
    design_digest,
    ensure_design_artifacts,
)
from repro.exec.cache import ResultCache


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory) -> ResultCache:
    cache = ResultCache(tmp_path_factory.mktemp("artifacts"))
    ensure_design_artifacts(cache)
    return cache


def test_first_build_populates_cache_and_bundle(warm_cache):
    digest = design_digest(warm_cache.salt)
    assert digest in warm_cache.entries()
    bundle = warm_cache.bundle_dir(digest)
    assert bundle.is_dir() and any(bundle.iterdir())


def test_reload_is_bit_identical_to_build(warm_cache):
    first = ensure_design_artifacts(warm_cache)
    second = ensure_design_artifacts(warm_cache)
    sys_a, ver_a = first
    sys_b, ver_b = second
    for cluster in ("big", "little", "full"):
        model_a = getattr(sys_a, cluster).model
        model_b = getattr(sys_b, cluster).model
        assert np.array_equal(model_a.A, model_b.A)
        assert np.array_equal(model_a.B, model_b.B)
        assert np.array_equal(model_a.C, model_b.C)
    assert ver_a.supervisor.states == ver_b.supervisor.states


def test_cached_container_omits_percore(warm_cache):
    systems, _ = ensure_design_artifacts(warm_cache)
    assert systems.percore is None


def test_verification_certificate_written_beside_bundle(warm_cache):
    digest = design_digest(warm_cache.salt)
    certificate = warm_cache.bundle_dir(digest) / VERIFICATION_FILE
    assert certificate.is_file()
    payload = json.loads(certificate.read_text(encoding="utf-8"))
    report = VerificationReport.from_dict(payload)
    assert report.verified
    _, verified = ensure_design_artifacts(warm_cache)
    assert report == verified.verification


def test_tampered_certificate_forces_rebuild(tmp_path):
    cache = ResultCache(tmp_path / "c")
    ensure_design_artifacts(cache)
    digest = design_digest(cache.salt)
    certificate = cache.bundle_dir(digest) / VERIFICATION_FILE
    payload = json.loads(certificate.read_text(encoding="utf-8"))
    # A syntactically valid report that does not match what verification
    # recomputes: the certificate no longer certifies this bundle.
    payload["nonblocking"] = False
    certificate.write_text(json.dumps(payload), encoding="utf-8")
    systems, verified = ensure_design_artifacts(cache)
    assert cache.invalidations >= 1
    assert verified.verification.verified
    report = VerificationReport.from_dict(
        json.loads(certificate.read_text(encoding="utf-8"))
    )
    assert report == verified.verification  # rewritten on rebuild


def test_corrupt_bundle_forces_rebuild(tmp_path):
    cache = ResultCache(tmp_path / "c")
    ensure_design_artifacts(cache)
    digest = design_digest(cache.salt)
    # Trash every bundle file: verify() must fail, the entry must be
    # invalidated, and the artifacts rebuilt (trust-but-verify).
    for path in cache.bundle_dir(digest).rglob("*"):
        if path.is_file():
            path.write_bytes(b"rotten")
    systems, verified = ensure_design_artifacts(cache)
    assert cache.invalidations >= 1
    assert verified.supervisor.states  # rebuilt, usable
    # ... and the fresh entry round-trips again.
    hit, _ = cache.get(digest)
    assert hit
