"""Campaign supervision: journal, backoff, watchdog, quarantine,
circuit breaker, and resume semantics."""

from __future__ import annotations

import json

import pytest

from repro.exec.cache import ResultCache
from repro.exec.engine import ExperimentEngine
from repro.exec.job import ScenarioJob
from repro.exec.supervision import (
    CircuitBreaker,
    JobFailure,
    RunInterrupted,
    RunJournal,
    SupervisionPolicy,
)

pytestmark = pytest.mark.exec_smoke

ECHO = "repro.exec.engine._echo_runner"
CRASH_ONCE = "repro.exec.engine._crash_once_runner"
ALWAYS_CRASH = "repro.exec.engine._always_crash_runner"
SLEEP = "repro.exec.chaos._sleep_runner"


def _echo_job(label: str, **params) -> ScenarioJob:
    params.setdefault("tag", label)
    return ScenarioJob(
        manager="SPECTR",
        runner=ECHO,
        overrides=tuple(sorted(params.items())),
        label=label,
    )


def _sleep_job(label: str, sleep_s: float) -> ScenarioJob:
    return ScenarioJob(
        manager="SPECTR",
        runner=SLEEP,
        overrides=(("sleep_s", sleep_s), ("tag", label)),
        label=label,
    )


def _engine(**kwargs) -> ExperimentEngine:
    kwargs.setdefault("prime_artifacts", False)
    return ExperimentEngine(**kwargs)


# ----------------------------------------------------------------------
# RunJournal
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_record_and_load_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", salt="s1")
        journal.record(
            "d1", "done", attempts=1, duration_s=0.25, label="cell-0"
        )
        journal.record(
            "d2", "quarantined", kind="poison", attempts=3, kills=3
        )
        entries = journal.load()
        assert entries["d1"].status == "done"
        assert entries["d1"].label == "cell-0"
        assert entries["d1"].duration_s == pytest.approx(0.25)
        assert entries["d2"].kind == "poison"
        assert entries["d2"].kills == 3

    def test_reload_from_disk_by_a_fresh_instance(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, salt="s1").record("d1", "done")
        assert RunJournal(path, salt="s1").load()["d1"].status == "done"

    def test_last_entry_wins(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record("d1", "failed", kind="timeout")
        journal.record("d1", "done")
        assert journal.load()["d1"].status == "done"

    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, salt="s1")
        journal.record("d1", "done")
        journal.record("d2", "done")
        # Simulate SIGKILL mid-append: a truncated JSON line at EOF.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"digest": "d3", "sta')
        loaded = RunJournal(path, salt="s1")
        entries = loaded.load()
        assert set(entries) == {"d1", "d2"}
        assert loaded.corrupt_lines == 1

    def test_stale_salt_discards_history(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, salt="old").record("d1", "done")
        fresh = RunJournal(path, salt="new")
        assert fresh.load() == {}
        assert fresh.stale
        # The next append rewrites the file under the new salt.
        fresh.record("d2", "done")
        assert set(fresh.load()) == {"d2"}

    def test_header_is_json_with_schema(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path, salt="s").record("d1", "done")
        header = json.loads(
            path.read_text(encoding="utf-8").splitlines()[0]
        )
        assert header == {"journal": "exec-journal/1", "salt": "s"}

    def test_unknown_status_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError, match="unknown journal status"):
            journal.record("d1", "finished")

    def test_describe_counts_statuses(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record("d1", "done")
        journal.record("d2", "done")
        journal.record("d3", "failed", kind="timeout")
        text = journal.describe()
        assert "2 done" in text and "1 failed" in text


class TestJobFailure:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            JobFailure(kind="mystery", message="x")

    def test_known_kinds_accepted(self):
        for kind in ("timeout", "crash", "exception", "poison", "cancelled"):
            assert JobFailure(kind=kind, message="m").kind == kind


# ----------------------------------------------------------------------
# Deterministic backoff
# ----------------------------------------------------------------------
class TestBackoff:
    def test_schedule_is_a_pure_function_of_the_digest(self):
        policy = SupervisionPolicy()
        first = policy.backoff_schedule("d" * 64, 5)
        second = policy.backoff_schedule("d" * 64, 5)
        assert first == second  # no wall-clock randomness anywhere

    def test_different_digests_get_different_jitter(self):
        policy = SupervisionPolicy()
        assert policy.backoff_s("a" * 64, 1) != policy.backoff_s("b" * 64, 1)

    def test_exponential_growth_until_cap(self):
        policy = SupervisionPolicy(backoff_base_s=0.1, backoff_cap_s=1.0)
        schedule = policy.backoff_schedule("e" * 64, 8)
        assert schedule == sorted(schedule)
        assert schedule[-1] == 1.0  # capped
        assert 0.1 <= schedule[0] <= 0.15  # base * (1 + 0.5 * jitter)

    def test_zero_kills_means_no_delay(self):
        assert SupervisionPolicy().backoff_s("f" * 64, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(poll_interval_s=0.0)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_only_past_the_rebuild_budget(self):
        breaker = CircuitBreaker(max_pool_rebuilds=2)
        assert not breaker.record_breakage()  # 1
        assert not breaker.record_breakage()  # 2
        assert not breaker.is_open
        assert breaker.record_breakage()  # 3 > 2: opens now
        assert breaker.is_open
        assert not breaker.record_breakage()  # already open

    def test_zero_budget_opens_immediately(self):
        breaker = CircuitBreaker(max_pool_rebuilds=0)
        assert breaker.record_breakage()
        assert breaker.is_open


# ----------------------------------------------------------------------
# Engine + journal: resume semantics
# ----------------------------------------------------------------------
class TestResumeSemantics:
    def test_done_jobs_are_skipped_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        journal = RunJournal(tmp_path / "j.jsonl", salt=cache.salt)
        jobs = [_echo_job(str(i)) for i in range(4)]
        _engine(cache=cache, journal=journal).results(jobs)

        resumed = _engine(cache=cache, journal=journal)
        records = resumed.run(jobs)
        assert all(r.cache_hit and r.mode == "cache" for r in records)
        # No duplicate "done" lines: a journaled-done cache hit is not
        # re-journaled.
        done = [e for e in journal.raw_entries() if e.status == "done"]
        assert len(done) == 4

    def test_quarantined_jobs_stay_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        journal = RunJournal(tmp_path / "j.jsonl", salt=cache.salt)
        job = _echo_job("poisoned")
        journal.record(
            job.digest(salt=cache.salt),
            "quarantined",
            kind="poison",
            attempts=3,
            kills=3,
        )
        record = _engine(cache=cache, journal=journal).run([job])[0]
        assert not record.ok
        assert record.mode == "journal"
        assert record.failure.kind == "poison"
        assert "not re-run" in record.error

    def test_failed_jobs_rerun_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        journal = RunJournal(tmp_path / "j.jsonl", salt=cache.salt)
        job = _echo_job("flaky")
        journal.record(
            job.digest(salt=cache.salt), "failed", kind="timeout"
        )
        record = _engine(cache=cache, journal=journal).run([job])[0]
        assert record.ok and record.result == ("echo", "flaky")
        assert journal.load()[record.digest].status == "done"

    def test_done_without_cached_value_reruns(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", salt="")
        job = _echo_job("evicted")
        journal.record(job.digest(), "done")
        # No cache attached: the journal alone cannot restore a value.
        record = _engine(journal=journal).run([job])[0]
        assert record.ok and not record.cache_hit
        assert record.mode == "serial"

    def test_interrupt_journals_in_flight_as_cancelled(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        journal = RunJournal(tmp_path / "j.jsonl", salt=cache.salt)
        jobs = [_sleep_job(f"s{i}", 0.3) for i in range(4)]

        def interrupt_after_first(record) -> None:
            raise RunInterrupted("stop after the first completion")

        engine = _engine(
            max_workers=2,
            cache=cache,
            journal=journal,
            progress=interrupt_after_first,
        )
        with pytest.raises(RunInterrupted):
            engine.run(jobs)
        statuses = {e.status for e in journal.raw_entries()}
        assert "cancelled" in statuses  # the other in-flight job

        # Resume completes the campaign; union covers every job.
        final = _engine(cache=cache, journal=journal).run(jobs)
        assert all(r.ok for r in final)
        assert {e.digest for e in journal.raw_entries()
                if e.status == "done"} == {r.digest for r in final}


# ----------------------------------------------------------------------
# Watchdog deadlines
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_overrunning_job_is_killed_and_recorded(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        policy = SupervisionPolicy(deadline_s=0.5, poll_interval_s=0.02)
        jobs = [_sleep_job("hung", 30.0), _echo_job("quick")]
        engine = _engine(max_workers=2, policy=policy, journal=journal)
        records = engine.run(jobs)
        hung, quick = records
        assert not hung.ok
        assert hung.failure.kind == "timeout"
        assert "deadline exceeded" in hung.error
        assert journal.load()[hung.digest].status == "failed"
        assert quick.ok

    def test_timeout_retry_budget_exhaustion_quarantines(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        policy = SupervisionPolicy(
            deadline_s=0.4,
            retry_timeouts=True,
            poll_interval_s=0.02,
            backoff_base_s=0.01,
        )
        job = _sleep_job("always-hung", 30.0)
        engine = _engine(
            max_workers=2,
            policy=policy,
            journal=journal,
            max_crash_retries=1,
        )
        record = engine.run([job])[0]
        assert not record.ok
        assert record.failure.kind == "poison"
        assert record.kills == 2  # initial + one retried timeout
        assert "timeout" in record.error
        assert journal.load()[record.digest].status == "quarantined"

    def test_deadline_is_not_enforced_serially(self):
        # Documented: the watchdog is a pool feature; serial execution
        # cannot preempt a job, so a short deadline must not kill it.
        policy = SupervisionPolicy(deadline_s=0.05)
        record = _engine(policy=policy).run([_sleep_job("slow", 0.2)])[0]
        assert record.ok


# ----------------------------------------------------------------------
# Quarantine + circuit breaker through the engine
# ----------------------------------------------------------------------
class TestQuarantineAndBreaker:
    def test_poison_job_is_quarantined_in_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        job = ScenarioJob(manager="SPECTR", runner=ALWAYS_CRASH)
        engine = _engine(
            max_workers=2, max_crash_retries=1, journal=journal
        )
        record = engine.run([job])[0]
        assert record.failure.kind == "poison"
        assert journal.load()[record.digest].status == "quarantined"

    def test_breaker_opens_and_degrades_to_serial(self, tmp_path):
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        crasher = ScenarioJob(
            manager="SPECTR",
            runner=CRASH_ONCE,
            overrides=(("sentinel", str(sentinel)),),
        )
        # One slow job keeps the second worker busy so the queue still
        # holds never-implicated jobs when the breakage happens.
        jobs = [crasher, _sleep_job("busy", 0.5)] + [
            _echo_job(f"e{i}") for i in range(4)
        ]
        policy = SupervisionPolicy(max_pool_rebuilds=0, backoff_base_s=0.01)
        engine = _engine(max_workers=2, policy=policy, max_crash_retries=5)
        records = engine.run(jobs)

        assert engine.breaker.is_open
        assert "circuit breaker open" in engine.describe_last()
        # The crasher was implicated in the breakage: never re-run
        # in-process (a worker-killer would take the campaign down).
        assert not records[0].ok
        assert records[0].failure.kind in ("crash", "poison")
        # Never-implicated jobs finish serially instead of aborting.
        serial_ok = [
            r for r in records[2:] if r.ok and r.mode == "serial"
        ]
        assert serial_ok, "queued jobs should degrade to serial"

    def test_breaker_stays_closed_within_budget(self, tmp_path):
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        job = ScenarioJob(
            manager="SPECTR",
            runner=CRASH_ONCE,
            overrides=(("sentinel", str(sentinel)),),
        )
        engine = _engine(max_workers=2)
        record = engine.run([job])[0]
        assert record.ok and record.result == "survived"
        assert not engine.breaker.is_open
        assert engine.breaker.breakages == 1
