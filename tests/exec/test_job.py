"""ScenarioJob spec: hashability, picklability, digest stability."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec.job import (
    FaultSpec,
    ScenarioJob,
    canonical_encode,
    derive_seed,
)
from repro.experiments.scenario import three_phase_scenario

pytestmark = pytest.mark.exec_smoke


def _job(**kwargs) -> ScenarioJob:
    defaults = dict(manager="SPECTR", seed=2018)
    defaults.update(kwargs)
    return ScenarioJob(**defaults)


# ----------------------------------------------------------------------
# Digest semantics
# ----------------------------------------------------------------------
class TestDigest:
    def test_label_is_cosmetic(self):
        assert _job(label="a").digest() == _job(label="b").digest()

    def test_every_semantic_field_changes_the_digest(self):
        base = _job()
        variants = [
            _job(manager="FS"),
            _job(workload="bodytrack"),
            _job(seed=2019),
            _job(scenario=three_phase_scenario(phase_duration_s=1.0)),
            _job(fault=FaultSpec(kind="stuck")),
            _job(overrides=(("enable_gain_scheduling", False),)),
            _job(runner="repro.exec.engine._echo_runner"),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1

    def test_salt_changes_the_digest(self):
        assert _job().digest(salt="v1") != _job().digest(salt="v2")

    def test_digest_is_pinned(self):
        # The digest doubles as the cache key: an unintentional change
        # to the canonical encoding silently orphans every cached
        # result.  Pin one concrete value.
        assert _job().digest() == (
            "9338f2a5bfd45b4057658a5a4f09b5f7"
            "746727fdd92ff2f55447d3780477a881"
        )

    def test_digest_stable_across_hash_randomization(self):
        # PYTHONHASHSEED permutes set/dict iteration and str hashes; a
        # digest built on hash() would drift between processes.
        script = (
            "from repro.exec.job import ScenarioJob, FaultSpec\n"
            "from repro.experiments.scenario import three_phase_scenario\n"
            "job = ScenarioJob(manager='SPECTR',"
            " scenario=three_phase_scenario(phase_duration_s=1.0),"
            " fault=FaultSpec(kind='stuck'),"
            " overrides=(('b', 1), ('a', 2)))\n"
            "print(job.digest(salt='x'))\n"
        )
        repo_root = Path(__file__).resolve().parents[2]
        outputs = set()
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(repo_root / "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=repo_root,
                check=True,
            )
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1

    def test_identical_specs_compare_equal_and_hash_equal(self):
        a, b = _job(label="x"), _job(label="x")
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


# ----------------------------------------------------------------------
# Picklability (the spawn boundary)
# ----------------------------------------------------------------------
class TestPickling:
    def test_job_round_trips(self):
        job = _job(
            scenario=three_phase_scenario(phase_duration_s=1.0),
            fault=FaultSpec(kind="bias"),
            overrides=(("supervisor_period_epochs", 4),),
        )
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.digest() == job.digest()


# ----------------------------------------------------------------------
# Canonical encoding
# ----------------------------------------------------------------------
class TestCanonicalEncode:
    def test_int_and_float_stay_distinct(self):
        assert canonical_encode(1) != canonical_encode(1.0)

    def test_tuple_and_list_stay_distinct(self):
        assert canonical_encode((1, 2)) != canonical_encode([1, 2])

    def test_dict_order_is_irrelevant(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode(
            {"b": 2, "a": 1}
        )

    def test_opaque_objects_are_rejected(self):
        with pytest.raises(TypeError, match="plain data"):
            canonical_encode(object())

    def test_non_string_dict_keys_are_rejected(self):
        with pytest.raises(TypeError, match="string keys"):
            canonical_encode({1: "x"})


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_fault_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlins")

    def test_fault_classes(self):
        assert FaultSpec(kind="stuck").fault_class == "sensor"
        assert FaultSpec(kind="clamp").fault_class == "actuator"

    def test_fault_build_matches_class(self):
        from repro.platform.faults import ActuatorFaultModel, FaultModel

        assert isinstance(FaultSpec(kind="stuck").build(), FaultModel)
        assert isinstance(
            FaultSpec(kind="delay").build(), ActuatorFaultModel
        )

    def test_empty_manager_rejected(self):
        with pytest.raises(ValueError, match="manager"):
            ScenarioJob(manager="")

    def test_undotted_runner_rejected(self):
        with pytest.raises(ValueError, match="dotted"):
            _job(runner="execute")

    def test_malformed_overrides_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            ScenarioJob(manager="SPECTR", overrides=(("a",),))


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
class TestDeriveSeed:
    def test_deterministic_and_part_sensitive(self):
        assert derive_seed(2018, "a") == derive_seed(2018, "a")
        assert derive_seed(2018, "a") != derive_seed(2018, "b")
        assert derive_seed(2018, "a") != derive_seed(2019, "a")

    def test_range(self):
        for part in range(50):
            assert 0 <= derive_seed(2018, part) < 2**31
