"""Cache discipline for the content-addressed synthesis memo."""

import pytest

from repro.automata import (
    automaton_to_dict,
    synthesize_supervisor,
)
from repro.automata.automaton import Automaton
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.exec import ResultCache, cached_synthesize, synthesis_digest

pytestmark = pytest.mark.exec_smoke


def machine_pair():
    sigma = Alphabet.of(
        [
            controllable("start"),
            uncontrollable("finish"),
            uncontrollable("break"),
            controllable("repair"),
        ]
    )
    plant = Automaton("machine", sigma, initial="Idle")
    plant.add_transition("Idle", "start", "Working")
    plant.add_transition("Working", "finish", "Idle")
    plant.add_transition("Working", "break", "Down")
    plant.add_transition("Down", "repair", "Idle")
    plant.mark("Idle")
    spec = Automaton(
        "max-one-repair", Alphabet.of([sigma["repair"]]), initial="Fresh"
    )
    spec.add_transition("Fresh", "repair", "Used")
    spec.mark("Fresh")
    spec.mark("Used")
    return plant, spec


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def pair():
    return machine_pair()


def assert_results_equal(left, right):
    assert automaton_to_dict(left.supervisor) == automaton_to_dict(
        right.supervisor
    )
    assert left.removed_uncontrollable == right.removed_uncontrollable
    assert left.removed_blocking == right.removed_blocking
    assert left.iterations == right.iterations
    assert left.state_map == right.state_map


class TestDigest:
    def test_engine_is_part_of_the_key(self, cache, pair):
        plant, spec = pair
        symbolic = synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        )
        explicit = synthesis_digest(
            plant, spec, engine="explicit", salt=cache.salt
        )
        assert symbolic != explicit

    def test_salt_is_part_of_the_key(self, pair):
        plant, spec = pair
        assert synthesis_digest(
            plant, spec, engine="symbolic", salt="a"
        ) != synthesis_digest(plant, spec, engine="symbolic", salt="b")

    def test_plant_mutation_changes_the_key(self, cache, pair):
        plant, spec = pair
        before = synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        )
        plant.forbid("Down")
        after = synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        )
        assert before != after

    def test_spec_mutation_changes_the_key(self, cache, pair):
        plant, spec = pair
        before = synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        )
        spec.add_transition("Used", "repair", "Used")
        after = synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        )
        assert before != after

    def test_state_names_matter(self, cache, pair):
        # Isomorphic but relabeled inputs yield differently-labeled
        # supervisors, so they must not share a memo entry.
        plant, spec = pair
        relabeled = plant.relabel(
            lambda state: f"{state.name}X", name=plant.name
        )
        assert synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        ) != synthesis_digest(
            relabeled, spec, engine="symbolic", salt=cache.salt
        )

    def test_digest_is_construction_order_independent(self, cache, pair):
        plant, spec = pair
        sigma = plant.alphabet
        reordered = Automaton("machine", sigma)
        reordered.add_transition("Down", "repair", "Idle")
        reordered.add_transition("Working", "break", "Down")
        reordered.add_transition("Working", "finish", "Idle")
        reordered.add_transition("Idle", "start", "Working")
        reordered.set_initial("Idle")
        reordered.mark("Idle")
        assert synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        ) == synthesis_digest(
            reordered, spec, engine="symbolic", salt=cache.salt
        )


class TestCachedSynthesize:
    def test_miss_then_hit(self, cache, pair):
        plant, spec = pair
        first, was_hit = cached_synthesize(cache, plant, spec)
        assert not was_hit
        second, was_hit = cached_synthesize(cache, plant, spec)
        assert was_hit
        assert_results_equal(first, second)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_hit_matches_direct_synthesis(self, cache, pair):
        plant, spec = pair
        cached_synthesize(cache, plant, spec)
        warm, was_hit = cached_synthesize(cache, plant, spec)
        assert was_hit
        assert_results_equal(
            warm, synthesize_supervisor(plant, spec, engine="symbolic")
        )

    def test_engines_do_not_share_entries(self, cache, pair):
        plant, spec = pair
        _, was_hit = cached_synthesize(cache, plant, spec, engine="symbolic")
        assert not was_hit
        _, was_hit = cached_synthesize(cache, plant, spec, engine="explicit")
        assert not was_hit
        assert len(cache.entries()) == 2

    def test_mutated_plant_is_a_fresh_problem(self, cache, pair):
        plant, spec = pair
        cached_synthesize(cache, plant, spec)
        plant.forbid("Down")
        result, was_hit = cached_synthesize(cache, plant, spec)
        assert not was_hit
        assert_results_equal(
            result, synthesize_supervisor(plant, spec, engine="symbolic")
        )

    def test_corrupt_payload_evicts_and_recomputes(self, cache, pair):
        plant, spec = pair
        first, _ = cached_synthesize(cache, plant, spec)
        digest = synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        )
        payload = cache._payload_path(digest)
        payload.write_bytes(b"\x00" + payload.read_bytes()[1:])
        result, was_hit = cached_synthesize(cache, plant, spec)
        assert not was_hit
        assert_results_equal(result, first)
        assert cache.eviction_counts().get("checksum") == 1
        # The recomputed bundle was re-stored under the same key.
        _, was_hit = cached_synthesize(cache, plant, spec)
        assert was_hit

    def test_foreign_payload_type_evicts_with_decode_reason(
        self, cache, pair
    ):
        plant, spec = pair
        digest = synthesis_digest(
            plant, spec, engine="symbolic", salt=cache.salt
        )
        cache.put(digest, {"schema": "not-a-synthesis-result"})
        result, was_hit = cached_synthesize(cache, plant, spec)
        assert not was_hit
        assert cache.eviction_counts().get("decode") == 1
        assert_results_equal(
            result, synthesize_supervisor(plant, spec, engine="symbolic")
        )
