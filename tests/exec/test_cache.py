"""ResultCache: round-trips, integrity sidecars, poisoning detection."""

from __future__ import annotations

import pickle

import pytest

from repro.exec.cache import CACHE_FORMAT, ResultCache, default_salt

pytestmark = pytest.mark.exec_smoke

DIGEST = "ab" * 32
OTHER = "cd" * 32


@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_then_hit(self, cache):
        hit, value = cache.get(DIGEST)
        assert not hit and value is None
        assert cache.put(DIGEST, {"answer": 42})
        hit, value = cache.get(DIGEST)
        assert hit and value == {"answer": 42}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_floats_round_trip_exactly(self, cache):
        payload = [0.1 + 0.2, 1e-309, -0.0, 2**-1074]
        cache.put(DIGEST, payload)
        _, value = cache.get(DIGEST)
        assert [repr(v) for v in value] == [repr(v) for v in payload]

    def test_entries_and_len(self, cache):
        assert len(cache) == 0
        cache.put(DIGEST, 1)
        cache.put(OTHER, 2)
        assert cache.entries() == sorted([DIGEST, OTHER])

    def test_unpicklable_value_is_not_cached(self, cache):
        assert not cache.put(DIGEST, lambda: None)
        assert len(cache) == 0


class TestIntegrity:
    def test_corrupted_payload_is_evicted(self, cache):
        cache.put(DIGEST, "payload")
        path = cache._payload_path(DIGEST)
        path.write_bytes(b"poisoned" + path.read_bytes()[8:])
        hit, _ = cache.get(DIGEST)
        assert not hit
        assert cache.invalidations == 1
        assert not path.exists()

    def test_poisoned_sidecar_rewritten_to_match_is_still_evicted(
        self, cache
    ):
        # An attacker (or bug) that rewrites both payload and sidecar
        # consistently defeats the checksum; the unpickle guard still
        # refuses garbage.
        import hashlib

        cache.put(DIGEST, "payload")
        garbage = b"not a pickle at all"
        cache._payload_path(DIGEST).write_bytes(garbage)
        cache._sidecar_path(DIGEST).write_text(
            hashlib.sha256(garbage).hexdigest() + "\n", encoding="utf-8"
        )
        hit, _ = cache.get(DIGEST)
        assert not hit
        assert cache.invalidations == 1

    def test_missing_sidecar_is_a_miss(self, cache):
        cache.put(DIGEST, "payload")
        cache._sidecar_path(DIGEST).unlink()
        hit, _ = cache.get(DIGEST)
        assert not hit


class TestInvalidation:
    def test_invalidate_removes_everything(self, cache):
        cache.put(DIGEST, "payload")
        bundle = cache.bundle_dir(DIGEST)
        bundle.mkdir(parents=True)
        (bundle / "artifact.json").write_text("{}")
        cache.invalidate(DIGEST)
        assert len(cache) == 0 and not bundle.exists()

    def test_clear(self, cache):
        cache.put(DIGEST, 1)
        cache.put(OTHER, 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        # and the cache keeps working afterwards
        cache.put(DIGEST, 3)
        assert cache.get(DIGEST) == (True, 3)


class TestEvictionObservability:
    def test_sidecar_corruption_eviction_is_counted(self, cache):
        # The satellite regression: corrupt the *sidecar* so the
        # checksum fails, and assert the eviction shows up on the
        # persistent counters instead of being healed silently.
        cache.put(DIGEST, "payload")
        cache._sidecar_path(DIGEST).write_text(
            "0" * 64 + "\n", encoding="utf-8"
        )
        hit, _ = cache.get(DIGEST)
        assert not hit
        counts = cache.eviction_counts()
        assert counts["checksum"] == 1
        assert sum(counts.values()) == 1

    def test_decode_failures_counted_separately(self, cache):
        import hashlib

        cache.put(DIGEST, "payload")
        garbage = b"not a pickle at all"
        cache._payload_path(DIGEST).write_bytes(garbage)
        cache._sidecar_path(DIGEST).write_text(
            hashlib.sha256(garbage).hexdigest() + "\n", encoding="utf-8"
        )
        cache.get(DIGEST)
        assert cache.eviction_counts()["decode"] == 1

    def test_counts_survive_process_restart(self, tmp_path):
        first = ResultCache(tmp_path / "cache")
        first.put(DIGEST, "payload")
        first._payload_path(DIGEST).write_bytes(b"junk")
        first.get(DIGEST)
        # A fresh instance (fresh session counters) still sees the scar.
        second = ResultCache(tmp_path / "cache")
        assert second.invalidations == 0
        assert second.eviction_counts()["checksum"] == 1

    def test_explicit_invalidate_recorded_as_explicit(self, cache):
        cache.put(DIGEST, "payload")
        cache.invalidate(DIGEST)
        assert cache.eviction_counts()["explicit"] == 1

    def test_unknown_reason_rejected(self, cache):
        with pytest.raises(ValueError, match="unknown eviction reason"):
            cache.invalidate(DIGEST, reason="gremlins")

    def test_clear_resets_the_ledger(self, cache):
        cache.put(DIGEST, "payload")
        cache.invalidate(DIGEST)
        cache.clear()
        assert sum(cache.eviction_counts().values()) == 0

    def test_describe_surfaces_evictions(self, cache):
        cache.put(DIGEST, "payload")
        cache._payload_path(DIGEST).write_bytes(b"junk")
        cache.get(DIGEST)
        text = cache.describe()
        assert "evictions on record: 1" in text
        assert "1 checksum" in text

    def test_cli_cache_info_shows_evictions(self, tmp_path, capsys):
        from repro.exec.cli import main

        cache = ResultCache(tmp_path / "cache")
        cache.put(DIGEST, "payload")
        cache._payload_path(DIGEST).write_bytes(b"junk")
        cache.get(DIGEST)
        exit_code = main(
            ["cache", "info", "--cache-dir", str(tmp_path / "cache")]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "evictions on record: 1" in out
        assert "1 checksum" in out


class TestSalt:
    def test_default_salt_embeds_format_and_version(self):
        import repro

        assert CACHE_FORMAT in default_salt()
        assert repro.__version__ in default_salt()

    def test_explicit_salt_wins(self, tmp_path):
        assert ResultCache(tmp_path, salt="s1").salt == "s1"


class TestConcurrencySafety:
    def test_put_is_atomic_no_tmp_left_behind(self, cache):
        cache.put(DIGEST, list(range(1000)))
        leftovers = [
            p
            for p in cache.directory.rglob("*")
            if p.is_file() and ".tmp" in p.name
        ]
        assert leftovers == []

    def test_double_put_last_write_wins(self, cache):
        cache.put(DIGEST, "first")
        cache.put(DIGEST, "second")
        assert cache.get(DIGEST) == (True, "second")
        assert pickle.loads(cache._payload_path(DIGEST).read_bytes()) == (
            "second"
        )
