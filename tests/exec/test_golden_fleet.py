"""Golden fleet regression: the batched N-device job must reproduce the
committed fixture bit-for-bit — serially, through the engine's process
pool, and from a warm cache — and every row of it must equal the
scalar oracle run with that row's derived seed.

The fixture (``fixtures/golden_fleet.json``) pins a three-device SPECTR
fleet on the short golden scenario with one actuator-faulted row, so
both the batched kernel and the scalar-splice path are covered.
Intentional behaviour changes regenerate the fixture with
``scripts/make_golden_traces.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.engine import ExperimentEngine, _worker_execute
from repro.exec.job import ScenarioJob, derive_seed
from tests.exec.golden import (
    GOLDEN_FLEET_FAULT,
    GOLDEN_FLEET_FAULT_ROW,
    GOLDEN_SEED,
    TRACE_SERIES,
    assert_matches_golden_fleet,
    golden_fleet_job,
    golden_scenario,
    load_fleet_fixture,
)

pytestmark = pytest.mark.exec_smoke


@pytest.fixture(scope="module")
def fixture() -> dict:
    return load_fleet_fixture()


def _scalar_oracle_job(row: int) -> ScenarioJob:
    fault = GOLDEN_FLEET_FAULT if row == GOLDEN_FLEET_FAULT_ROW else None
    return ScenarioJob(
        manager="SPECTR",
        scenario=golden_scenario(),
        seed=derive_seed(GOLDEN_SEED, "fleet", row),
        fault=fault,
        label=f"golden:fleet-oracle:{row}",
    )


def test_serial_fleet_matches_fixture(fixture):
    status, trace, _ = _worker_execute(golden_fleet_job())
    assert status == "ok", trace
    assert_matches_golden_fleet(trace, fixture["fleet"])


def test_every_row_matches_scalar_oracle():
    """Batched == serial: each device row (faulted one included) is
    bit-identical to an independent scalar run with the derived seed."""
    status, fleet, _ = _worker_execute(golden_fleet_job())
    assert status == "ok", fleet
    for index in range(fleet.n_devices):
        status, scalar, _ = _worker_execute(_scalar_oracle_job(index))
        assert status == "ok", scalar
        row = fleet.row(index)
        assert row.gain_sets == scalar.gain_sets, index
        for series in TRACE_SERIES:
            assert np.array_equal(
                getattr(row, series), getattr(scalar, series)
            ), f"row {index} {series} diverges from the scalar oracle"


def test_engine_parallel_and_cache_hit_match_fixture(fixture, exec_cache):
    engine = ExperimentEngine(max_workers=2, cache=exec_cache)
    (trace,) = engine.results([golden_fleet_job()])
    assert_matches_golden_fleet(trace, fixture["fleet"])
    # Second pass is served from disk; the unpickled trace must still
    # match the fixture exactly.
    (cached,) = engine.results([golden_fleet_job()])
    assert all(record.cache_hit for record in engine.last_records)
    assert_matches_golden_fleet(cached, fixture["fleet"])
