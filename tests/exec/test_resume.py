"""Resume semantics: SIGTERM an engine mid-campaign, restart, same bytes.

The satellite regression for the run journal: a real engine process is
killed (SIGTERM, no cleanup handler — the crash case) partway through a
four-manager fault campaign, then restarted against the same journal
and cache.  The union of the two runs must equal an uninterrupted run
byte-for-byte, with the completed prefix served from the journal+cache
instead of being recomputed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro

pytestmark = pytest.mark.exec_smoke

MANAGERS = ("FS", "MM-Perf", "MM-Pow", "SPECTR")

# The driver: one serial engine run over the campaign, with an optional
# per-completion pause so the parent can SIGTERM it mid-run.  Results
# are dumped only on a *completed* run — an interrupted driver leaves
# nothing but the journal and cache behind, exactly like a crash.
_DRIVER = """\
import json, sys, time
from pathlib import Path

from repro.exec.cache import ResultCache
from repro.exec.engine import ExperimentEngine
from repro.exec.job import canonical_encode
from repro.exec.supervision import RunJournal
from repro.resilience.campaign import CampaignConfig, campaign_jobs

state = Path(sys.argv[1])
pause_s = float(sys.argv[2])
config = CampaignConfig(
    managers=("FS", "MM-Perf", "MM-Pow", "SPECTR"),
    sensor_kinds=("stuck",),
    actuator_kinds=(),
    phase_duration_s=0.6,
    fault_start_s=0.2,
    fault_duration_s=0.2,
)
cache = ResultCache(state / "cache")
journal = RunJournal(state / "journal.jsonl", salt=cache.salt)
engine = ExperimentEngine(
    max_workers=1,
    cache=cache,
    journal=journal,
    prime_artifacts=True,
    progress=(lambda record: time.sleep(pause_s)) if pause_s else None,
)
records = engine.run(campaign_jobs(config))
payload = {
    "ok": [r.ok for r in records],
    "modes": [r.mode for r in records],
    "digests": [r.digest for r in records],
    "results": canonical_encode(
        [r.result.to_json_dict() for r in records]
    ),
}
(state / "results.json").write_text(json.dumps(payload), encoding="utf-8")
"""


def _spawn(driver: Path, state: Path, pause_s: float) -> subprocess.Popen:
    src = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, str(driver), str(state), str(pause_s)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _run_to_completion(driver: Path, state: Path) -> dict:
    proc = _spawn(driver, state, pause_s=0.0)
    _, stderr = proc.communicate(timeout=300)
    assert proc.returncode == 0, stderr.decode("utf-8", "replace")
    return json.loads((state / "results.json").read_text(encoding="utf-8"))


def _done_count(journal_path: Path) -> int:
    if not journal_path.exists():
        return 0
    count = 0
    for line in journal_path.read_text(encoding="utf-8").splitlines()[1:]:
        try:
            if json.loads(line).get("status") == "done":
                count += 1
        except json.JSONDecodeError:
            continue  # torn tail line mid-write
    return count


class TestSigtermResume:
    def test_union_of_interrupted_and_resumed_equals_clean_run(
        self, tmp_path
    ):
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER, encoding="utf-8")
        state = tmp_path / "state"
        reference = tmp_path / "reference"
        state.mkdir()
        reference.mkdir()

        # Uninterrupted reference: fresh cache, fresh journal.
        clean = _run_to_completion(driver, reference)
        assert all(clean["ok"])
        assert len(clean["digests"]) == 2 * len(MANAGERS)

        # Interrupted run: SIGTERM once the journal shows progress but
        # before the campaign can finish (the driver pauses after each
        # completion to hold that window open).
        proc = _spawn(driver, state, pause_s=0.5)
        journal_path = state / "journal.jsonl"
        deadline = time.monotonic() + 240
        while _done_count(journal_path) < 1:
            if time.monotonic() > deadline:  # pragma: no cover
                proc.kill()
                pytest.fail("driver made no journal progress in 240 s")
            if proc.poll() is not None:  # pragma: no cover
                pytest.fail(
                    "driver finished before it could be interrupted: "
                    + proc.stderr.read().decode("utf-8", "replace")
                )
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
        assert proc.returncode != 0
        assert not (state / "results.json").exists()
        completed = _done_count(journal_path)
        assert 1 <= completed < 2 * len(MANAGERS)

        # Resume against the same journal + cache; the union must match
        # the clean run exactly, without recomputing the finished prefix.
        resumed = _run_to_completion(driver, state)
        assert all(resumed["ok"])
        assert resumed["digests"] == clean["digests"]
        assert resumed["results"] == clean["results"]
        served = [
            mode
            for mode in resumed["modes"]
            if mode in ("cache", "journal")
        ]
        assert len(served) >= completed
        # Exactly one fresh "done" line per job across both runs: the
        # journal never double-records work the resume skipped.
        assert _done_count(journal_path) == 2 * len(MANAGERS)
