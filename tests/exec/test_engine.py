"""ExperimentEngine: pool execution, retries, fallbacks, caching."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.exec.cache import ResultCache
from repro.exec.engine import EngineError, ExperimentEngine
from repro.exec.job import ScenarioJob

pytestmark = pytest.mark.exec_smoke

ECHO = "repro.exec.engine._echo_runner"
CRASH_ONCE = "repro.exec.engine._crash_once_runner"
ALWAYS_CRASH = "repro.exec.engine._always_crash_runner"
COUNTING = "repro.exec.engine._counting_runner"


def _echo_job(label: str, **params) -> ScenarioJob:
    # The label is excluded from the digest by design, so echo jobs that
    # must stay distinct under a cache carry it as an override too.
    params.setdefault("tag", label)
    return ScenarioJob(
        manager="SPECTR",
        runner=ECHO,
        overrides=tuple(sorted(params.items())),
        label=label,
    )


def _engine(**kwargs) -> ExperimentEngine:
    kwargs.setdefault("prime_artifacts", False)
    return ExperimentEngine(**kwargs)


class TestSerial:
    def test_results_in_input_order(self):
        jobs = [_echo_job(str(i)) for i in range(5)]
        assert _engine().results(jobs) == [
            ("echo", str(i)) for i in range(5)
        ]

    def test_runner_exception_becomes_failure_record(self):
        records = _engine().run([_echo_job("bad", **{"raise": "boom"})])
        assert not records[0].ok
        assert "boom" in records[0].error
        assert records[0].attempts == 1

    def test_results_raises_engine_error_on_failure(self):
        with pytest.raises(EngineError, match="boom"):
            _engine().results([_echo_job("bad", **{"raise": "boom"})])

    def test_unknown_runner_is_a_job_failure_not_a_crash(self):
        job = ScenarioJob(manager="SPECTR", runner="repro.exec.engine.nope")
        record = _engine().run([job])[0]
        assert not record.ok and "not callable" in record.error

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentEngine(max_workers=0)
        with pytest.raises(ValueError):
            ExperimentEngine(max_crash_retries=-1)


class TestParallel:
    def test_pool_results_match_serial(self):
        jobs = [_echo_job(str(i)) for i in range(6)]
        serial = _engine().results(jobs)
        parallel = _engine(max_workers=3).results(jobs)
        assert parallel == serial

    def test_records_report_process_mode(self):
        records = _engine(max_workers=2).run([_echo_job("a")])
        assert records[0].mode == "process"
        assert records[0].attempts == 1

    def test_unpicklable_job_falls_back_to_serial(self):
        @dataclass(frozen=True)
        class Local:  # local class: digestable but not picklable
            x: int = 1

        jobs = [
            _echo_job("pickles"),
            _echo_job("does-not", obj=Local()),
        ]
        records = _engine(max_workers=2).run(jobs)
        assert [r.mode for r in records] == ["process", "serial"]
        assert all(r.ok for r in records)

    def test_worker_crash_is_retried(self, tmp_path):
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        job = ScenarioJob(
            manager="SPECTR",
            runner=CRASH_ONCE,
            overrides=(("sentinel", str(sentinel)),),
        )
        record = _engine(max_workers=2).run([job])[0]
        assert record.ok and record.result == "survived"
        assert record.attempts == 2

    def test_crash_retries_are_bounded(self):
        job = ScenarioJob(manager="SPECTR", runner=ALWAYS_CRASH)
        record = _engine(max_workers=2, max_crash_retries=1).run([job])[0]
        assert not record.ok
        assert "crashed" in record.error
        assert record.attempts == 2  # initial try + one retry


class TestBrokenPoolRedispatch:
    """Jobs in flight at a BrokenProcessPool are re-dispatched exactly
    once per kill budget and never double-cached."""

    @staticmethod
    def _counting_job(label: str, tally, sentinel=None) -> ScenarioJob:
        overrides = [("tag", label), ("tally", str(tally))]
        if sentinel is not None:
            overrides.append(("sentinel", str(sentinel)))
        return ScenarioJob(
            manager="SPECTR",
            runner=COUNTING,
            overrides=tuple(sorted(overrides)),
            label=label,
        )

    def test_crashed_job_dispatched_exactly_once_per_budget(self, tmp_path):
        tally = tmp_path / "tally"
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        job = self._counting_job("c", tally, sentinel)
        record = _engine(max_workers=2, max_crash_retries=3).run([job])[0]
        assert record.ok
        # One crashing dispatch + one clean redispatch — no extras.
        dispatches = tally.read_text(encoding="utf-8").splitlines()
        assert dispatches == ["c", "c"]
        assert record.attempts == 2

    def test_exhausted_budget_stops_redispatching(self, tmp_path):
        tally = tmp_path / "tally"
        job = ScenarioJob(
            manager="SPECTR",
            runner=ALWAYS_CRASH,
            overrides=(("tally", str(tally)),),
        )
        record = _engine(max_workers=2, max_crash_retries=2).run([job])[0]
        assert not record.ok
        assert record.attempts == 3  # initial + exactly two retries
        assert record.kills == 3

    def test_crash_survivor_is_cached_exactly_once(self, tmp_path):
        puts: list[str] = []

        class CountingCache(ResultCache):
            def put(self, digest, value):
                puts.append(digest)
                return super().put(digest, value)

        cache = CountingCache(tmp_path / "c")
        tally = tmp_path / "tally"
        sentinel = tmp_path / "crash-once"
        sentinel.touch()
        jobs = [
            self._counting_job("c", tally, sentinel),
            self._counting_job("x", tally),
            self._counting_job("y", tally),
        ]
        records = _engine(max_workers=2, cache=cache).run(jobs)
        assert all(r.ok for r in records)
        # Every digest cached exactly once, crash-retried or not.
        assert sorted(puts) == sorted(r.digest for r in records)

    def test_crash_retry_run_matches_clean_run_bytes(self, tmp_path):
        from repro.exec.job import canonical_encode

        tally_a = tmp_path / "tally-a"
        tally_b = tmp_path / "tally-b"
        sentinel = tmp_path / "crash-once"

        def run(tally, crash: bool):
            if crash:
                sentinel.touch()
            jobs = [
                self._counting_job("c", tally, sentinel),
                self._counting_job("x", tally),
            ]
            return _engine(max_workers=2, max_crash_retries=2).run(jobs)

        crashed = run(tally_a, crash=True)
        clean = run(tally_b, crash=False)
        # Byte-identical results and outcomes, minus attempts/duration
        # (the tally path is part of the spec, so digests differ by
        # construction; the produced values must not).
        assert canonical_encode(
            [r.result for r in crashed]
        ) == canonical_encode([r.result for r in clean])
        assert [r.ok for r in crashed] == [r.ok for r in clean]
        assert [r.error for r in crashed] == [r.error for r in clean]
        # ... and the retry really happened in the crashed run.
        assert crashed[0].attempts == 2 and clean[0].attempts == 1


class TestCaching:
    def test_second_run_hits_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        engine = _engine(cache=cache)
        jobs = [_echo_job("x"), _echo_job("y")]
        first = engine.results(jobs)
        second = engine.results(jobs)
        assert first == second
        assert all(r.cache_hit for r in engine.last_records)
        assert all(r.mode == "cache" for r in engine.last_records)

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        engine = _engine(cache=cache)
        engine.run([_echo_job("bad", **{"raise": "x"})])
        assert len(cache) == 0

    def test_poisoned_entry_is_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        engine = _engine(cache=cache)
        job = _echo_job("precious")
        engine.results([job])
        digest = engine.last_records[0].digest
        path = cache._payload_path(digest)
        path.write_bytes(b"\x00" * path.stat().st_size)
        assert engine.results([job]) == [("echo", "precious")]
        assert cache.invalidations == 1
        assert not engine.last_records[0].cache_hit

    def test_salt_change_invalidates_implicitly(self, tmp_path):
        engine_v1 = _engine(cache=ResultCache(tmp_path, salt="v1"))
        engine_v1.results([_echo_job("x")])
        engine_v2 = _engine(cache=ResultCache(tmp_path, salt="v2"))
        engine_v2.results([_echo_job("x")])
        assert not engine_v2.last_records[0].cache_hit

    def test_no_cache_engine_always_recomputes(self):
        engine = _engine()
        engine.results([_echo_job("x")])
        assert not engine.last_records[0].cache_hit


class TestIntrospection:
    def test_describe_last(self, tmp_path):
        engine = _engine(cache=ResultCache(tmp_path))
        engine.run([_echo_job("x")])
        engine.run([_echo_job("x")])
        summary = engine.describe_last()
        assert "1 cache hits" in summary and "0 failed" in summary
