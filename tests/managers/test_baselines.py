"""Closed-loop behaviour tests for the MM-Pow / MM-Perf / FS baselines."""

import numpy as np
import pytest

from repro.managers.base import ManagerGoals
from repro.managers.fs import FullSystemMIMO
from repro.managers.mm import mm_perf, mm_pow
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import BackgroundTask, x264


def run_manager(manager_factory, *, background=0, budget=5.0, steps=120, seed=2018):
    soc = ExynosSoC(
        qos_app=x264(),
        background=[BackgroundTask(f"bg{i}") for i in range(background)],
        config=SoCConfig(seed=seed),
    )
    soc.big.set_frequency(1.0)
    soc.little.set_frequency(0.6)
    manager = manager_factory(soc, ManagerGoals(60.0, budget))
    qos, power = [], []
    for _ in range(steps):
        telemetry = soc.step()
        manager.control(telemetry)
        qos.append(telemetry.qos_rate)
        power.append(telemetry.chip_power_w)
    tail = slice(-40, None)
    return float(np.mean(qos[tail])), float(np.mean(power[tail])), manager


class TestManagerGoals:
    def test_validation(self):
        with pytest.raises(ValueError):
            ManagerGoals(0.0, 5.0)
        with pytest.raises(ValueError):
            ManagerGoals(60.0, -1.0)

    def test_goal_updates(self, big_system, little_system):
        soc = ExynosSoC(qos_app=x264())
        manager = mm_pow(
            soc,
            ManagerGoals(60.0, 5.0),
            big_system=big_system,
            little_system=little_system,
        )
        manager.set_power_budget(3.3)
        assert manager.goals.power_budget_w == 3.3
        assert manager.goals.qos_reference == 60.0
        manager.set_qos_reference(30.0)
        assert manager.goals.qos_reference == 30.0


class TestMMPerf:
    def test_meets_qos_when_achievable(self, big_system, little_system):
        qos, power, _ = run_manager(
            lambda soc, g: mm_perf(
                soc, g, big_system=big_system, little_system=little_system
            )
        )
        assert qos == pytest.approx(60.0, rel=0.04)
        assert power < 5.0  # saves power vs the budget

    def test_ignores_tdp_under_disturbance(self, big_system, little_system):
        """MM-Perf 'violates the TDP in all cases, but always achieves
        the highest QoS' in the disturbance scenario."""
        qos, power, _ = run_manager(
            lambda soc, g: mm_perf(
                soc, g, big_system=big_system, little_system=little_system
            ),
            background=4,
        )
        assert power > 5.5  # breaks the 5 W budget
        assert qos > 45.0

    def test_actuation_log_populated(self, big_system, little_system):
        _, _, manager = run_manager(
            lambda soc, g: mm_perf(
                soc, g, big_system=big_system, little_system=little_system
            ),
            steps=10,
        )
        assert len(manager.actuation_log) == 10
        assert manager.actuation_log[0].gain_set == "qos"


class TestMMPow:
    def test_burns_the_power_budget(self, big_system, little_system):
        """MM-Pow consumes its power reference and overshoots QoS."""
        qos, power, _ = run_manager(
            lambda soc, g: mm_pow(
                soc, g, big_system=big_system, little_system=little_system
            )
        )
        assert power > 4.4
        assert qos > 60.0  # exceeds the reference

    def test_respects_lowered_budget(self, big_system, little_system):
        qos, power, _ = run_manager(
            lambda soc, g: mm_pow(
                soc, g, big_system=big_system, little_system=little_system
            ),
            budget=3.3,
        )
        assert power == pytest.approx(3.3, abs=0.4)
        assert qos < 60.0  # QoS sacrificed


class TestFS:
    def test_tracks_chip_power_budget(self, full_system):
        qos, power, _ = run_manager(
            lambda soc, g: FullSystemMIMO(soc, g, system=full_system)
        )
        assert power == pytest.approx(5.0, abs=0.35)
        assert qos > 60.0  # maximizes performance under the cap

    def test_obeys_tdp_under_disturbance(self, full_system):
        qos, power, _ = run_manager(
            lambda soc, g: FullSystemMIMO(soc, g, system=full_system),
            background=4,
        )
        assert power < 5.4

    def test_requires_4x2_model(self, big_system):
        soc = ExynosSoC(qos_app=x264())
        with pytest.raises(ValueError):
            FullSystemMIMO(soc, ManagerGoals(60.0, 5.0), system=big_system)
