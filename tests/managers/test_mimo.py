"""Tests for the per-cluster MIMO wrapper and gain libraries."""

import numpy as np
import pytest

from repro.managers.mimo import (
    POWER_GAINS,
    QOS_GAINS,
    ClusterMIMO,
    build_gain_library,
    cluster_actuator_limits,
)
from repro.platform.soc import ExynosSoC
from repro.workloads import x264


@pytest.fixture()
def soc():
    return ExynosSoC(qos_app=x264())


class TestGainLibrary:
    def test_both_gain_sets_designed(self, big_system):
        library = build_gain_library(big_system)
        assert library.names() == (POWER_GAINS, QOS_GAINS)

    def test_priority_structure(self, big_system):
        library = build_gain_library(big_system)
        qos = library.get(QOS_GAINS)
        power = library.get(POWER_GAINS)
        # QoS gains servo output 0 only; power gains servo output 1 only.
        assert qos.integral_mask.tolist() == [1.0, 0.0]
        assert power.integral_mask.tolist() == [0.0, 1.0]

    def test_priority_ratio_is_30_to_1(self, big_system):
        library = build_gain_library(big_system)
        qos = library.get(QOS_GAINS)
        ratio = qos.Q_output[0, 0] / qos.Q_output[1, 1]
        assert ratio == pytest.approx(30.0)

    def test_power_set_detuned(self, big_system):
        """The power gain set carries extra gain margin (scaled effort)."""
        library = build_gain_library(big_system)
        qos = library.get(QOS_GAINS)
        power = library.get(POWER_GAINS)
        assert np.trace(power.R_effort) > np.trace(qos.R_effort)


class TestActuatorLimits:
    def test_bounds_match_cluster(self, soc):
        limits = cluster_actuator_limits(soc.big)
        assert limits.lower.tolist() == [0.2, 1.0]
        assert limits.upper.tolist() == [2.0, 4.0]

    def test_slew_limits_present(self, soc):
        limits = cluster_actuator_limits(soc.big)
        assert limits.max_step is not None
        assert limits.max_step[0] == pytest.approx(0.3)


class TestClusterMIMO:
    def test_build_and_step(self, soc, big_system):
        mimo = ClusterMIMO.build(soc.big, big_system)
        mimo.set_references(60.0, 4.0)
        frequency, cores = mimo.step(30.0, 2.0)
        assert 0.2 <= frequency <= 2.0
        assert 1 <= cores <= 4

    def test_switch_gains_reports_change(self, soc, big_system):
        mimo = ClusterMIMO.build(soc.big, big_system)
        assert mimo.active_gains == QOS_GAINS
        assert mimo.switch_gains(POWER_GAINS)
        assert mimo.active_gains == POWER_GAINS
        assert not mimo.switch_gains(POWER_GAINS)  # no-op

    def test_hotplug_deadband_prevents_flapping(self, soc, big_system):
        mimo = ClusterMIMO.build(soc.big, big_system)
        soc.big.set_active_cores(3)
        # A command close to the current count must not toggle a core.
        current = soc.big.active_cores
        mimo.controller._z[:] = 0.0  # neutral controller state
        # Directly exercise the deadband logic via step with a command
        # engineered near the boundary: emulate by calling the cluster
        # only when the continuous command crosses the deadband.
        before = soc.big.active_cores
        mimo.step(60.0, 3.0)
        # Whatever the command was, the count changes by at most 1
        # (slew) and only if it moved past the deadband.
        assert abs(soc.big.active_cores - before) <= 1

    def test_tracks_qos_in_closed_loop(self, soc, big_system):
        mimo = ClusterMIMO.build(soc.big, big_system)
        mimo.set_references(60.0, 4.0)
        soc.big.set_frequency(1.0)
        soc.little.set_frequency(0.6)
        tail = []
        for k in range(160):
            telemetry = soc.step()
            mimo.step(telemetry.qos_rate, telemetry.big.power_w)
            if k > 120:
                tail.append(telemetry.qos_rate)
        assert np.mean(tail) == pytest.approx(60.0, rel=0.05)

    def test_power_gains_track_power_in_closed_loop(self, soc, big_system):
        mimo = ClusterMIMO.build(
            soc.big, big_system, initial_gains=POWER_GAINS
        )
        mimo.set_references(60.0, 4.5)
        soc.big.set_frequency(1.0)
        tail = []
        for k in range(140):
            telemetry = soc.step()
            mimo.step(telemetry.qos_rate, telemetry.big.power_w)
            if k > 100:
                tail.append(telemetry.big.power_w)
        assert np.mean(tail) == pytest.approx(4.5, rel=0.1)
