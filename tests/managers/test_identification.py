"""Tests for the system-identification experiments."""

import numpy as np

from repro.control.residuals import whiteness_score


class TestBigCluster:
    def test_model_dimensions(self, big_system):
        assert big_system.model.n_inputs == 2
        assert big_system.model.n_outputs == 2

    def test_meets_design_flow_gate(self, big_system):
        # Figure 16's rule of thumb: R^2 >= 80%.
        assert big_system.identification.meets_design_flow_gate()

    def test_model_is_stable(self, big_system):
        assert big_system.model.is_stable()

    def test_operating_point_in_actuator_range(self, big_system):
        op = big_system.operating_point
        assert 0.2 <= op.u[0] <= 2.0  # frequency
        assert 1.0 <= op.u[1] <= 4.0  # cores

    def test_positive_dc_gains(self, big_system):
        """More frequency must mean more QoS and more power around the
        operating point (normalized coordinates preserve signs)."""
        gain = big_system.model.dc_gain()
        assert gain[0, 0] > 0  # freq -> QoS
        assert gain[1, 0] > 0  # freq -> power
        assert gain[1, 1] > 0  # cores -> power

    def test_validation_residuals_nonempty(self, big_system):
        assert big_system.validation_residuals.shape[0] > 50


class TestLittleCluster:
    def test_dimensions_and_gate(self, little_system):
        assert little_system.model.n_inputs == 2
        assert little_system.model.n_outputs == 2
        assert little_system.identification.meets_design_flow_gate(0.7)

    def test_stable(self, little_system):
        assert little_system.model.is_stable()


class TestFullSystem:
    def test_dimensions(self, full_system):
        assert full_system.model.n_inputs == 4
        assert full_system.model.n_outputs == 2

    def test_higher_order_than_cluster_models(self, big_system, full_system):
        assert full_system.model.order > big_system.model.order

    def test_stable(self, full_system):
        assert full_system.model.is_stable()


class TestPerCoreSystem:
    def test_dimensions(self, percore_system):
        assert percore_system.model.n_inputs == 10
        assert percore_system.model.n_outputs == 10

    def test_scalability_quality_ordering(
        self, big_system, full_system, percore_system
    ):
        """Section 5.2's conclusion: identification quality degrades
        with system size on the same training budget."""
        small = whiteness_score(big_system.validation_residuals)
        large = whiteness_score(percore_system.validation_residuals)
        assert small > large

    def test_residual_structure_worse_than_small_system(
        self, big_system, percore_system
    ):
        """The 10x10's residuals carry more unmodelled structure: its
        worst autocorrelation excursion exceeds the 2x2's."""
        from repro.control.residuals import analyze_residuals

        small = max(
            a.max_excursion
            for a in analyze_residuals(big_system.validation_residuals)
        )
        large = max(
            a.max_excursion
            for a in analyze_residuals(percore_system.validation_residuals)
        )
        assert large > small


class TestDeterminism:
    def test_identification_reproducible(self, big_system):
        from repro.managers.identification import identify_big_cluster

        again = identify_big_cluster()
        assert np.allclose(
            again.identification.model.coeffs,
            big_system.identification.model.coeffs,
        )
