"""Tests for the SPECTR manager: supervisor wiring and autonomy."""

import numpy as np
import pytest

from repro.managers.base import ManagerGoals
from repro.managers.mimo import POWER_GAINS, QOS_GAINS
from repro.managers.spectr import SPECTRManager
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import BackgroundTask, x264


def make_manager(soc, big_system, little_system, verified, **kwargs):
    return SPECTRManager(
        soc,
        ManagerGoals(60.0, 5.0),
        big_system=big_system,
        little_system=little_system,
        verified_supervisor=verified,
        **kwargs,
    )


def drive(soc, manager, steps):
    qos, power = [], []
    for _ in range(steps):
        telemetry = soc.step()
        manager.control(telemetry)
        qos.append(telemetry.qos_rate)
        power.append(telemetry.chip_power_w)
    return np.asarray(qos), np.asarray(power)


@pytest.fixture()
def spectr_setup(big_system, little_system, verified_supervisor):
    def build(background=0, seed=2018):
        soc = ExynosSoC(
            qos_app=x264(),
            background=[BackgroundTask(f"bg{i}") for i in range(background)],
            config=SoCConfig(seed=seed),
        )
        soc.big.set_frequency(1.0)
        soc.little.set_frequency(0.6)
        manager = make_manager(
            soc, big_system, little_system, verified_supervisor
        )
        return soc, manager

    return build


class TestConstruction:
    def test_starts_with_qos_gains(self, spectr_setup):
        _, manager = spectr_setup()
        assert manager.big_mimo.active_gains == QOS_GAINS
        assert manager.little_mimo.active_gains == QOS_GAINS

    def test_supervisor_period_validated(
        self, big_system, little_system, verified_supervisor
    ):
        soc = ExynosSoC(qos_app=x264())
        with pytest.raises(ValueError):
            make_manager(
                soc,
                big_system,
                little_system,
                verified_supervisor,
                supervisor_period_epochs=0,
            )

    def test_initial_budget_split(self, spectr_setup):
        _, manager = spectr_setup()
        assert manager.big_power_ref_w == pytest.approx(0.8 * 5.0)
        assert manager.big_power_ref_w + manager.little_power_ref_w <= 5.0


class TestSupervisorInvocation:
    def test_supervisor_runs_every_other_tick(self, spectr_setup):
        soc, manager = spectr_setup()
        drive(soc, manager, 10)
        assert manager.engine.invocations == 5

    def test_engine_trace_recorded(self, spectr_setup):
        soc, manager = spectr_setup()
        drive(soc, manager, 10)
        assert len(manager.engine.trace) == 5
        assert all(t.state for t in manager.engine.trace)


class TestSafePhase:
    def test_meets_qos_and_saves_power(self, spectr_setup):
        soc, manager = spectr_setup()
        qos, power = drive(soc, manager, 120)
        assert np.mean(qos[-40:]) == pytest.approx(60.0, rel=0.04)
        assert np.mean(power[-40:]) < 4.6  # below the 5 W budget

    def test_stays_in_qos_mode(self, spectr_setup):
        soc, manager = spectr_setup()
        drive(soc, manager, 120)
        assert manager.big_mimo.active_gains == QOS_GAINS


class TestEmergencyResponse:
    def test_switches_to_power_gains_on_budget_drop(self, spectr_setup):
        soc, manager = spectr_setup()
        drive(soc, manager, 100)
        manager.set_power_budget(3.3)
        drive(soc, manager, 40)
        assert manager.big_mimo.active_gains == POWER_GAINS
        assert manager.gain_log.switch_count >= 1

    def test_power_capped_after_emergency(self, spectr_setup):
        soc, manager = spectr_setup()
        drive(soc, manager, 100)
        manager.set_power_budget(3.3)
        _, power = drive(soc, manager, 120)
        assert np.mean(power[-40:]) < 3.5

    def test_returns_to_qos_mode_when_budget_restored(self, spectr_setup):
        soc, manager = spectr_setup()
        drive(soc, manager, 100)
        manager.set_power_budget(3.3)
        drive(soc, manager, 100)
        manager.set_power_budget(5.0)
        drive(soc, manager, 30)
        switches = [g for _, _, g in manager.gain_log.entries]
        assert QOS_GAINS in switches  # switched back at least once


class TestDisturbance:
    def test_obeys_tdp_with_background_load(self, spectr_setup):
        soc, manager = spectr_setup(background=4)
        _, power = drive(soc, manager, 200)
        assert np.mean(power[-60:]) < 5.2

    def test_budget_references_never_exceed_tdp(self, spectr_setup):
        soc, manager = spectr_setup(background=4)
        drive(soc, manager, 200)
        for record in manager.actuation_log:
            total = record.big_power_ref_w + record.little_power_ref_w
            assert total <= manager.goals.power_budget_w + 1e-9


class TestFormalGuaranteesAtRuntime:
    def test_engine_state_always_valid(self, spectr_setup):
        soc, manager = spectr_setup(background=4)
        drive(soc, manager, 150)
        assert manager.engine.state in manager.engine.automaton.states

    def test_executed_actions_were_enabled(self, spectr_setup):
        """Every action the runtime executed appears as a transition of
        the verified supervisor automaton from the pre-state."""
        soc, manager = spectr_setup()
        drive(soc, manager, 100)
        manager.set_power_budget(3.3)
        drive(soc, manager, 100)
        automaton = manager.engine.automaton
        # replay the trace
        for entry in manager.engine.trace:
            for action in entry.executed:
                assert automaton.alphabet[action].controllable
