"""Tests for the nested-SISO baseline (Table 1, Row C)."""

import numpy as np
import pytest

from repro.managers.base import ManagerGoals
from repro.managers.siso import NestedSISOManager
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import BackgroundTask, x264


def run(bg=0, budget=5.0, steps=160, seed=2018):
    soc = ExynosSoC(
        qos_app=x264(),
        background=[BackgroundTask(f"bg{i}") for i in range(bg)],
        config=SoCConfig(seed=seed),
    )
    soc.big.set_frequency(1.0)
    soc.little.set_frequency(0.6)
    manager = NestedSISOManager(soc, ManagerGoals(60.0, budget))
    qos, power = [], []
    for _ in range(steps):
        telemetry = soc.step()
        manager.control(telemetry)
        qos.append(telemetry.qos_rate)
        power.append(telemetry.chip_power_w)
    tail = slice(-50, None)
    return (
        float(np.mean(qos[tail])),
        float(np.mean(power[tail])),
        float(np.std(qos[tail])),
        manager,
    )


class TestNestedSISO:
    def test_tracks_qos_when_power_allows(self):
        qos, power, _, _ = run()
        assert qos == pytest.approx(60.0, rel=0.06)
        assert power < 5.0

    def test_outer_loop_caps_power(self):
        qos, power, _, manager = run(budget=3.3)
        assert power == pytest.approx(3.3, abs=0.45)
        assert qos < 60.0  # ceiling binds
        assert manager.frequency_ceiling < 1.6

    def test_caps_power_under_background_load(self):
        _, power, _, _ = run(bg=4)
        assert power == pytest.approx(5.0, abs=0.5)

    def test_cannot_use_the_core_knob(self):
        """A SISO loop has one actuator: core counts never move."""
        soc = ExynosSoC(qos_app=x264())
        manager = NestedSISOManager(soc, ManagerGoals(60.0, 5.0))
        cores_before = soc.big.active_cores
        for _ in range(80):
            manager.control(soc.step())
        assert soc.big.active_cores == cores_before

    def test_no_autonomy_no_priorities(self):
        """Row C of Table 1: the nested loops have no notion of
        priority objectives — there is nothing to switch when goals
        change (contrast with SPECTR's gain scheduling)."""
        _, _, _, manager = run(steps=30)
        gain_sets = {r.gain_set for r in manager.actuation_log}
        assert gain_sets == {"siso"}

    def test_loops_fight_when_goals_conflict(self):
        """With the QoS reference unreachable under the power budget,
        the inner loop pins the frequency to the outer loop's ceiling —
        the two loops are coupled only through that clamp."""
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=3))
        soc.big.set_frequency(1.0)
        manager = NestedSISOManager(soc, ManagerGoals(80.0, 3.0))
        for _ in range(200):
            manager.control(soc.step())
        assert soc.big.frequency_ghz == pytest.approx(
            manager.frequency_ceiling, abs=0.11
        )

    def test_actuation_log(self):
        _, _, _, manager = run(steps=12)
        assert len(manager.actuation_log) == 12
        assert manager.actuation_log[0].gain_set == "siso"
