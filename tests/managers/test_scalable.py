"""Tests for the hierarchical N-cluster SPECTR manager."""

import numpy as np
import pytest

from repro.managers.base import ManagerGoals
from repro.managers.mimo import POWER_GAINS, QOS_GAINS
from repro.managers.scalable import ScalableSPECTR
from repro.platform.manycore import ManyCoreSoC
from repro.platform.soc import SoCConfig
from repro.workloads import BackgroundTask, x264


@pytest.fixture()
def builder(big_system, little_system):
    def build(n_little=3, bg=0, budget=6.0, seed=1):
        soc = ManyCoreSoC(
            n_little=n_little,
            qos_app=x264(),
            background=[BackgroundTask(f"bg{i}") for i in range(bg)],
            config=SoCConfig(seed=seed),
        )
        soc.clusters[0].set_frequency(1.0)
        manager = ScalableSPECTR(
            soc,
            ManagerGoals(60.0, budget),
            host_system=big_system,
            little_system=little_system,
        )
        return soc, manager

    return build


def drive(soc, manager, steps):
    qos, power = [], []
    for _ in range(steps):
        telemetry = soc.step()
        manager.control(telemetry)
        qos.append(telemetry.qos_rate)
        power.append(telemetry.chip_power_w)
    return np.asarray(qos), np.asarray(power)


class TestConstruction:
    def test_one_mimo_per_cluster(self, builder):
        soc, manager = builder(n_little=5)
        assert len(manager.mimos) == 6
        assert manager.name == "SPECTR[6]"

    def test_budget_split_within_tdp(self, builder):
        _, manager = builder(n_little=3, budget=6.0)
        assert sum(manager.power_refs) <= 6.0 + 1e-9


class TestClosedLoop:
    def test_meets_qos_when_unloaded(self, builder):
        soc, manager = builder()
        qos, power = drive(soc, manager, 160)
        assert np.mean(qos[-50:]) == pytest.approx(60.0, rel=0.05)
        assert np.mean(power[-50:]) < 6.0

    def test_caps_power_under_heavy_background(self, builder):
        soc, manager = builder(bg=8)
        qos, power = drive(soc, manager, 220)
        assert np.mean(power[-60:]) < 6.0 * 1.05
        assert manager.mimos[0].active_gains == POWER_GAINS

    def test_eight_clusters(self, builder):
        soc, manager = builder(n_little=7, bg=12, budget=7.0)
        _, power = drive(soc, manager, 220)
        assert np.mean(power[-60:]) < 7.0 * 1.05

    def test_emergency_response(self, builder):
        soc, manager = builder()
        drive(soc, manager, 120)
        assert manager.mimos[0].active_gains == QOS_GAINS
        manager.set_power_budget(3.5)
        _, power = drive(soc, manager, 140)
        assert manager.mimos[0].active_gains == POWER_GAINS
        assert np.mean(power[-40:]) < 3.8

    def test_gain_switch_applies_to_every_cluster(self, builder):
        soc, manager = builder(n_little=3)
        drive(soc, manager, 100)
        manager.set_power_budget(3.0)
        drive(soc, manager, 60)
        for mimo in manager.mimos:
            assert mimo.active_gains == POWER_GAINS
        switched = {name for _, name, _ in manager.gain_log.entries}
        assert len(switched) == 4  # all clusters logged
