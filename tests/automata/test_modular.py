"""Tests for modular supervisor synthesis (Section 3.1)."""

import pytest

from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.modular import _languages_equal, synthesize_modular
from repro.core.plant_model import case_study_plant
from repro.core.specification import budget_lock_spec, three_band_spec

SIGMA = Alphabet.of(
    [
        controllable("a"),
        controllable("b"),
        uncontrollable("u"),
    ]
)


def loop_plant():
    return automaton_from_table(
        "P",
        SIGMA,
        transitions=[
            ("S", "a", "S"),
            ("S", "b", "S"),
            ("S", "u", "S"),
        ],
        initial="S",
        marked=["S"],
    )


def cap_spec(event, count, name):
    """At most ``count`` occurrences of ``event`` (forbidden after)."""
    sigma = Alphabet.of([SIGMA[event]])
    transitions = []
    for k in range(count + 1):
        transitions.append((f"N{k}", event, f"N{k + 1}"))
    return automaton_from_table(
        name,
        sigma,
        transitions=transitions,
        initial="N0",
        marked=[f"N{k}" for k in range(count + 1)],
        forbidden=[f"N{count + 1}"],
    )


class TestLanguageEquality:
    def test_identical_automata_equal(self):
        assert _languages_equal(loop_plant(), loop_plant())

    def test_relabelled_automata_equal(self):
        plant = loop_plant()
        assert _languages_equal(plant, plant.relabel(lambda s: s.name + "_x"))

    def test_different_languages_detected(self):
        other = automaton_from_table(
            "Q",
            SIGMA,
            transitions=[("S", "a", "S"), ("S", "u", "S")],  # no 'b'
            initial="S",
            marked=["S"],
        )
        assert not _languages_equal(loop_plant(), other)

    def test_deep_difference_detected(self):
        a = automaton_from_table(
            "A",
            SIGMA,
            transitions=[("S", "a", "T"), ("T", "b", "S")],
            initial="S",
            marked=["S"],
        )
        b = automaton_from_table(
            "B",
            SIGMA,
            transitions=[("S", "a", "T"), ("T", "a", "S")],
            initial="S",
            marked=["S"],
        )
        assert not _languages_equal(a, b)


class TestModularSynthesis:
    def test_independent_specs_form_valid_decomposition(self):
        result = synthesize_modular(
            loop_plant(),
            [cap_spec("a", 2, "capA"), cap_spec("b", 1, "capB")],
        )
        assert result.nonconflicting
        assert result.equivalent_to_monolithic
        assert result.is_valid_decomposition

    def test_composite_enforces_both_caps(self):
        result = synthesize_modular(
            loop_plant(),
            [cap_spec("a", 1, "capA"), cap_spec("b", 1, "capB")],
        )
        composite = result.composite
        assert composite.accepts(["a", "b"])
        state = composite.initial
        state = composite.step(state, "a")
        assert composite.step(state, "a") is None  # second 'a' disabled
        assert composite.step(state, "b") is not None

    def test_needs_at_least_one_spec(self):
        with pytest.raises(ValueError):
            synthesize_modular(loop_plant(), [])

    def test_case_study_decomposition_valid(self):
        """The Exynos case study's two specifications decompose validly:
        the composite of the per-spec supervisors equals the monolithic
        supervisor."""
        plant = case_study_plant()
        result = synthesize_modular(
            plant, [three_band_spec(), budget_lock_spec()]
        )
        assert result.is_valid_decomposition
        assert len(result.composite) == len(result.monolithic.supervisor)

    def test_modular_pieces_smaller_or_equal_than_problemwide(self):
        plant = case_study_plant()
        result = synthesize_modular(
            plant, [three_band_spec(), budget_lock_spec()]
        )
        # Each per-spec synthesis works against a smaller specification
        # automaton than the composed one.
        composed_spec_size = 4  # ThreeBand(4) x BudgetLock(2) reachable
        for per_spec in result.supervisors:
            assert len(per_spec.supervisor) <= 36  # bounded by plant
        assert result.summary()
