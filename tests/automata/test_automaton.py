"""Tests for the core automaton structure."""

import pytest

from repro.automata.automaton import (
    Automaton,
    AutomatonError,
    State,
    automaton_from_table,
)
from repro.automata.events import Alphabet, controllable, uncontrollable

AB = Alphabet.of([controllable("a"), uncontrollable("b")])


def simple_automaton() -> Automaton:
    """S0 --a--> S1 --b--> S0, S1 marked."""
    return automaton_from_table(
        "simple",
        AB,
        transitions=[("S0", "a", "S1"), ("S1", "b", "S0")],
        initial="S0",
        marked=["S1"],
    )


class TestConstruction:
    def test_from_table(self):
        automaton = simple_automaton()
        assert len(automaton) == 2
        assert automaton.initial == State("S0")
        assert automaton.is_marked("S1")

    def test_add_state_flags(self):
        automaton = Automaton("t", AB)
        automaton.add_state("X", marked=True, forbidden=True, initial=True)
        assert automaton.is_marked("X")
        assert automaton.is_forbidden("X")
        assert automaton.initial == State("X")

    def test_transitions_create_states(self):
        automaton = Automaton("t", AB)
        automaton.add_transition("P", "a", "Q")
        assert automaton.states == {State("P"), State("Q")}

    def test_determinism_enforced(self):
        automaton = Automaton("t", AB)
        automaton.add_transition("P", "a", "Q")
        with pytest.raises(AutomatonError):
            automaton.add_transition("P", "a", "R")

    def test_duplicate_transition_tolerated(self):
        automaton = Automaton("t", AB)
        automaton.add_transition("P", "a", "Q")
        automaton.add_transition("P", "a", "Q")
        assert len(automaton.transitions) == 1

    def test_unknown_event_rejected(self):
        automaton = Automaton("t", AB)
        with pytest.raises(AutomatonError):
            automaton.add_transition("P", "zzz", "Q")

    def test_event_object_not_in_alphabet_rejected(self):
        automaton = Automaton("t", AB)
        with pytest.raises(AutomatonError):
            automaton.add_transition("P", controllable("other"), "Q")

    def test_mark_unknown_state_rejected(self):
        automaton = Automaton("t", AB)
        with pytest.raises(AutomatonError):
            automaton.mark("nope")

    def test_initial_required_for_queries(self):
        automaton = Automaton("t", AB)
        with pytest.raises(AutomatonError):
            _ = automaton.initial
        assert not automaton.has_initial


class TestQueries:
    def test_step(self):
        automaton = simple_automaton()
        assert automaton.step("S0", "a") == State("S1")
        assert automaton.step("S0", "b") is None

    def test_enabled_events(self):
        automaton = simple_automaton()
        assert {e.name for e in automaton.enabled_events("S0")} == {"a"}
        assert {e.name for e in automaton.enabled_events("S1")} == {"b"}

    def test_successors_predecessors(self):
        automaton = simple_automaton()
        assert automaton.successors("S0") == {State("S1")}
        assert automaton.predecessors("S0") == {State("S1")}

    def test_accepts(self):
        automaton = simple_automaton()
        assert automaton.accepts(["a"])
        assert not automaton.accepts(["a", "b"])  # back at unmarked S0
        assert automaton.accepts(["a", "b", "a"])
        assert not automaton.accepts(["b"])  # disabled at S0

    def test_run_trajectory(self):
        automaton = simple_automaton()
        trajectory = automaton.run(["a", "b"])
        assert [s.name for s in trajectory] == ["S0", "S1", "S0"]

    def test_run_on_disabled_event_raises(self):
        automaton = simple_automaton()
        with pytest.raises(AutomatonError):
            automaton.run(["b"])


class TestStructuralOps:
    def test_copy_is_deep_for_structure(self):
        automaton = simple_automaton()
        clone = automaton.copy("clone")
        clone.add_transition("S1", "a", "S2")
        assert len(automaton) == 2
        assert len(clone) == 3
        assert clone.name == "clone"

    def test_copy_preserves_flags(self):
        automaton = simple_automaton()
        automaton.forbid("S0")
        clone = automaton.copy()
        assert clone.is_forbidden("S0")
        assert clone.is_marked("S1")
        assert clone.initial == automaton.initial

    def test_restricted_to_drops_transitions(self):
        automaton = simple_automaton()
        sub = automaton.restricted_to([State("S0")])
        assert len(sub) == 1
        assert len(sub.transitions) == 0
        assert sub.has_initial

    def test_restricted_to_without_initial(self):
        automaton = simple_automaton()
        sub = automaton.restricted_to([State("S1")])
        assert not sub.has_initial

    def test_relabel(self):
        automaton = simple_automaton()
        renamed = automaton.relabel({State("S0"): "A", State("S1"): "B"})
        assert renamed.initial == State("A")
        assert renamed.is_marked("B")
        assert renamed.step("A", "a") == State("B")

    def test_relabel_with_function(self):
        automaton = simple_automaton()
        renamed = automaton.relabel(lambda s: s.name.lower())
        assert renamed.initial == State("s0")

    def test_relabel_must_be_injective(self):
        automaton = simple_automaton()
        with pytest.raises(AutomatonError):
            automaton.relabel(lambda s: "same")

    def test_state_compose(self):
        assert State("A").compose(State("B")) == State("A.B")


class TestDot:
    def test_to_dot_contains_states_and_edges(self):
        automaton = simple_automaton()
        automaton.forbid("S0")
        dot = automaton.to_dot()
        assert '"S0"' in dot and '"S1"' in dot
        assert 'label="a"' in dot
        assert "peripheries=2" in dot  # marked state
        assert "color=red" in dot  # forbidden state
        assert "style=dashed" in dot  # uncontrollable edge
        assert "__init" in dot
