"""Tests for the DES event alphabet primitives."""

import pytest

from repro.automata.events import (
    Alphabet,
    AlphabetError,
    Event,
    controllable,
    uncontrollable,
)


class TestEvent:
    def test_controllable_constructor(self):
        event = controllable("go")
        assert event.name == "go"
        assert event.controllable

    def test_uncontrollable_constructor(self):
        event = uncontrollable("fault")
        assert not event.controllable

    def test_default_is_observable(self):
        assert Event("x").observable

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Event("")

    def test_equality_by_value(self):
        assert controllable("a") == controllable("a")
        assert controllable("a") != uncontrollable("a")

    def test_hashable(self):
        assert len({controllable("a"), controllable("a")}) == 1

    def test_ordering_by_name(self):
        assert sorted([Event("b"), Event("a")])[0].name == "a"

    def test_str_shows_controllability(self):
        assert "[c]" in str(controllable("a"))
        assert "[u]" in str(uncontrollable("a"))


class TestAlphabet:
    def test_of_builds_from_iterable(self):
        alphabet = Alphabet.of([controllable("a"), uncontrollable("b")])
        assert len(alphabet) == 2

    def test_contains_event_and_name(self):
        alphabet = Alphabet.of([controllable("a")])
        assert "a" in alphabet
        assert controllable("a") in alphabet
        assert uncontrollable("a") not in alphabet
        assert 42 not in alphabet

    def test_duplicate_same_attributes_ok(self):
        alphabet = Alphabet.of([controllable("a"), controllable("a")])
        assert len(alphabet) == 1

    def test_conflicting_attributes_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet.of([controllable("a"), uncontrollable("a")])

    def test_getitem(self):
        alphabet = Alphabet.of([uncontrollable("fault")])
        assert alphabet["fault"].controllable is False

    def test_get_missing_returns_none(self):
        assert Alphabet().get("nope") is None

    def test_union_merges(self):
        a = Alphabet.of([controllable("a")])
        b = Alphabet.of([controllable("b")])
        union = a.union(b)
        assert union.names() == {"a", "b"}
        # union does not mutate inputs
        assert len(a) == 1 and len(b) == 1

    def test_union_conflict_rejected(self):
        a = Alphabet.of([controllable("a")])
        b = Alphabet.of([uncontrollable("a")])
        with pytest.raises(AlphabetError):
            a.union(b)

    def test_intersection(self):
        a = Alphabet.of([controllable("a"), controllable("b")])
        b = Alphabet.of([controllable("b"), controllable("c")])
        assert a.intersection(b).names() == {"b"}

    def test_controllable_partition(self):
        alphabet = Alphabet.of(
            [controllable("a"), uncontrollable("b"), controllable("c")]
        )
        assert {e.name for e in alphabet.controllable_events} == {"a", "c"}
        assert {e.name for e in alphabet.uncontrollable_events} == {"b"}

    def test_iteration_is_sorted(self):
        alphabet = Alphabet.of([Event("z"), Event("a"), Event("m")])
        assert [e.name for e in alphabet] == ["a", "m", "z"]
