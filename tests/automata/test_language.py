"""Tests for language-level operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.language import (
    controllability_witness,
    enumerate_words,
    is_prefix_closed_witnessed,
    is_sublanguage,
    language_size,
    languages_equal,
)
from repro.automata.synthesis import synthesize_supervisor

from .test_properties import automata  # reuse the hypothesis strategy

SIGMA = Alphabet.of(
    [controllable("a"), controllable("b"), uncontrollable("u")]
)


def ab_loop():
    return automaton_from_table(
        "ab",
        SIGMA,
        transitions=[("S", "a", "T"), ("T", "b", "S")],
        initial="S",
        marked=["S"],
    )


class TestEnumeration:
    def test_words_in_shortlex_order(self):
        words = list(enumerate_words(ab_loop(), 4))
        assert words[0] == ()
        assert words == sorted(words, key=lambda w: (len(w), w))

    def test_word_contents(self):
        words = set(enumerate_words(ab_loop(), 3))
        assert ("a",) in words
        assert ("a", "b") in words
        assert ("a", "b", "a") in words
        assert ("b",) not in words

    def test_marked_only(self):
        words = set(enumerate_words(ab_loop(), 4, marked_only=True))
        assert () in words
        assert ("a",) not in words
        assert ("a", "b") in words

    def test_language_size(self):
        # lengths 0..4: (), a, ab, aba, abab -> 5 words
        assert language_size(ab_loop(), 4) == 5

    def test_no_initial_is_empty(self):
        from repro.automata.automaton import Automaton

        empty = Automaton("e", SIGMA)
        assert list(enumerate_words(empty, 3)) == []

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_words(ab_loop(), -1))


class TestInclusion:
    def test_self_inclusion(self):
        ok, witness = is_sublanguage(ab_loop(), ab_loop())
        assert ok and witness is None

    def test_strict_subset(self):
        smaller = automaton_from_table(
            "small",
            SIGMA,
            transitions=[("S", "a", "T")],
            initial="S",
            marked=["T"],
        )
        ok, _ = is_sublanguage(smaller, ab_loop())
        assert ok
        ok, witness = is_sublanguage(ab_loop(), smaller)
        assert not ok
        assert witness == ("a", "b")  # shortest word not in smaller

    def test_languages_equal_ignores_state_names(self):
        renamed = ab_loop().relabel(lambda s: s.name * 2)
        assert languages_equal(ab_loop(), renamed)

    def test_prefix_closure(self):
        assert is_prefix_closed_witnessed(ab_loop())


class TestControllabilityOnLanguages:
    def test_witness_found(self):
        plant = automaton_from_table(
            "p",
            SIGMA,
            transitions=[("P", "a", "Q"), ("Q", "u", "P")],
            initial="P",
            marked=["P"],
        )
        bad_supervisor = automaton_from_table(
            "s",
            SIGMA,
            transitions=[("S", "a", "T")],  # disables u after a
            initial="S",
            marked=["S", "T"],
        )
        witness = controllability_witness(plant, bad_supervisor)
        assert witness == ("a", "u")

    def test_synthesized_supervisor_has_no_witness(self):
        plant = automaton_from_table(
            "p",
            SIGMA,
            transitions=[
                ("P", "a", "Q"),
                ("Q", "u", "Bad"),
                ("P", "b", "P"),
            ],
            initial="P",
            marked=["P"],
        )
        spec = automaton_from_table(
            "never-u",
            Alphabet.of([SIGMA["u"]]),
            transitions=[("Ok", "u", "No")],
            initial="Ok",
            marked=["Ok"],
            forbidden=["No"],
        )
        result = synthesize_supervisor(plant, spec)
        assert controllability_witness(plant, result.supervisor) is None


class TestLanguageProperties:
    @given(automata())
    @settings(max_examples=40, deadline=None)
    def test_enumerated_words_are_prefix_closed(self, automaton):
        assert is_prefix_closed_witnessed(automaton, max_length=4)

    @given(automata(name="P"), automata(name="S"))
    @settings(max_examples=30, deadline=None)
    def test_supervisor_language_included_in_plant(self, plant, spec):
        result = synthesize_supervisor(plant, spec)
        if result.is_empty:
            return
        ok, witness = is_sublanguage(result.supervisor, plant)
        assert ok, witness

    @given(automata(name="P"), automata(name="S"))
    @settings(max_examples=30, deadline=None)
    def test_supervisor_language_controllable(self, plant, spec):
        result = synthesize_supervisor(plant, spec)
        if result.is_empty:
            return
        assert controllability_witness(plant, result.supervisor) is None
