"""Tests for the bitset reachability kernel (`repro.automata.symbolic`).

The kernel's contract is exact agreement with the explicit-state
toolkit: same reachable/coaccessible sets, same verification verdicts,
same (byte-identical) reports, and shortest counterexample traces that
replay on the original automaton.  Randomized automata exercise the
corners hand-written models miss: unreachable junk, empty alphabets,
missing initial states, self-loops, and uncontrollable escapes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.automaton import Automaton, automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.language import languages_equal
from repro.automata.operations import (
    accessible_states,
    coaccessible_states,
    synchronous_composition,
)
from repro.automata.serialization import canonical_digest
from repro.automata.symbolic import (
    backward_reachable,
    controllability_product,
    encode_automaton,
    forward_reachable,
    forward_search,
    nearest_state,
    restrict_states,
    synchronous_product,
    witness_trace,
)
from repro.automata.verification import (
    explicit_check_controllability,
    explicit_verify_supervisor,
    verify_supervisor,
)

EVENTS = [
    controllable("c1"),
    controllable("c2"),
    uncontrollable("u1"),
    uncontrollable("u2"),
]
SIGMA = Alphabet.of(EVENTS)
STATE_NAMES = ["Q0", "Q1", "Q2", "Q3", "Q4", "Q5"]


@st.composite
def automata(draw, name="rand", max_states=6, with_forbidden=False):
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    states = STATE_NAMES[:n_states]
    automaton = Automaton(name, SIGMA)
    for state in states:
        automaton.add_state(state)
    automaton.set_initial(states[0])
    n_transitions = draw(st.integers(min_value=0, max_value=14))
    for _ in range(n_transitions):
        source = draw(st.sampled_from(states))
        event = draw(st.sampled_from(EVENTS))
        target = draw(st.sampled_from(states))
        if automaton.step(source, event) is None:
            automaton.add_transition(source, event, target)
    for state in states:
        if draw(st.booleans()):
            automaton.mark(state)
        if with_forbidden and draw(st.integers(0, 9)) == 0:
            automaton.forbid(state)
    return automaton


def _mask_names(enc, mask):
    return {enc.state_label(int(i)) for i in np.flatnonzero(mask)}


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
class TestEncoding:
    def test_indices_are_sorted_name_order(self):
        automaton = automaton_from_table(
            "M",
            SIGMA,
            [("B", "c1", "A"), ("A", "u1", "B")],
            initial="B",
            marked=["A"],
        )
        enc = encode_automaton(automaton)
        assert enc.state_names == ("A", "B")
        assert enc.initial == 1
        assert enc.marked.tolist() == [True, False]
        assert enc.event_names == tuple(e.name for e in SIGMA)

    def test_transition_arrays_sorted_by_source_then_target(self):
        automaton = automaton_from_table(
            "M",
            SIGMA,
            [
                ("C", "c1", "A"),
                ("A", "c1", "C"),
                ("B", "c1", "B"),
            ],
            initial="A",
        )
        enc = encode_automaton(automaton)
        e = enc.event_index("c1")
        assert enc.src[e].tolist() == [0, 1, 2]
        assert enc.dst[e].tolist() == [2, 1, 0]

    def test_enabled_matrix(self):
        automaton = automaton_from_table(
            "M",
            SIGMA,
            [("A", "c1", "B"), ("B", "u2", "B")],
            initial="A",
        )
        enc = encode_automaton(automaton)
        assert enc.event_enabled("c1").tolist() == [True, False]
        assert enc.event_enabled("u2").tolist() == [False, True]
        assert enc.event_enabled("nope").tolist() == [False, False]

    def test_no_initial_state(self):
        automaton = Automaton("M", SIGMA)
        automaton.add_state("A")
        enc = encode_automaton(automaton)
        assert enc.initial == -1
        assert not forward_reachable(enc).any()

    def test_controllable_flags_follow_alphabet(self):
        enc = encode_automaton(
            automaton_from_table("M", SIGMA, [], initial="A")
        )
        flags = dict(zip(enc.event_names, enc.event_controllable.tolist()))
        assert flags == {"c1": True, "c2": True, "u1": False, "u2": False}


# ----------------------------------------------------------------------
# Reachability vs the explicit operators
# ----------------------------------------------------------------------
class TestReachability:
    @settings(max_examples=120, deadline=None)
    @given(automata())
    def test_forward_matches_accessible_states(self, automaton):
        enc = encode_automaton(automaton)
        symbolic = _mask_names(enc, forward_reachable(enc))
        explicit = {s.name for s in accessible_states(automaton)}
        assert symbolic == explicit

    @settings(max_examples=120, deadline=None)
    @given(automata())
    def test_backward_matches_coaccessible_states(self, automaton):
        enc = encode_automaton(automaton)
        symbolic = _mask_names(enc, backward_reachable(enc))
        explicit = {s.name for s in coaccessible_states(automaton)}
        assert symbolic == explicit

    def test_event_mask_restricts_walk(self):
        automaton = automaton_from_table(
            "M",
            SIGMA,
            [("A", "c1", "B"), ("B", "u1", "C")],
            initial="A",
        )
        enc = encode_automaton(automaton)
        only_controllable = enc.event_controllable.copy()
        reach = forward_reachable(enc, event_mask=only_controllable)
        assert _mask_names(enc, reach) == {"A", "B"}

    def test_restrict_states_drops_transitions_and_status(self):
        automaton = automaton_from_table(
            "M",
            SIGMA,
            [("A", "c1", "B"), ("B", "c2", "C")],
            initial="A",
            marked=["C"],
        )
        enc = encode_automaton(automaton)
        keep = np.array([True, True, False])
        sub = restrict_states(enc, keep)
        assert _mask_names(sub, forward_reachable(sub)) == {"A", "B"}
        assert not sub.marked.any()
        assert sub.n_states == enc.n_states  # indices preserved


# ----------------------------------------------------------------------
# Products
# ----------------------------------------------------------------------
class TestProducts:
    @settings(max_examples=60, deadline=None)
    @given(automata(name="L"), automata(name="R"))
    def test_product_reachable_matches_explicit_composition(self, left, right):
        composed = synchronous_composition(left, right)
        explicit = {s.name for s in accessible_states(composed)}
        pair = synchronous_product(
            encode_automaton(left), encode_automaton(right)
        )
        symbolic = {
            pair.pair_label(int(i))
            for i in np.flatnonzero(forward_reachable(pair.product))
        }
        assert symbolic == explicit

    def test_controllability_product_ignores_supervisor_private_events(self):
        plant = automaton_from_table(
            "P",
            Alphabet.of([controllable("c1"), uncontrollable("u1")]),
            [("P0", "c1", "P1")],
            initial="P0",
        )
        supervisor = automaton_from_table(
            "S",
            SIGMA,
            [("S0", "c1", "S1"), ("S1", "c2", "S0")],
            initial="S0",
        )
        pair = controllability_product(
            encode_automaton(plant), encode_automaton(supervisor)
        )
        # c2 is supervisor-private: not an event of the product at all.
        assert pair.product.event_names == ("c1", "u1")
        reach = forward_reachable(pair.product)
        labels = {
            pair.pair_label(int(i)) for i in np.flatnonzero(reach)
        }
        assert labels == {"P0.S0", "P1.S1"}


# ----------------------------------------------------------------------
# Search trees and witness traces
# ----------------------------------------------------------------------
class TestWitnessTraces:
    @settings(max_examples=100, deadline=None)
    @given(automata())
    def test_traces_replay_and_are_shortest(self, automaton):
        enc = encode_automaton(automaton)
        tree = forward_search(enc)
        # Explicit BFS depths for comparison.
        depths = {automaton.initial.name: 0}
        frontier = [automaton.initial]
        while frontier:
            nxt = []
            for state in frontier:
                for event in automaton.enabled_events(state):
                    target = automaton.step(state, event)
                    if target.name not in depths:
                        depths[target.name] = depths[state.name] + 1
                        nxt.append(target)
            frontier = nxt
        for index in np.flatnonzero(tree.visited):
            name = enc.state_label(int(index))
            trace = witness_trace(enc, tree, int(index))
            assert len(trace) == depths[name] == int(tree.depth[index])
            # The trace replays to the right state.
            state = automaton.initial
            for event_name in trace:
                state = automaton.step(state, event_name)
                assert state is not None
            assert state.name == name

    def test_nearest_state_prefers_min_depth_then_min_index(self):
        automaton = automaton_from_table(
            "M",
            SIGMA,
            [("A", "c1", "B"), ("A", "c2", "C"), ("B", "c1", "D")],
            initial="A",
        )
        enc = encode_automaton(automaton)
        tree = forward_search(enc)
        mask = np.array([False, True, True, True])  # B, C, D
        # B and C are both depth 1; B has the smaller index.
        assert enc.state_label(nearest_state(tree, mask)) == "B"
        assert nearest_state(tree, np.zeros(4, dtype=bool)) == -1


# ----------------------------------------------------------------------
# Verification equivalence (the kernel's headline contract)
# ----------------------------------------------------------------------
class TestVerificationEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(automata(name="P"), automata(name="S"))
    def test_reports_byte_identical(self, plant, supervisor):
        symbolic = verify_supervisor(plant, supervisor)
        explicit = explicit_verify_supervisor(plant, supervisor)
        assert symbolic.to_dict() == explicit.to_dict()
        assert symbolic.summary() == explicit.summary()

    @settings(max_examples=80, deadline=None)
    @given(automata(name="P"), automata(name="S"))
    def test_controllability_violations_identical(self, plant, supervisor):
        from repro.automata.verification import check_controllability

        sym_ok, sym_violations = check_controllability(plant, supervisor)
        exp_ok, exp_violations = explicit_check_controllability(
            plant, supervisor
        )
        assert sym_ok == exp_ok
        assert [
            (v.plant_state.name, v.supervisor_state.name, v.event.name, v.trace)
            for v in sym_violations
        ] == [
            (v.plant_state.name, v.supervisor_state.name, v.event.name, v.trace)
            for v in exp_violations
        ]

    def test_violation_traces_replay_on_the_plant(self):
        plant = automaton_from_table(
            "P",
            SIGMA,
            [("P0", "c1", "P1"), ("P1", "u1", "P2"), ("P2", "c1", "P0")],
            initial="P0",
            marked=["P0"],
        )
        supervisor = automaton_from_table(
            "S",
            SIGMA,
            [("S0", "c1", "S1"), ("S1", "c1", "S0")],
            initial="S0",
            marked=["S0"],
        )
        report = verify_supervisor(plant, supervisor)
        assert not report.controllable
        (violation,) = report.violations
        assert violation.event.name == "u1"
        assert violation.trace == ("c1",)
        state = plant.initial
        for event_name in violation.trace:
            state = plant.step(state, event_name)
        assert state == violation.plant_state
        assert plant.step(state, "u1") is not None


# ----------------------------------------------------------------------
# Canonical digests (M007's fingerprint)
# ----------------------------------------------------------------------
class TestCanonicalDigest:
    def test_invariant_under_state_renaming(self):
        a = automaton_from_table(
            "A",
            SIGMA,
            [("X", "c1", "Y"), ("Y", "u1", "X")],
            initial="X",
            marked=["Y"],
        )
        b = automaton_from_table(
            "B",
            SIGMA,
            [("Alpha", "c1", "Beta"), ("Beta", "u1", "Alpha")],
            initial="Alpha",
            marked=["Beta"],
        )
        assert canonical_digest(a) == canonical_digest(b)
        assert languages_equal(a, b)

    def test_sensitive_to_structure(self):
        a = automaton_from_table(
            "A", SIGMA, [("X", "c1", "Y")], initial="X", marked=["Y"]
        )
        b = automaton_from_table(
            "A", SIGMA, [("X", "c2", "Y")], initial="X", marked=["Y"]
        )
        assert canonical_digest(a) != canonical_digest(b)

    def test_unreachable_states_do_not_change_digest(self):
        a = automaton_from_table(
            "A", SIGMA, [("X", "c1", "Y")], initial="X", marked=["Y"]
        )
        b = automaton_from_table(
            "A",
            SIGMA,
            [("X", "c1", "Y"), ("Junk", "c2", "Junk")],
            initial="X",
            marked=["Y"],
        )
        assert canonical_digest(a) == canonical_digest(b)


# ----------------------------------------------------------------------
# Scaled sanity (small but composed, mirrors the benchmark's shape)
# ----------------------------------------------------------------------
def test_counter_plant_equivalence_small():
    from repro.core.scalable import (
        build_scalable_supervisor,
        scalable_alphabet,
        scalable_counter_plant,
    )

    sigma = scalable_alphabet(2)
    plant = scalable_counter_plant(2, 3, sigma)
    supervisor = build_scalable_supervisor(2).supervisor
    symbolic = verify_supervisor(plant, supervisor)
    explicit = explicit_verify_supervisor(plant, supervisor)
    assert symbolic.to_dict() == explicit.to_dict()
    assert symbolic.verified
