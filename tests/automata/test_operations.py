"""Tests for synchronous composition and reachability operators."""

import pytest

from repro.automata.automaton import AutomatonError, State, automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.operations import (
    accessible,
    accessible_states,
    blocking_states,
    coaccessible,
    coaccessible_states,
    compose_all,
    is_nonblocking,
    synchronous_composition,
    trim,
)

SHARED = controllable("shared")
PRIV_A = controllable("privA")
PRIV_B = uncontrollable("privB")
SIGMA_A = Alphabet.of([SHARED, PRIV_A])
SIGMA_B = Alphabet.of([SHARED, PRIV_B])


def automaton_a():
    return automaton_from_table(
        "A",
        SIGMA_A,
        transitions=[("A0", "shared", "A1"), ("A0", "privA", "A0")],
        initial="A0",
        marked=["A1"],
    )


def automaton_b():
    return automaton_from_table(
        "B",
        SIGMA_B,
        transitions=[("B0", "shared", "B1"), ("B1", "privB", "B0")],
        initial="B0",
        marked=["B1"],
    )


class TestSynchronousComposition:
    def test_shared_events_synchronize(self):
        c = synchronous_composition(automaton_a(), automaton_b())
        # shared can only fire when both enable it
        assert c.step("A0.B0", "shared") == State("A1.B1")
        # after A has moved, B hasn't enabled shared so it's disabled
        assert c.step("A1.B1", "shared") is None

    def test_private_events_interleave(self):
        c = synchronous_composition(automaton_a(), automaton_b())
        assert c.step("A0.B0", "privA") == State("A0.B0")
        # privB is only enabled where B enables it
        assert c.step("A0.B0", "privB") is None
        assert c.step("A1.B1", "privB") == State("A1.B0")

    def test_marking_is_conjunction(self):
        c = synchronous_composition(automaton_a(), automaton_b())
        assert c.is_marked("A1.B1")
        assert not c.is_marked("A0.B0")
        assert not c.is_marked("A1.B0")

    def test_forbidden_is_disjunction(self):
        a = automaton_a()
        a.forbid("A1")
        c = synchronous_composition(a, automaton_b())
        assert c.is_forbidden("A1.B1")
        assert not c.is_forbidden("A0.B0")

    def test_only_reachable_part_constructed(self):
        a = automaton_a()
        a.add_state("unreachable", marked=True)
        c = synchronous_composition(a, automaton_b())
        assert all("unreachable" not in s.name for s in c.states)

    def test_alphabet_is_union(self):
        c = synchronous_composition(automaton_a(), automaton_b())
        assert c.alphabet.names() == {"shared", "privA", "privB"}

    def test_composition_with_self_preserves_language_shape(self):
        a = automaton_a()
        c = synchronous_composition(a, automaton_a())
        assert c.accepts(["shared"])
        assert not c.accepts(["privA"])

    def test_word_acceptance_semantics(self):
        c = synchronous_composition(automaton_a(), automaton_b())
        assert c.accepts(["privA", "shared"])
        assert not c.accepts(["privA"])

    def test_compose_all_three(self):
        extra = automaton_from_table(
            "C",
            Alphabet.of([SHARED]),
            transitions=[("C0", "shared", "C1")],
            initial="C0",
            marked=["C1"],
        )
        c = compose_all([automaton_a(), automaton_b(), extra], name="trio")
        assert c.name == "trio"
        assert c.step("A0.B0.C0", "shared") == State("A1.B1.C1")

    def test_compose_all_empty_rejected(self):
        with pytest.raises(AutomatonError):
            compose_all([])

    def test_compose_all_single(self):
        a = automaton_a()
        assert compose_all([a]) is a


class TestReachability:
    def make_chain(self):
        """I -> M -> D, with D a dead end; M marked."""
        sigma = Alphabet.of([controllable("x"), controllable("y")])
        return automaton_from_table(
            "chain",
            sigma,
            transitions=[("I", "x", "M"), ("M", "y", "D")],
            initial="I",
            marked=["M"],
        )

    def test_accessible_states(self):
        automaton = self.make_chain()
        automaton.add_state("orphan")
        assert accessible_states(automaton) == {
            State("I"),
            State("M"),
            State("D"),
        }

    def test_coaccessible_states(self):
        automaton = self.make_chain()
        assert coaccessible_states(automaton) == {State("I"), State("M")}

    def test_trim_removes_dead_end_and_orphans(self):
        automaton = self.make_chain()
        automaton.add_state("orphan", marked=True)
        trimmed = trim(automaton)
        assert trimmed.states == {State("I"), State("M")}

    def test_trim_is_nonblocking(self):
        assert is_nonblocking(trim(self.make_chain()))

    def test_blocking_states(self):
        automaton = self.make_chain()
        assert blocking_states(automaton) == {State("D")}

    def test_nonblocking_detects_dead_end(self):
        assert not is_nonblocking(self.make_chain())

    def test_accessible_operator_keeps_initial(self):
        automaton = self.make_chain()
        automaton.add_state("orphan")
        acc = accessible(automaton)
        assert acc.has_initial
        assert len(acc) == 3

    def test_coaccessible_operator(self):
        automaton = self.make_chain()
        co = coaccessible(automaton)
        assert State("D") not in co.states

    def test_empty_automaton_nonblocking(self):
        sigma = Alphabet.of([controllable("x")])
        from repro.automata.automaton import Automaton

        assert is_nonblocking(Automaton("empty", sigma))

    def test_accessible_of_no_initial_is_empty(self):
        from repro.automata.automaton import Automaton

        sigma = Alphabet.of([controllable("x")])
        automaton = Automaton("noinit", sigma)
        automaton.add_state("floating")
        assert accessible_states(automaton) == frozenset()
