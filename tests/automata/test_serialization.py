"""Round-trip tests for automaton serialization."""

import json

from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.serialization import (
    automaton_from_dict,
    automaton_to_dict,
    dumps,
    loads,
)

SIGMA = Alphabet.of([controllable("a"), uncontrollable("b")])


def sample():
    automaton = automaton_from_table(
        "sample",
        SIGMA,
        transitions=[("S0", "a", "S1"), ("S1", "b", "S0")],
        initial="S0",
        marked=["S1"],
        forbidden=["S0"],
    )
    return automaton


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = sample()
        restored = automaton_from_dict(automaton_to_dict(original))
        assert restored.name == original.name
        assert restored.states == original.states
        assert restored.initial == original.initial
        assert restored.marked == original.marked
        assert restored.forbidden == original.forbidden
        assert restored.transitions == original.transitions

    def test_event_attributes_survive(self):
        restored = automaton_from_dict(automaton_to_dict(sample()))
        assert restored.alphabet["a"].controllable
        assert not restored.alphabet["b"].controllable

    def test_json_round_trip(self):
        text = dumps(sample())
        json.loads(text)  # valid JSON
        restored = loads(text)
        assert restored.accepts(["a"])
        assert not restored.accepts(["a", "b"])

    def test_no_initial_round_trip(self):
        from repro.automata.automaton import Automaton

        automaton = Automaton("noinit", SIGMA)
        automaton.add_state("lonely")
        restored = automaton_from_dict(automaton_to_dict(automaton))
        assert not restored.has_initial
        assert len(restored) == 1

    def test_case_study_supervisor_round_trip(self, verified_supervisor):
        supervisor = verified_supervisor.supervisor
        restored = loads(dumps(supervisor))
        assert len(restored) == len(supervisor)
        assert restored.transitions == supervisor.transitions
        assert restored.marked == supervisor.marked
