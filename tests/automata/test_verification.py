"""Tests for nonblocking and controllability verification."""

import dataclasses
import json

import pytest

from repro.automata.automaton import automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.verification import (
    ControllabilityViolation,
    VerificationReport,
    check_controllability,
    check_nonblocking,
    verify_supervisor,
)

SIGMA = Alphabet.of(
    [controllable("go"), uncontrollable("fault"), controllable("fix")]
)


def plant():
    return automaton_from_table(
        "plant",
        SIGMA,
        transitions=[
            ("P0", "go", "P1"),
            ("P1", "fault", "P2"),
            ("P2", "fix", "P0"),
        ],
        initial="P0",
        marked=["P0"],
    )


class TestNonblocking:
    def test_cyclic_automaton_is_nonblocking(self):
        assert check_nonblocking(plant())

    def test_dead_end_blocks(self):
        a = plant()
        a.add_transition("P1", "go", "Dead")
        assert not check_nonblocking(a)


class TestControllability:
    def test_full_supervisor_is_controllable(self):
        ok, violations = check_controllability(plant(), plant().copy("sup"))
        assert ok
        assert violations == ()

    def test_disabling_uncontrollable_is_violation(self):
        supervisor = automaton_from_table(
            "sup",
            SIGMA,
            transitions=[("S0", "go", "S1")],  # omits fault at S1
            initial="S0",
            marked=["S0", "S1"],
        )
        ok, violations = check_controllability(plant(), supervisor)
        assert not ok
        assert violations[0].event.name == "fault"
        assert violations[0].plant_state.name == "P1"
        assert "fault" in str(violations[0])

    def test_disabling_controllable_is_fine(self):
        supervisor = automaton_from_table(
            "sup",
            SIGMA,
            transitions=[],  # disables 'go' at the initial state
            initial="S0",
            marked=["S0"],
        )
        ok, violations = check_controllability(plant(), supervisor)
        assert ok

    def test_violation_beyond_first_step(self):
        """Controllability is checked on the joint reachable space, not
        just the initial state."""
        supervisor = automaton_from_table(
            "sup",
            SIGMA,
            transitions=[
                ("S0", "go", "S1"),
                ("S1", "fault", "S2"),
                # omits nothing uncontrollable; 'fix' disabled is legal
            ],
            initial="S0",
            marked=["S0"],
        )
        ok, _ = check_controllability(plant(), supervisor)
        assert ok


class TestClosedLoopNonblocking:
    """Nonblocking must be judged on plant || supervisor, not the
    supervisor alone."""

    SIGMA = Alphabet.of([controllable("a"), controllable("b")])

    def test_supervisor_nonblocking_alone_but_product_blocks(self):
        # Plant needs a then b to reach its marked state; the supervisor
        # only ever offers a.  Every supervisor state reaches a marked
        # state, so the supervisor alone is nonblocking — but the product
        # is stuck at P1.T1 forever.
        plant_ = automaton_from_table(
            "chain",
            self.SIGMA,
            transitions=[("P0", "a", "P1"), ("P1", "b", "P2")],
            initial="P0",
            marked=["P2"],
        )
        supervisor = automaton_from_table(
            "sup",
            self.SIGMA,
            transitions=[("T0", "a", "T1")],
            initial="T0",
            marked=["T1"],
        )
        assert check_nonblocking(supervisor)

        report = verify_supervisor(plant_, supervisor)
        assert report.controllable  # only controllable events disabled
        assert not report.nonblocking
        assert not report.verified
        assert report.blocking_states
        assert any("P1" in s.name for s in report.blocking_states)

    def test_product_nonblocking_when_supervisor_completes_the_chain(self):
        plant_ = automaton_from_table(
            "chain",
            self.SIGMA,
            transitions=[("P0", "a", "P1"), ("P1", "b", "P2")],
            initial="P0",
            marked=["P2"],
        )
        supervisor = automaton_from_table(
            "sup",
            self.SIGMA,
            transitions=[("T0", "a", "T1"), ("T1", "b", "T2")],
            initial="T0",
            marked=["T2"],
        )
        report = verify_supervisor(plant_, supervisor)
        assert report.verified
        assert report.blocking_states == frozenset()


class TestVerifyReport:
    def test_report_pass(self):
        report = verify_supervisor(plant(), plant().copy("sup"))
        assert report.verified
        assert "PASS" in report.summary()

    def test_report_failure_lists_details(self):
        supervisor = automaton_from_table(
            "sup",
            SIGMA,
            transitions=[("S0", "go", "S1")],
            initial="S0",
            marked=["S0"],
        )
        # S1 is reachable but not coaccessible... actually S1 unmarked
        # with no outgoing transitions => blocking too.
        report = verify_supervisor(plant(), supervisor)
        assert not report.verified
        assert not report.controllable
        assert not report.nonblocking
        summary = report.summary()
        assert "FAIL" in summary
        assert "violation" in summary


class TestReportSerialization:
    def test_roundtrip_preserves_equality(self):
        supervisor = automaton_from_table(
            "sup",
            SIGMA,
            transitions=[("S0", "go", "S1")],
            initial="S0",
            marked=["S0"],
        )
        for report in (
            verify_supervisor(plant(), plant().copy("sup")),
            verify_supervisor(plant(), supervisor),
        ):
            payload = report.to_dict()
            assert payload["schema"] == "verification-report/1"
            restored = VerificationReport.from_dict(payload)
            assert restored == report
            assert restored.verified == report.verified
            # The payload is JSON-clean: a dump/load cycle changes nothing.
            assert (
                VerificationReport.from_dict(json.loads(json.dumps(payload)))
                == report
            )

    def test_report_is_frozen_and_hashable(self):
        report = verify_supervisor(plant(), plant().copy("sup"))
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.nonblocking = False
        assert report in {report}

    def test_violation_roundtrip_keeps_trace(self):
        supervisor = automaton_from_table(
            "sup",
            SIGMA,
            transitions=[("S0", "go", "S1")],
            initial="S0",
            marked=["S0"],
        )
        report = verify_supervisor(plant(), supervisor)
        (violation,) = report.violations
        assert violation.trace == ("go",)
        restored = ControllabilityViolation.from_dict(violation.to_dict())
        assert restored == violation
        assert restored.trace == violation.trace
        assert restored.event.controllable == violation.event.controllable
