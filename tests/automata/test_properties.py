"""Property-based tests for the DES toolkit (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.automaton import Automaton, State
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.operations import (
    accessible_states,
    coaccessible_states,
    is_nonblocking,
    synchronous_composition,
    trim,
)
from repro.automata.synthesis import synthesize_supervisor
from repro.automata.verification import check_controllability

EVENTS = [
    controllable("c1"),
    controllable("c2"),
    uncontrollable("u1"),
    uncontrollable("u2"),
]
SIGMA = Alphabet.of(EVENTS)
STATE_NAMES = ["Q0", "Q1", "Q2", "Q3", "Q4"]


@st.composite
def automata(draw, name="rand", max_states=5):
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    states = STATE_NAMES[:n_states]
    automaton = Automaton(name, SIGMA)
    for state in states:
        automaton.add_state(state)
    automaton.set_initial(states[0])
    n_transitions = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_transitions):
        source = draw(st.sampled_from(states))
        event = draw(st.sampled_from(EVENTS))
        target = draw(st.sampled_from(states))
        if automaton.step(source, event) is None:
            automaton.add_transition(source, event, target)
    marked = draw(st.lists(st.sampled_from(states), max_size=n_states))
    for state in marked:
        automaton.mark(state)
    return automaton


@st.composite
def words(draw, max_length=6):
    return draw(
        st.lists(
            st.sampled_from([e.name for e in EVENTS]), max_size=max_length
        )
    )


class TestTrimProperties:
    @given(automata())
    @settings(max_examples=60, deadline=None)
    def test_trim_is_nonblocking(self, automaton):
        assert is_nonblocking(trim(automaton))

    @given(automata())
    @settings(max_examples=60, deadline=None)
    def test_trim_is_idempotent(self, automaton):
        once = trim(automaton)
        twice = trim(once)
        assert once.states == twice.states
        assert once.transitions == twice.transitions

    @given(automata())
    @settings(max_examples=60, deadline=None)
    def test_trim_subset_of_original(self, automaton):
        trimmed = trim(automaton)
        assert trimmed.states <= automaton.states
        assert set(trimmed.transitions) <= set(automaton.transitions)

    @given(automata())
    @settings(max_examples=60, deadline=None)
    def test_coaccessible_contains_marked_reachable(self, automaton):
        reachable_marked = accessible_states(automaton) & automaton.marked
        assert reachable_marked <= coaccessible_states(automaton)


class TestCompositionProperties:
    @given(automata(name="A"), automata(name="B"), st.lists(words(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_composition_is_commutative_on_language(self, a, b, samples):
        ab = synchronous_composition(a, b)
        ba = synchronous_composition(b, a)
        for word in samples:
            assert ab.accepts(word) == ba.accepts(word)

    @given(automata(name="A"), st.lists(words(), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_identity_composition(self, a, samples):
        """Composing with a universal single-state automaton over the
        same alphabet leaves the language unchanged."""
        universal = Automaton("U", SIGMA)
        universal.add_state("u", marked=True, initial=True)
        for event in EVENTS:
            universal.add_transition("u", event, "u")
        composed = synchronous_composition(a, universal)
        for word in samples:
            assert composed.accepts(word) == a.accepts(word)

    @given(automata(name="A"), automata(name="B"))
    @settings(max_examples=40, deadline=None)
    def test_composition_states_are_pairs(self, a, b):
        composed = synchronous_composition(a, b)
        a_names = {s.name for s in a.states}
        b_names = {s.name for s in b.states}
        for state in composed.states:
            left, right = state.name.split(".", 1)
            assert left in a_names
            assert right in b_names


class TestSynthesisProperties:
    @given(automata(name="P"), automata(name="S"))
    @settings(max_examples=40, deadline=None)
    def test_supervisor_is_controllable_and_nonblocking(self, plant, spec):
        result = synthesize_supervisor(plant, spec)
        if result.is_empty:
            return
        supervisor = result.supervisor
        assert is_nonblocking(supervisor)
        ok, violations = check_controllability(plant, supervisor)
        assert ok, violations

    @given(automata(name="P"), automata(name="S"), st.lists(words(), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_supervisor_language_within_plant(self, plant, spec, samples):
        """Every word the supervisor can execute is executable by the
        plant (the supervisor only restricts, never adds behaviour)."""
        result = synthesize_supervisor(plant, spec)
        if result.is_empty:
            return
        supervisor = result.supervisor
        for word in samples:
            state = supervisor.initial
            plant_state: State | None = plant.initial
            for event in word:
                nxt = supervisor.step(state, event)
                if nxt is None:
                    break
                state = nxt
                assert plant_state is not None
                plant_state = plant.step(plant_state, event)
                assert plant_state is not None

    @given(automata(name="P"), automata(name="S"))
    @settings(max_examples=40, deadline=None)
    def test_supervisor_avoids_forbidden_pairs(self, plant, spec):
        """No supervisor state refines a forbidden plant/spec state."""
        for state in plant.states:
            if state.name in ("Q1",):
                plant.forbid(state)
        result = synthesize_supervisor(plant, spec)
        if result.is_empty:
            return
        for state, pair in result.state_map.items():
            assert not plant.is_forbidden(pair.plant)
            assert not spec.is_forbidden(pair.spec)
