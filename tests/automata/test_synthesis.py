"""Tests for Ramadge-Wonham supervisor synthesis."""

import pytest

from repro.automata.automaton import State, automaton_from_table
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.automata.synthesis import (
    SynthesisError,
    supremal_controllable,
    synthesize_supervisor,
)
from repro.automata.verification import verify_supervisor


def machine_breakdown_example():
    """The classic small machine: start (c), finish (u), break (u),
    repair (c).  Specification: never enter the broken state."""
    sigma = Alphabet.of(
        [
            controllable("start"),
            uncontrollable("finish"),
            uncontrollable("break"),
            controllable("repair"),
        ]
    )
    plant = automaton_from_table(
        "machine",
        sigma,
        transitions=[
            ("Idle", "start", "Working"),
            ("Working", "finish", "Idle"),
            ("Working", "break", "Down"),
            ("Down", "repair", "Idle"),
        ],
        initial="Idle",
        marked=["Idle"],
    )
    spec_sigma = Alphabet.of([sigma["break"]])
    spec = automaton_from_table(
        "never-break",
        spec_sigma,
        transitions=[("Ok", "break", "Broken")],
        initial="Ok",
        marked=["Ok"],
        forbidden=["Broken"],
    )
    return plant, spec


class TestBasicSynthesis:
    def test_unavoidable_uncontrollable_empties_supervisor(self):
        """'break' is uncontrollable from Working, and Working is only
        reachable via 'start' — so the supremal supervisor must disable
        'start' entirely, leaving only the Idle state."""
        plant, spec = machine_breakdown_example()
        result = synthesize_supervisor(plant, spec)
        assert not result.is_empty
        assert len(result.supervisor) == 1
        assert result.supervisor.initial.name == "Idle.Ok"
        assert result.supervisor.enabled_events(result.supervisor.initial) == frozenset()

    def test_controllable_hazard_is_simply_disabled(self):
        """If 'break' were controllable, the supervisor keeps the work
        loop and just disables 'break'."""
        sigma = Alphabet.of(
            [
                controllable("start"),
                uncontrollable("finish"),
                controllable("break"),
            ]
        )
        plant = automaton_from_table(
            "machine",
            sigma,
            transitions=[
                ("Idle", "start", "Working"),
                ("Working", "finish", "Idle"),
                ("Working", "break", "Down"),
            ],
            initial="Idle",
            marked=["Idle"],
        )
        spec = automaton_from_table(
            "never-break",
            Alphabet.of([sigma["break"]]),
            transitions=[("Ok", "break", "Broken")],
            initial="Ok",
            marked=["Ok"],
            forbidden=["Broken"],
        )
        supervisor = supremal_controllable(plant, spec)
        assert len(supervisor) == 2
        working = State("Working.Ok")
        assert {e.name for e in supervisor.enabled_events(working)} == {
            "finish"
        }

    def test_synthesized_supervisor_verifies(self):
        plant, spec = machine_breakdown_example()
        supervisor = supremal_controllable(plant, spec)
        report = verify_supervisor(plant, supervisor)
        assert report.verified

    def test_result_bookkeeping(self):
        plant, spec = machine_breakdown_example()
        result = synthesize_supervisor(plant, spec)
        assert result.iterations >= 1
        # Working.Ok removed for controllability (break escapes).
        assert State("Working.Ok") in result.removed_uncontrollable
        assert all(
            s in result.state_map for s in result.supervisor.states
        )

    def test_missing_initials_rejected(self):
        plant, spec = machine_breakdown_example()
        from repro.automata.automaton import Automaton

        empty = Automaton("empty", plant.alphabet)
        with pytest.raises(SynthesisError):
            synthesize_supervisor(empty, spec)
        with pytest.raises(SynthesisError):
            synthesize_supervisor(plant, empty)


class TestBlockingRemoval:
    def test_blocking_branch_pruned(self):
        """A controllable branch into a livelock (no marked state) must
        be pruned by trimming even though it violates no spec."""
        sigma = Alphabet.of(
            [controllable("good"), controllable("bad"), controllable("loop")]
        )
        plant = automaton_from_table(
            "p",
            sigma,
            transitions=[
                ("S", "good", "Done"),
                ("S", "bad", "Stuck"),
                ("Stuck", "loop", "Stuck"),
            ],
            initial="S",
            marked=["Done"],
        )
        spec = automaton_from_table(
            "anything",
            sigma,
            transitions=[
                ("T", "good", "T"),
                ("T", "bad", "T"),
                ("T", "loop", "T"),
            ],
            initial="T",
            marked=["T"],
        )
        result = synthesize_supervisor(plant, spec)
        names = {s.name for s in result.supervisor.states}
        assert names == {"S.T", "Done.T"}
        assert any("Stuck" in s.name for s in result.removed_blocking)

    def test_uncontrollable_cascade(self):
        """Pruning an unsafe state must cascade backwards through
        uncontrollable edges."""
        sigma = Alphabet.of(
            [controllable("c"), uncontrollable("u1"), uncontrollable("u2")]
        )
        plant = automaton_from_table(
            "p",
            sigma,
            transitions=[
                ("A", "c", "B"),
                ("B", "u1", "C"),
                ("C", "u2", "Bad"),
            ],
            initial="A",
            marked=["A", "B", "C"],
        )
        spec = automaton_from_table(
            "no-u2",
            Alphabet.of([sigma["u2"]]),
            transitions=[("Ok", "u2", "Broken")],
            initial="Ok",
            marked=["Ok"],
            forbidden=["Broken"],
        )
        result = synthesize_supervisor(plant, spec)
        # C enables u2 -> forbidden, so C is pruned; B enables u1 -> C,
        # so B is pruned; the supervisor must disable c at A.
        assert {s.name for s in result.supervisor.states} == {"A.Ok"}

    def test_spec_with_larger_alphabet_constrains_silently(self):
        """Events private to the spec never fire; plant runs free."""
        sigma_p = Alphabet.of([controllable("x")])
        plant = automaton_from_table(
            "p",
            sigma_p,
            transitions=[("P0", "x", "P0")],
            initial="P0",
            marked=["P0"],
        )
        sigma_s = Alphabet.of([controllable("x"), controllable("ghost")])
        spec = automaton_from_table(
            "s",
            sigma_s,
            transitions=[("S0", "x", "S0"), ("S0", "ghost", "S1")],
            initial="S0",
            marked=["S0"],
        )
        supervisor = supremal_controllable(plant, spec)
        assert len(supervisor) == 1
        assert supervisor.accepts(["x", "x"])


class TestSupremality:
    def test_supervisor_is_least_restrictive_on_safe_paths(self):
        """Safe controllable alternatives survive synthesis."""
        sigma = Alphabet.of(
            [
                controllable("safe"),
                controllable("risky"),
                uncontrollable("boom"),
                uncontrollable("ok"),
            ]
        )
        plant = automaton_from_table(
            "p",
            sigma,
            transitions=[
                ("S", "safe", "A"),
                ("S", "risky", "B"),
                ("A", "ok", "S"),
                ("B", "boom", "Dead"),
                ("B", "ok", "S"),
            ],
            initial="S",
            marked=["S"],
        )
        spec = automaton_from_table(
            "no-boom",
            Alphabet.of([sigma["boom"]]),
            transitions=[("Ok", "boom", "Bad")],
            initial="Ok",
            marked=["Ok"],
            forbidden=["Bad"],
        )
        supervisor = supremal_controllable(plant, spec)
        start = supervisor.initial
        enabled = {e.name for e in supervisor.enabled_events(start)}
        # risky leads to B where uncontrollable boom escapes -> disabled;
        # safe must remain enabled (supremality).
        assert enabled == {"safe"}
