"""Equivalence gate: symbolic synthesis == explicit synthesis.

The symbolic engine is only allowed to exist because it is
indistinguishable from the explicit oracle — not merely up to
isomorphism, but field-for-field: same supervisor automaton (states,
transitions, marking, initial), same ``removed_uncontrollable`` /
``removed_blocking`` attribution, same round count, same ``state_map``.
This suite asserts exactly that on every committed model, on
hypothesis-generated plant/spec pairs (including spec-private events,
forbidden states, empty supervisors), and on the degenerate edges the
dispatcher must reject identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.automata import (
    SynthesisError,
    automaton_to_dict,
    canonical_digest,
    encode_automaton,
    encode_composition,
    explicit_synthesize_supervisor,
    supremal_fixpoint,
    synthesize_supervisor,
)
from repro.automata.automaton import Automaton
from repro.automata.events import Alphabet, controllable, uncontrollable
from repro.core.plant_model import case_study_plant
from repro.core.scalable import (
    fleet_alphabet,
    fleet_counter_plant,
    fleet_plant_components,
    fleet_specification,
    scalable_alphabet,
    scalable_counter_plant,
    scalable_plant_components,
    scalable_specification,
)
from repro.core.specification import case_study_specification

PLANT_EVENTS = [
    controllable("c1"),
    controllable("c2"),
    uncontrollable("u1"),
    uncontrollable("u2"),
]
# Events only the specification knows: constraints the plant cannot
# execute, which the synthesis product must silence, never interleave.
SPEC_PRIVATE = [controllable("sc"), uncontrollable("su")]


def assert_engines_agree(plant, spec):
    explicit = explicit_synthesize_supervisor(plant, spec)
    symbolic = synthesize_supervisor(plant, spec, engine="symbolic")
    assert symbolic.supervisor.name == explicit.supervisor.name
    assert symbolic.supervisor.states == explicit.supervisor.states
    assert symbolic.supervisor.transitions == explicit.supervisor.transitions
    assert symbolic.supervisor.marked == explicit.supervisor.marked
    assert symbolic.supervisor.forbidden == explicit.supervisor.forbidden
    assert symbolic.supervisor.has_initial == explicit.supervisor.has_initial
    if explicit.supervisor.has_initial:
        assert symbolic.supervisor.initial == explicit.supervisor.initial
    assert (
        symbolic.removed_uncontrollable == explicit.removed_uncontrollable
    )
    assert symbolic.removed_blocking == explicit.removed_blocking
    assert symbolic.iterations == explicit.iterations
    assert symbolic.state_map == explicit.state_map
    assert symbolic.is_empty == explicit.is_empty
    # Identical named serialization implies identical marked language;
    # the canonical digest additionally pins the isomorphism gate.
    assert automaton_to_dict(symbolic.supervisor) == automaton_to_dict(
        explicit.supervisor
    )
    assert canonical_digest(symbolic.supervisor) == canonical_digest(
        explicit.supervisor
    )
    # The decoded out-edge index must match what add_transition builds.
    for state in explicit.supervisor.states:
        assert symbolic.supervisor.enabled_events(
            state
        ) == explicit.supervisor.enabled_events(state)
    return symbolic


@st.composite
def des_automata(draw, name, events, max_states=5, max_forbidden=2):
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    states = [f"{name}{i}" for i in range(n_states)]
    automaton = Automaton(name, Alphabet.of(events))
    for state in states:
        automaton.add_state(state)
    automaton.set_initial(states[0])
    if events:
        n_transitions = draw(st.integers(min_value=0, max_value=12))
        for _ in range(n_transitions):
            source = draw(st.sampled_from(states))
            event = draw(st.sampled_from(events))
            target = draw(st.sampled_from(states))
            if automaton.step(source, event) is None:
                automaton.add_transition(source, event, target)
    for state in draw(
        st.lists(st.sampled_from(states), max_size=n_states, unique=True)
    ):
        automaton.mark(state)
    for state in draw(
        st.lists(st.sampled_from(states), max_size=max_forbidden, unique=True)
    ):
        automaton.forbid(state)
    return automaton


@st.composite
def synthesis_pairs(draw):
    plant = draw(des_automata("P", PLANT_EVENTS))
    shared = draw(
        st.lists(st.sampled_from(PLANT_EVENTS), max_size=4, unique=True)
    )
    private = draw(
        st.lists(st.sampled_from(SPEC_PRIVATE), max_size=2, unique=True)
    )
    spec = draw(des_automata("S", shared + private, max_states=4))
    return plant, spec


class TestHypothesisEquivalence:
    @given(synthesis_pairs())
    @settings(max_examples=120, deadline=None)
    def test_engines_agree_on_random_pairs(self, pair):
        plant, spec = pair
        assert_engines_agree(plant, spec)

    @given(des_automata("P", PLANT_EVENTS))
    @settings(max_examples=60, deadline=None)
    def test_plant_as_its_own_spec(self, plant):
        # supC(P, P) — every event shared, heavy synchronization.
        spec = plant.relabel(lambda s: s.name.replace("P", "S"), name="S")
        assert_engines_agree(plant, spec)


class TestCommittedModels:
    def test_case_study(self):
        result = assert_engines_agree(
            case_study_plant(), case_study_specification()
        )
        assert not result.is_empty

    def test_scalable_counter_models(self):
        for n_clusters, levels in [(1, 2), (2, 3)]:
            sigma = scalable_alphabet(n_clusters)
            result = assert_engines_agree(
                scalable_counter_plant(n_clusters, levels, sigma),
                scalable_specification(n_clusters, sigma),
            )
            assert not result.is_empty

    def test_fleet_models(self):
        sigma = fleet_alphabet(2)
        result = assert_engines_agree(
            fleet_counter_plant(2, 2, sigma),
            fleet_specification(2, sigma),
        )
        assert not result.is_empty
        # The fleet spec actually bites: uncontrollable escapes pruned.
        assert result.removed_uncontrollable

    def test_machine_breakdown(self):
        sigma = Alphabet.of(
            [
                controllable("start"),
                uncontrollable("finish"),
                uncontrollable("break"),
                controllable("repair"),
            ]
        )
        plant = Automaton("machine", sigma, initial="Idle")
        plant.add_transition("Idle", "start", "Working")
        plant.add_transition("Working", "finish", "Idle")
        plant.add_transition("Working", "break", "Down")
        plant.add_transition("Down", "repair", "Idle")
        plant.mark("Idle")
        spec = Automaton(
            "never-break", Alphabet.of([sigma["break"]]), initial="Ok"
        )
        spec.add_state("Ok", marked=True)
        result = assert_engines_agree(plant, spec)
        # 'break' is uncontrollable, so Working.Ok falls to the
        # extension pass; the supremal answer disables controllable
        # 'start' and idles forever in the marked initial state.
        assert not result.is_empty
        assert len(result.supervisor) == 1
        assert result.supervisor.n_transitions == 0
        assert {s.name for s in result.removed_uncontrollable} == {
            "Working.Ok"
        }


class TestEdgeCases:
    def _machine(self):
        sigma = Alphabet.of([controllable("go"), uncontrollable("fail")])
        plant = Automaton("plant", sigma, initial="A")
        plant.add_transition("A", "go", "B")
        plant.mark("B")
        return sigma, plant

    def test_missing_plant_initial_raises_in_both_engines(self):
        sigma, plant = self._machine()
        headless = Automaton("headless", sigma)
        headless.add_state("A", marked=True)
        spec = Automaton("spec", sigma, initial="S")
        spec.mark("S")
        for engine in ("symbolic", "explicit"):
            with pytest.raises(SynthesisError):
                synthesize_supervisor(headless, spec, engine=engine)

    def test_missing_spec_initial_raises_in_both_engines(self):
        sigma, plant = self._machine()
        spec = Automaton("spec", sigma)
        spec.add_state("S", marked=True)
        for engine in ("symbolic", "explicit"):
            with pytest.raises(SynthesisError):
                synthesize_supervisor(plant, spec, engine=engine)

    def test_unknown_engine_rejected(self):
        sigma, plant = self._machine()
        spec = Automaton("spec", sigma, initial="S")
        spec.mark("S")
        with pytest.raises(ValueError, match="unknown synthesis engine"):
            synthesize_supervisor(plant, spec, engine="bdd")

    def test_forbidden_initial_yields_empty_supervisor(self):
        sigma, plant = self._machine()
        plant.forbid("A")
        spec = Automaton("spec", sigma, initial="S")
        spec.mark("S")
        result = assert_engines_agree(plant, spec)
        assert result.is_empty

    def test_no_marked_states_yields_empty_supervisor(self):
        sigma = Alphabet.of([controllable("go")])
        plant = Automaton("plant", sigma, initial="A")
        plant.add_transition("A", "go", "B")
        spec = Automaton("spec", sigma, initial="S")
        spec.add_transition("S", "go", "S")
        result = assert_engines_agree(plant, spec)
        assert result.is_empty
        assert result.removed_blocking  # everything reachable blocks

    def test_spec_private_events_never_fire(self):
        sigma, plant = self._machine()
        spec_sigma = Alphabet.of(
            [sigma["go"], controllable("specOnly")]
        )
        spec = Automaton("spec", spec_sigma, initial="S0")
        spec.add_transition("S0", "go", "S1")
        spec.add_transition("S0", "specOnly", "SDead")
        spec.mark("S1")
        result = assert_engines_agree(plant, spec)
        assert not result.is_empty
        event_names = {
            t.event.name for t in result.supervisor.transitions
        }
        assert "specOnly" not in event_names


class TestEncodedFoldPath:
    def test_fold_matches_explicit_composition(self):
        # The scale path (encode_composition + supremal_fixpoint on the
        # encoding) must agree with decoding from the explicitly
        # composed plant on every aggregate number.
        sigma = scalable_alphabet(2)
        components = scalable_plant_components(2, 3, sigma)
        spec = scalable_specification(2, sigma)
        folded = supremal_fixpoint(
            encode_composition(components), encode_automaton(spec)
        )
        reference = synthesize_supervisor(
            scalable_counter_plant(2, 3, sigma), spec
        )
        assert folded.n_supervisor_states == len(reference.supervisor)
        assert int(folded.removed_uncontrollable.sum()) == len(
            reference.removed_uncontrollable
        )
        assert int(folded.removed_blocking.sum()) == len(
            reference.removed_blocking
        )
        assert folded.iterations == reference.iterations
        assert folded.is_empty == reference.is_empty

    def test_fleet_fold_matches_explicit_composition(self):
        sigma = fleet_alphabet(2)
        folded = supremal_fixpoint(
            encode_composition(fleet_plant_components(2, 2, sigma)),
            encode_automaton(fleet_specification(2, sigma)),
        )
        reference = synthesize_supervisor(
            fleet_counter_plant(2, 2, sigma), fleet_specification(2, sigma)
        )
        assert folded.n_supervisor_states == len(reference.supervisor)
        assert folded.iterations == reference.iterations

    def test_empty_components_rejected(self):
        with pytest.raises(SynthesisError):
            encode_composition([])


class TestEncodeMemo:
    def _plant(self):
        sigma = Alphabet.of([controllable("go"), uncontrollable("fail")])
        plant = Automaton("plant", sigma, initial="A")
        plant.add_transition("A", "go", "B")
        plant.mark("B")
        return plant

    def test_repeated_encoding_is_memoized(self):
        plant = self._plant()
        assert encode_automaton(plant) is encode_automaton(plant)

    def test_new_transition_invalidates(self):
        plant = self._plant()
        first = encode_automaton(plant)
        plant.add_transition("B", "fail", "A")
        second = encode_automaton(plant)
        assert second is not first
        assert second.n_transitions == first.n_transitions + 1

    def test_marking_invalidates(self):
        plant = self._plant()
        first = encode_automaton(plant)
        plant.mark("A")
        second = encode_automaton(plant)
        assert second is not first
        assert int(second.marked.sum()) == int(first.marked.sum()) + 1

    def test_moved_initial_invalidates(self):
        plant = self._plant()
        first = encode_automaton(plant)
        plant.set_initial("B")
        second = encode_automaton(plant)
        assert second is not first
        assert second.initial != first.initial

    def test_copies_get_their_own_encoding(self):
        plant = self._plant()
        clone = plant.copy()
        assert encode_automaton(plant) is not encode_automaton(clone)
