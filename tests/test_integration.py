"""Integration tests: the paper's headline claims on the full scenario.

These run the complete three-phase x264 experiment for all four
resource managers on the simulated platform and assert the *shape* of
the paper's results (Section 5.1) — who wins, in which phase, and by
roughly what kind of margin.
"""

import numpy as np
import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import three_phase_scenario
from repro.managers.fs import FullSystemMIMO
from repro.managers.mm import mm_perf, mm_pow
from repro.managers.spectr import SPECTRManager
from repro.workloads import canneal, x264


@pytest.fixture(scope="module")
def x264_traces(big_system, little_system, full_system, verified_supervisor):
    scenario = three_phase_scenario()
    factories = {
        "MM-Perf": lambda soc, goals: mm_perf(
            soc, goals, big_system=big_system, little_system=little_system
        ),
        "MM-Pow": lambda soc, goals: mm_pow(
            soc, goals, big_system=big_system, little_system=little_system
        ),
        "FS": lambda soc, goals: FullSystemMIMO(
            soc, goals, system=full_system
        ),
        "SPECTR": lambda soc, goals: SPECTRManager(
            soc,
            goals,
            big_system=big_system,
            little_system=little_system,
            verified_supervisor=verified_supervisor,
        ),
    }
    return {
        name: run_scenario(factory, x264(), scenario, seed=2018)
        for name, factory in factories.items()
    }


def phase_mean(trace, phase_index, series):
    sl = trace.phase_slice(phase_index)
    return float(getattr(trace, series)[sl][40:].mean())


class TestSafePhase:
    """Phase 1: QoS reference achievable within TDP."""

    def test_spectr_and_mmperf_meet_qos(self, x264_traces):
        for name in ("SPECTR", "MM-Perf"):
            qos = phase_mean(x264_traces[name], 0, "qos")
            assert qos == pytest.approx(60.0, rel=0.05), name

    def test_spectr_and_mmperf_save_power(self, x264_traces):
        """Paper: 'both MM-Perf and SPECTR reduce power consumption ...
        while maintaining FPS within 10% of the reference'."""
        for name in ("SPECTR", "MM-Perf"):
            power = phase_mean(x264_traces[name], 0, "chip_power")
            assert power < 0.9 * 5.0, name

    def test_power_trackers_consume_the_budget(self, x264_traces):
        """Paper: 'FS and MM-Pow controllers unnecessarily exceed the
        reference FPS value and, as a result, consume excessive power'."""
        for name in ("FS", "MM-Pow"):
            qos = phase_mean(x264_traces[name], 0, "qos")
            power = phase_mean(x264_traces[name], 0, "chip_power")
            assert qos > 60.0, name
            assert power > 0.9 * 5.0, name

    def test_power_savers_beat_power_trackers(self, x264_traces):
        saver = phase_mean(x264_traces["SPECTR"], 0, "chip_power")
        tracker = phase_mean(x264_traces["MM-Pow"], 0, "chip_power")
        assert saver < tracker - 0.3


class TestEmergencyPhase:
    """Phase 2: the power envelope drops to 3.3 W."""

    def test_power_aware_managers_track_the_cap(self, x264_traces):
        for name in ("SPECTR", "MM-Pow", "FS"):
            power = phase_mean(x264_traces[name], 1, "chip_power")
            assert power == pytest.approx(3.3, abs=0.45), name

    def test_mmperf_cannot_react_to_the_emergency(self, x264_traces):
        """MM-Perf has no supervisory coordinator: it keeps serving QoS
        and ignores the new envelope."""
        power = phase_mean(x264_traces["MM-Perf"], 1, "chip_power")
        assert power > 3.3 + 0.4

    def test_fs_settles_slower_than_spectr(self, x264_traces):
        """Paper Section 5.1.1: FS's larger state space makes its power
        response sluggish (2.07 s vs SPECTR's 1.28 s)."""
        from repro.control.metrics import settling_time

        def power_settling(name):
            trace = x264_traces[name]
            sl = trace.phase_slice(1)
            return settling_time(
                trace.times[sl], trace.chip_power[sl], band=0.08
            )

        assert power_settling("FS") > power_settling("SPECTR")


class TestDisturbancePhase:
    """Phase 3: TDP restored, background tasks make QoS unachievable."""

    def test_mmperf_violates_tdp_for_highest_qos(self, x264_traces):
        qos = phase_mean(x264_traces["MM-Perf"], 2, "qos")
        power = phase_mean(x264_traces["MM-Perf"], 2, "chip_power")
        assert power > 5.0 * 1.1
        others = [
            phase_mean(x264_traces[n], 2, "qos")
            for n in ("SPECTR", "MM-Pow", "FS")
        ]
        assert qos > max(others)

    def test_capped_managers_obey_tdp(self, x264_traces):
        for name in ("SPECTR", "MM-Pow", "FS"):
            power = phase_mean(x264_traces[name], 2, "chip_power")
            assert power < 5.0 * 1.08, name

    def test_spectr_adapts_priorities(self, x264_traces):
        """SPECTR behaved like MM-Perf in phase 1 and must behave like a
        power capper (not like MM-Perf) in phase 3."""
        spectr_power = phase_mean(x264_traces["SPECTR"], 2, "chip_power")
        mmperf_power = phase_mean(x264_traces["MM-Perf"], 2, "chip_power")
        assert spectr_power < mmperf_power - 1.0


class TestSPECTRGainSchedule:
    def test_gain_switches_align_with_phase_changes(self, x264_traces):
        trace = x264_traces["SPECTR"]
        switches = [
            (trace.times[i], trace.gain_sets[i])
            for i in range(1, len(trace.gain_sets))
            if trace.gain_sets[i] != trace.gain_sets[i - 1]
        ]
        switch_times = [t for t, _ in switches]
        # A switch to power-oriented gains shortly after the emergency
        # begins at t=5.
        assert any(5.0 <= t <= 6.5 for t in switch_times)
        # No thrashing: a handful of switches across the whole run.
        assert len(switches) <= 8

    def test_spectr_qos_mode_in_phase1(self, x264_traces):
        trace = x264_traces["SPECTR"]
        sl = trace.phase_slice(0)
        gains = trace.gain_sets[sl.start + 40 : sl.stop]
        assert gains.count("qos") / len(gains) > 0.9


class TestCannealSerialPhase:
    def test_no_manager_meets_qos_in_phase1(
        self, big_system, little_system, verified_supervisor
    ):
        """Paper Section 5.1.2: canneal's serialized input processing
        keeps every manager away from the QoS reference in phase 1."""
        scenario = three_phase_scenario()
        trace = run_scenario(
            lambda soc, goals: SPECTRManager(
                soc,
                goals,
                big_system=big_system,
                little_system=little_system,
                verified_supervisor=verified_supervisor,
            ),
            canneal(),
            scenario,
            seed=2018,
        )
        qos = phase_mean(trace, 0, "qos")
        assert qos < 0.95 * 60.0
