"""Integration: SPECTR's behaviour under injected sensor faults.

The paper's robustness question made concrete: the formal guarantees
are properties of the supervisor automaton and must hold no matter what
the sensors report; the control quality should degrade gracefully and
recover once the fault clears.
"""

import numpy as np
import pytest

from repro.core.alphabet import INCREASE_BIG_POWER, INCREASE_LITTLE_POWER
from repro.managers.base import ManagerGoals
from repro.managers.spectr import SPECTRManager
from repro.platform.faults import FaultModel, inject_power_sensor_fault
from repro.platform.soc import ExynosSoC, SoCConfig
from repro.workloads import x264


@pytest.fixture()
def faulty_run(big_system, little_system, verified_supervisor):
    def run(fault: FaultModel, steps=260, budget=5.0):
        soc = ExynosSoC(qos_app=x264(), config=SoCConfig(seed=2018))
        soc.big.set_frequency(1.0)
        soc.little.set_frequency(0.6)
        inject_power_sensor_fault(soc, "big", fault)
        manager = SPECTRManager(
            soc,
            ManagerGoals(60.0, budget),
            big_system=big_system,
            little_system=little_system,
            verified_supervisor=verified_supervisor,
        )
        qos, power, times = [], [], []
        for _ in range(steps):
            telemetry = soc.step()
            manager.control(telemetry)
            qos.append(telemetry.qos_rate)
            power.append(telemetry.chip_power_w)
            times.append(telemetry.time_s)
        return (
            np.asarray(times),
            np.asarray(qos),
            np.asarray(power),
            manager,
        )

    return run


class TestSpikeFault:
    def test_recovers_after_power_spike(self, faulty_run):
        """A 2x power-sensor spike mid-run looks like a TDP violation;
        SPECTR caps, then recovers QoS once the sensor heals."""
        fault = FaultModel("spike", 4.0, 6.0, magnitude=2.0)
        times, qos, power, manager = faulty_run(fault, steps=260)
        after = times > 9.0
        assert np.mean(qos[after]) == pytest.approx(60.0, rel=0.08)

    def test_supervisor_reacts_to_spike_as_critical(self, faulty_run):
        fault = FaultModel("spike", 4.0, 6.0, magnitude=2.0)
        _, _, _, manager = faulty_run(fault, steps=140)
        # During the spike the abstraction reported critical and the
        # manager scheduled power gains at least once.
        switched = [g for _, _, g in manager.gain_log.entries]
        assert "power" in switched


class TestDropoutFault:
    def test_dropout_does_not_crash_and_respects_floors(self, faulty_run):
        """A power-sensor dropout (reads 0 W) must not drive references
        below their floors or crash the pipeline."""
        fault = FaultModel("dropout", 4.0, 5.0)
        _, _, _, manager = faulty_run(fault, steps=220)
        assert manager.big_power_ref_w >= 0.6 - 1e-9
        assert manager.little_power_ref_w >= 0.10 - 1e-9


class TestFormalGuaranteesUnderFaults:
    @pytest.mark.parametrize(
        "fault",
        [
            FaultModel("spike", 3.0, 7.0, magnitude=2.5),
            FaultModel("dropout", 3.0, 7.0),
            FaultModel("stuck", 3.0, 7.0),
            FaultModel("bias", 3.0, 7.0, magnitude=2.0),
        ],
        ids=["spike", "dropout", "stuck", "bias"],
    )
    def test_no_budget_increase_during_capping_episode(
        self, faulty_run, fault
    ):
        """The synthesized guarantee: between a critical and the next
        safePower, the supervisor never executes a budget increase —
        whatever garbage the sensors feed the abstraction."""
        _, _, _, manager = faulty_run(fault, steps=280, budget=4.0)
        manager.engine.record_trace  # engine trace is on by default
        capping = False
        for entry in manager.engine.trace:
            if "critical" in entry.observed:
                capping = True
            if "safePower" in entry.observed:
                capping = False
            if capping:
                assert INCREASE_BIG_POWER not in entry.executed
                assert INCREASE_LITTLE_POWER not in entry.executed

    def test_engine_state_remains_valid_under_all_faults(self, faulty_run):
        fault = FaultModel("spike", 2.0, 10.0, magnitude=3.0)
        _, _, _, manager = faulty_run(fault, steps=250)
        assert manager.engine.state in manager.engine.automaton.states
